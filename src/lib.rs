//! Umbrella crate: see the member crates for the library itself.
