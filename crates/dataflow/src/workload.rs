//! Workload descriptors: layer shapes and operation counts.

use core::fmt;

/// The shape of one network layer, sufficient to derive MAC and data-volume
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerShape {
    /// Fully-connected layer.
    Fc {
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
    },
    /// 2-D convolution layer.
    Conv {
        /// Input channels (per group).
        in_channels: usize,
        /// Input height (including padding).
        in_h: usize,
        /// Input width (including padding).
        in_w: usize,
        /// Output channels (total across groups).
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Filter groups (AlexNet uses 2 on some layers).
        groups: usize,
    },
}

impl LayerShape {
    /// Creates an FC shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn fc(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "FC dimensions must be positive");
        Self::Fc { inputs, outputs }
    }

    /// Creates a conv shape.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, a kernel larger than the input, or output
    /// channels not divisible by `groups`.
    #[must_use]
    pub fn conv(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        groups: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && in_h > 0 && in_w > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "conv dimensions must be positive"
        );
        assert!(
            groups > 0 && out_channels.is_multiple_of(groups),
            "groups must divide out_channels"
        );
        assert!(kernel <= in_h && kernel <= in_w, "kernel larger than input");
        Self::Conv {
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            groups,
        }
    }

    /// Output spatial height (conv) or 1 (FC).
    #[must_use]
    pub fn out_h(&self) -> usize {
        match *self {
            Self::Fc { .. } => 1,
            Self::Conv {
                in_h,
                kernel,
                stride,
                ..
            } => (in_h - kernel) / stride + 1,
        }
    }

    /// Output spatial width (conv) or 1 (FC).
    #[must_use]
    pub fn out_w(&self) -> usize {
        match *self {
            Self::Fc { .. } => 1,
            Self::Conv {
                in_w,
                kernel,
                stride,
                ..
            } => (in_w - kernel) / stride + 1,
        }
    }

    /// Multiply-accumulate operations for one inference.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match *self {
            Self::Fc { inputs, outputs } => (inputs * outputs) as u64,
            Self::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                (self.out_h() * self.out_w() * out_channels * in_channels * kernel * kernel) as u64
            }
        }
    }

    /// Weight parameter count.
    #[must_use]
    pub fn weight_count(&self) -> u64 {
        match *self {
            Self::Fc { inputs, outputs } => (inputs * outputs) as u64,
            Self::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => (out_channels * in_channels * kernel * kernel) as u64,
        }
    }

    /// Input activation element count (per inference).
    #[must_use]
    pub fn input_len(&self) -> u64 {
        match *self {
            Self::Fc { inputs, .. } => inputs as u64,
            Self::Conv {
                in_channels,
                in_h,
                in_w,
                groups,
                ..
            } => (in_channels * groups * in_h * in_w) as u64,
        }
    }

    /// Output activation element count (per inference).
    #[must_use]
    pub fn output_len(&self) -> u64 {
        match *self {
            Self::Fc { outputs, .. } => outputs as u64,
            Self::Conv { out_channels, .. } => (out_channels * self.out_h() * self.out_w()) as u64,
        }
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Fc { inputs, outputs } => write!(f, "FC {inputs}x{outputs}"),
            Self::Conv {
                in_channels,
                in_h,
                in_w,
                out_channels,
                kernel,
                stride,
                groups,
            } => {
                write!(
                    f,
                    "Conv {in_channels}x{in_h}x{in_w} -> {out_channels} (k{kernel} s{stride} g{groups})"
                )
            }
        }
    }
}

/// A named multi-layer workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    layers: Vec<LayerShape>,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<LayerShape>) -> Self {
        assert!(!layers.is_empty(), "a workload needs at least one layer");
        Self {
            name: name.into(),
            layers,
        }
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in depth order.
    #[must_use]
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// Total MACs per inference.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerShape::weight_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_counts() {
        let l = LayerShape::fc(784, 256);
        assert_eq!(l.macs(), 784 * 256);
        assert_eq!(l.weight_count(), 784 * 256);
        assert_eq!(l.input_len(), 784);
        assert_eq!(l.output_len(), 256);
        assert_eq!(l.out_h(), 1);
    }

    #[test]
    fn conv_counts_match_hand_calculation() {
        // AlexNet conv1: 3x227x227 -> 96, k=11, s=4.
        let l = LayerShape::conv(3, 227, 227, 96, 11, 4, 1);
        assert_eq!(l.out_h(), 55);
        assert_eq!(l.out_w(), 55);
        assert_eq!(l.macs(), 55 * 55 * 96 * 3 * 121);
        assert_eq!(l.weight_count(), 96 * 3 * 121);
    }

    #[test]
    fn grouped_conv_counts_per_group_channels() {
        // AlexNet conv2: 48 ch/group x 2 groups.
        let l = LayerShape::conv(48, 31, 31, 256, 5, 1, 2);
        assert_eq!(l.out_h(), 27);
        assert_eq!(l.macs(), 27 * 27 * 256 * 48 * 25);
        assert_eq!(l.input_len(), 96 * 31 * 31);
    }

    #[test]
    fn workload_totals_sum_layers() {
        let w = Workload::new("toy", vec![LayerShape::fc(4, 8), LayerShape::fc(8, 2)]);
        assert_eq!(w.total_macs(), 32 + 16);
        assert_eq!(w.total_weights(), 48);
        assert_eq!(w.name(), "toy");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", LayerShape::fc(3, 4)), "FC 3x4");
        assert!(format!("{}", LayerShape::conv(3, 8, 8, 4, 3, 1, 1)).contains("Conv"));
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_rejected() {
        let _ = LayerShape::conv(1, 4, 4, 1, 5, 1, 1);
    }
}
