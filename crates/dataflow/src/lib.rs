//! # dante-dataflow
//!
//! Workload descriptors and accelerator dataflow activity models for the
//! *Dante* reproduction:
//!
//! * [`workload`] — layer shapes (FC / conv) with MAC, weight, and
//!   activation-volume counts.
//! * [`workloads`] — the paper's two evaluation workloads: the MNIST FC-DNN
//!   and the five AlexNet convolution layers.
//! * [`activity`] — the [`activity::Dataflow`] trait and
//!   per-layer/workload access counts (`SRAMAcc`, `NC` of the paper's energy
//!   equations).
//! * [`fc_dana`] — the DANA-style FC dataflow (~75% accesses per MAC,
//!   Table 3).
//! * [`row_stationary`] — the Eyeriss row-stationary model (~1.7% accesses
//!   per MAC for AlexNet, Table 3).
//! * [`baselines`] — weight-stationary, output-stationary, and
//!   no-local-reuse dataflows for the ablation study.
//!
//! # Examples
//!
//! ```
//! use dante_dataflow::activity::Dataflow;
//! use dante_dataflow::fc_dana::DanaFcDataflow;
//! use dante_dataflow::workloads::mnist_fc;
//!
//! let activity = DanaFcDataflow::new().activity(&mnist_fc());
//! assert!((activity.access_mac_ratio() - 0.75).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod baselines;
pub mod fc_dana;
pub mod row_stationary;
pub mod workload;
pub mod workloads;

pub use activity::{Dataflow, LayerActivity, WorkloadActivity};
pub use baselines::{NoLocalReuseDataflow, OutputStationaryDataflow, WeightStationaryDataflow};
pub use fc_dana::DanaFcDataflow;
pub use row_stationary::RowStationaryDataflow;
pub use workload::{LayerShape, Workload};
pub use workloads::{alexnet_conv, alexnet_conv_prefix, mnist_fc};
