//! Activity counts: how many SRAM accesses and MACs a workload performs
//! under a given dataflow — the `SRAMAcc` and `NC` inputs of the paper's
//! energy equations (2), (3), (6).

use crate::workload::Workload;

/// Per-layer access/compute counts for one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerActivity {
    /// Layer index within the workload.
    pub layer: usize,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// On-chip SRAM accesses that fetch weights.
    pub weight_accesses: u64,
    /// On-chip SRAM accesses that fetch input/ifmap activations.
    pub input_accesses: u64,
    /// On-chip SRAM accesses that write/read outputs and partial sums.
    pub output_accesses: u64,
}

impl LayerActivity {
    /// Total SRAM accesses of the layer.
    #[must_use]
    pub fn sram_accesses(&self) -> u64 {
        self.weight_accesses + self.input_accesses + self.output_accesses
    }
}

/// Whole-workload activity under one dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadActivity {
    dataflow: &'static str,
    layers: Vec<LayerActivity>,
}

impl WorkloadActivity {
    /// Creates an activity record.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn new(dataflow: &'static str, layers: Vec<LayerActivity>) -> Self {
        assert!(!layers.is_empty(), "activity needs at least one layer");
        Self { dataflow, layers }
    }

    /// Name of the dataflow that produced these counts.
    #[must_use]
    pub fn dataflow(&self) -> &'static str {
        self.dataflow
    }

    /// Per-layer records.
    #[must_use]
    pub fn layers(&self) -> &[LayerActivity] {
        &self.layers
    }

    /// Total MACs.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total SRAM accesses.
    #[must_use]
    pub fn total_sram_accesses(&self) -> u64 {
        self.layers.iter().map(LayerActivity::sram_accesses).sum()
    }

    /// The `SRAMAcc / MAC` ratio of paper Table 3.
    #[must_use]
    pub fn access_mac_ratio(&self) -> f64 {
        self.total_sram_accesses() as f64 / self.total_macs() as f64
    }
}

/// A dataflow: maps a workload onto per-layer activity counts.
pub trait Dataflow {
    /// Short name of the dataflow.
    fn name(&self) -> &'static str;

    /// Computes the activity of one inference of `workload`.
    fn activity(&self, workload: &Workload) -> WorkloadActivity;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(macs: u64, w: u64, i: u64, o: u64) -> LayerActivity {
        LayerActivity {
            layer: 0,
            macs,
            weight_accesses: w,
            input_accesses: i,
            output_accesses: o,
        }
    }

    #[test]
    fn totals_sum_across_layers() {
        let a = WorkloadActivity::new("test", vec![layer(100, 10, 5, 1), layer(200, 20, 10, 2)]);
        assert_eq!(a.total_macs(), 300);
        assert_eq!(a.total_sram_accesses(), 48);
        assert!((a.access_mac_ratio() - 0.16).abs() < 1e-12);
        assert_eq!(a.dataflow(), "test");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_activity_rejected() {
        let _ = WorkloadActivity::new("x", vec![]);
    }
}
