//! The Eyeriss row-stationary (RS) dataflow activity model
//! (paper Sec. 6.3 / Table 3, row 2).
//!
//! Eyeriss [17, 18] maps convolutions onto a 12x14 PE array so that filter
//! rows stay resident in PE register files and are reused across the entire
//! ifmap, while psums accumulate inside the array. What remains visible at
//! the *global buffer* (the 128 KB SRAM whose accesses the paper's energy
//! model counts) is:
//!
//! * **ifmap reads** — the input feature map is re-read once per *filter
//!   pass* (the array holds `ceil(M*k / 168)` passes worth of filters), with
//!   a refetch factor for halos and imperfect tiling;
//! * **filter reads** — each weight is fetched from the buffer a small
//!   constant number of times (the RF cannot hold a whole layer's rows for
//!   every ifmap strip);
//! * **psum traffic** — one read-modify-write round trip per output.
//!
//! With the calibrated constants below the five AlexNet conv layers come out
//! at a `SRAMAcc / MAC` ratio of ~1.7%, the paper's Table 3 value, two
//! orders of magnitude below the FC dataflow — the reuse that makes
//! boosting so much cheaper for conv nets.

use crate::activity::{Dataflow, LayerActivity, WorkloadActivity};
use crate::workload::{LayerShape, Workload};

/// Eyeriss PE array size (12 x 14).
pub const PE_ARRAY: u64 = 168;
/// Ifmap refetch factor (halo rows + imperfect spatial tiling).
pub const IFMAP_REFETCH: f64 = 1.5;
/// Filter refetch count from the global buffer.
pub const FILTER_REFETCH: f64 = 2.0;
/// Psum round trips per output element (one spill read + final write).
pub const PSUM_ROUNDTRIPS: f64 = 2.0;

/// The row-stationary dataflow model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowStationaryDataflow;

impl RowStationaryDataflow {
    /// Creates the dataflow model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Number of filter passes a layer needs: how many times the ifmap must
    /// be streamed from the buffer because the array holds only
    /// `PE_ARRAY / kernel` filter rows at a time.
    #[must_use]
    pub fn passes(out_channels: u64, kernel: u64) -> u64 {
        (out_channels * kernel).div_ceil(PE_ARRAY)
    }
}

impl Dataflow for RowStationaryDataflow {
    fn name(&self) -> &'static str {
        "Eyeriss row-stationary"
    }

    /// # Panics
    ///
    /// Panics if the workload contains an FC layer (map those with
    /// [`crate::fc_dana::DanaFcDataflow`]).
    fn activity(&self, workload: &Workload) -> WorkloadActivity {
        let layers = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, shape)| match *shape {
                LayerShape::Conv {
                    out_channels,
                    kernel,
                    ..
                } => {
                    let passes = Self::passes(out_channels as u64, kernel as u64);
                    let ifmap =
                        (shape.input_len() as f64 * passes as f64 * IFMAP_REFETCH).ceil() as u64;
                    let filters = (shape.weight_count() as f64 * FILTER_REFETCH).ceil() as u64;
                    let psums = (shape.output_len() as f64 * PSUM_ROUNDTRIPS).ceil() as u64;
                    LayerActivity {
                        layer: i,
                        macs: shape.macs(),
                        weight_accesses: filters,
                        input_accesses: ifmap,
                        output_accesses: psums,
                    }
                }
                LayerShape::Fc { .. } => {
                    panic!("row-stationary model maps conv layers only (layer {i})")
                }
            })
            .collect();
        WorkloadActivity::new(self.name(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::alexnet_conv;

    #[test]
    fn alexnet_ratio_matches_table3() {
        // Paper Table 3: SRAMAcc / MAC ops = 1.67% for AlexNet under RS.
        let activity = RowStationaryDataflow::new().activity(&alexnet_conv());
        let ratio = activity.access_mac_ratio();
        assert!(
            (0.013..=0.021).contains(&ratio),
            "RS access/MAC ratio {ratio:.4} should be ~0.0167"
        );
    }

    #[test]
    fn rs_reuse_beats_fc_dataflow_by_orders_of_magnitude() {
        use crate::fc_dana::DanaFcDataflow;
        use crate::workloads::mnist_fc;
        let rs = RowStationaryDataflow::new().activity(&alexnet_conv());
        let fc = DanaFcDataflow::new().activity(&mnist_fc());
        assert!(fc.access_mac_ratio() / rs.access_mac_ratio() > 20.0);
    }

    #[test]
    fn pass_counts_match_hand_calculation() {
        // conv1: 96 filters x k11 = 1056 rows / 168 PEs -> 7 passes.
        assert_eq!(RowStationaryDataflow::passes(96, 11), 7);
        assert_eq!(RowStationaryDataflow::passes(256, 5), 8);
        assert_eq!(RowStationaryDataflow::passes(384, 3), 7);
        assert_eq!(RowStationaryDataflow::passes(256, 3), 5);
    }

    #[test]
    fn conv1_dominated_by_ifmap_conv3_by_filters() {
        // Early layers have big ifmaps, late layers big filter sets — the
        // activity model must reflect that balance.
        let activity = RowStationaryDataflow::new().activity(&alexnet_conv());
        let l1 = &activity.layers()[0];
        let l3 = &activity.layers()[2];
        assert!(l1.input_accesses > l1.weight_accesses);
        assert!(l3.weight_accesses > l3.input_accesses);
    }

    #[test]
    #[should_panic(expected = "conv layers only")]
    fn fc_layers_rejected() {
        let wl = Workload::new("bad", vec![LayerShape::fc(4, 4)]);
        let _ = RowStationaryDataflow::new().activity(&wl);
    }
}
