//! The DANA-style fully-connected dataflow (paper Table 3, row 1).
//!
//! The taped-out chip is an enhanced DANA \[14\]: a dynamically-allocated
//! multi-context NN accelerator whose PEs stream weights from the on-chip
//! weight memory. Fully-connected layers have no weight reuse, so activity
//! is dominated by weight fetches. The model here counts 64-bit word
//! accesses of 16-bit values:
//!
//! * **weights** — each weight is used exactly once; the two-wide PE
//!   datapath consumes two packed weights per word access
//!   (`MACs / 2` accesses);
//! * **inputs** — input words (4 values each) are broadcast but re-fetched
//!   for each output pass (`MACs / 4` accesses);
//! * **outputs** — each output is written once, packed 4 to a word.
//!
//! The resulting `SRAMAcc / MAC` ratio for the MNIST FC-DNN is ~75%, the
//! value the paper reports in Table 3.

use crate::activity::{Dataflow, LayerActivity, WorkloadActivity};
use crate::workload::{LayerShape, Workload};

/// Packed values per weight-memory access usefully consumed by the PE pair.
pub const WEIGHTS_PER_ACCESS: u64 = 2;
/// Packed values per input-memory access.
pub const INPUTS_PER_ACCESS: u64 = 4;
/// Packed values per output write.
pub const OUTPUTS_PER_ACCESS: u64 = 4;

/// The DANA FC dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DanaFcDataflow;

impl DanaFcDataflow {
    /// Creates the dataflow model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Dataflow for DanaFcDataflow {
    fn name(&self) -> &'static str {
        "DANA (FC)"
    }

    /// # Panics
    ///
    /// Panics if the workload contains a convolution layer — DANA maps FC
    /// networks only.
    fn activity(&self, workload: &Workload) -> WorkloadActivity {
        let layers = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, shape)| match *shape {
                LayerShape::Fc { outputs, .. } => {
                    let macs = shape.macs();
                    LayerActivity {
                        layer: i,
                        macs,
                        weight_accesses: macs.div_ceil(WEIGHTS_PER_ACCESS),
                        input_accesses: macs.div_ceil(INPUTS_PER_ACCESS),
                        output_accesses: (outputs as u64).div_ceil(OUTPUTS_PER_ACCESS),
                    }
                }
                LayerShape::Conv { .. } => {
                    panic!("DANA FC dataflow cannot map convolution layer {i}")
                }
            })
            .collect();
        WorkloadActivity::new(self.name(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::mnist_fc;

    #[test]
    fn mnist_ratio_matches_table3() {
        // Paper Table 3: SRAMAcc / MAC ops = 75% for the MNIST FC-DNN.
        let activity = DanaFcDataflow::new().activity(&mnist_fc());
        let ratio = activity.access_mac_ratio();
        assert!(
            (0.74..=0.76).contains(&ratio),
            "DANA FC access/MAC ratio {ratio:.4} should be ~0.75"
        );
    }

    #[test]
    fn weight_accesses_dominate_fc_activity() {
        let activity = DanaFcDataflow::new().activity(&mnist_fc());
        let w: u64 = activity.layers().iter().map(|l| l.weight_accesses).sum();
        let other: u64 = activity
            .layers()
            .iter()
            .map(|l| l.input_accesses + l.output_accesses)
            .sum();
        assert!(w > other, "weights {w} vs other {other}");
    }

    #[test]
    fn per_layer_macs_match_shapes() {
        let wl = mnist_fc();
        let activity = DanaFcDataflow::new().activity(&wl);
        for (layer, act) in wl.layers().iter().zip(activity.layers()) {
            assert_eq!(act.macs, layer.macs());
        }
    }

    #[test]
    #[should_panic(expected = "cannot map convolution")]
    fn conv_layers_rejected() {
        let wl = Workload::new("bad", vec![LayerShape::conv(1, 8, 8, 2, 3, 1, 1)]);
        let _ = DanaFcDataflow::new().activity(&wl);
    }
}
