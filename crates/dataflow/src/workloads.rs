//! The two evaluation workloads of the paper (Table 3).

use crate::workload::{LayerShape, Workload};

/// The MNIST FC-DNN of paper Sec. 2: four weight layers
/// 784-256-256-256-10 (the paper's trailing "32" is the accelerator's padded
/// output tile; see DESIGN.md).
#[must_use]
pub fn mnist_fc() -> Workload {
    Workload::new(
        "MNIST FC-DNN",
        vec![
            LayerShape::fc(784, 256),
            LayerShape::fc(256, 256),
            LayerShape::fc(256, 256),
            LayerShape::fc(256, 10),
        ],
    )
}

/// The five convolution layers of AlexNet, the shapes Eyeriss [17, 18]
/// reports its row-stationary activity for (the paper reuses those activity
/// factors for its "AlexNet for CIFAR-10" energy evaluation).
///
/// Input spatial sizes include the padding each layer applies.
#[must_use]
pub fn alexnet_conv() -> Workload {
    Workload::new(
        "AlexNet conv layers",
        vec![
            // conv1: 3x227x227 -> 96, k11 s4
            LayerShape::conv(3, 227, 227, 96, 11, 4, 1),
            // conv2: 2 groups of 48x31x31 (27 + 2x2 pad) -> 256, k5
            LayerShape::conv(48, 31, 31, 256, 5, 1, 2),
            // conv3: 256x15x15 (13 + 2x1 pad) -> 384, k3
            LayerShape::conv(256, 15, 15, 384, 3, 1, 1),
            // conv4: 2 groups of 192x15x15 -> 384, k3
            LayerShape::conv(192, 15, 15, 384, 3, 1, 2),
            // conv5: 2 groups of 192x15x15 -> 256, k3
            LayerShape::conv(192, 15, 15, 256, 3, 1, 2),
        ],
    )
}

/// The first `layers` convolution layers of [`alexnet_conv`], for sweeps
/// that evaluate a layer subset (e.g. the serve-layer `alexnet_conv`
/// workload with a validated `layers` bound).
///
/// # Panics
///
/// Panics unless `1 <= layers <= 5` — callers (e.g.
/// `dante::sweep::SweepSpec::validate`) are expected to have bounds-checked
/// user input first.
#[must_use]
pub fn alexnet_conv_prefix(layers: usize) -> Workload {
    let full = alexnet_conv();
    assert!(
        (1..=full.layers().len()).contains(&layers),
        "alexnet_conv_prefix wants 1..=5 layers, got {layers}"
    );
    Workload::new(
        format!("AlexNet conv layers 1..={layers}"),
        full.layers()[..layers].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_fc_matches_paper_dimensions() {
        let w = mnist_fc();
        assert_eq!(w.layers().len(), 4);
        assert_eq!(
            w.total_weights(),
            784 * 256 + 256 * 256 + 256 * 256 + 256 * 10
        );
        // FC nets have one MAC per weight.
        assert_eq!(w.total_macs(), w.total_weights());
    }

    #[test]
    fn alexnet_total_macs_is_the_known_666m() {
        let w = alexnet_conv();
        let total = w.total_macs();
        // The canonical AlexNet conv total is ~666M MACs.
        assert!(
            (600_000_000..=700_000_000).contains(&total),
            "AlexNet conv MACs {total}"
        );
        assert_eq!(w.layers().len(), 5);
    }

    #[test]
    fn alexnet_per_layer_output_sizes() {
        let w = alexnet_conv();
        let dims: Vec<usize> = w.layers().iter().map(|l| l.out_h()).collect();
        assert_eq!(dims, vec![55, 27, 13, 13, 13]);
    }

    #[test]
    fn alexnet_prefix_is_a_true_prefix() {
        let full = alexnet_conv();
        for n in 1..=5 {
            let prefix = alexnet_conv_prefix(n);
            assert_eq!(prefix.layers(), &full.layers()[..n]);
        }
        assert_eq!(alexnet_conv_prefix(5).total_macs(), full.total_macs());
        assert!(alexnet_conv_prefix(1).total_macs() < full.total_macs());
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn alexnet_prefix_rejects_zero_layers() {
        let _ = alexnet_conv_prefix(0);
    }

    #[test]
    fn alexnet_weights_are_about_2_3m() {
        let w = alexnet_conv();
        let weights = w.total_weights();
        assert!(
            (2_200_000..=2_400_000).contains(&weights),
            "AlexNet conv weights {weights}"
        );
    }
}
