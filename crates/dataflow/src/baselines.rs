//! Baseline conv dataflows for the ablation study: weight-stationary,
//! output-stationary, and no-local-reuse.
//!
//! The paper evaluates the row-stationary dataflow because it minimizes
//! global-buffer traffic; these baselines quantify how much the *dataflow*
//! choice moves an accelerator through the paper's Fig. 12 design space
//! (`Ops_ratio` axis) and therefore how much boosting saves. Model
//! constants are calibrated so the qualitative ordering of Chen et al.
//! (ISCA'16) holds for AlexNet: `RS < OS < WS << NLR` in buffer accesses
//! per MAC.

use crate::activity::{Dataflow, LayerActivity, WorkloadActivity};
use crate::workload::{LayerShape, Workload};

/// Filters resident per pass in the weight-stationary array.
pub const WS_RESIDENT_FILTERS: u64 = 64;
/// Partial-sum accumulation depth before a WS psum spills to the buffer.
pub const WS_ACC_DEPTH: u64 = 128;
/// Ifmap refetch factor of WS (no inter-row reuse in the array).
pub const WS_IFMAP_REFETCH: f64 = 2.0;

/// Output channels resident per pass in the output-stationary array.
pub const OS_CHANNEL_TILE: u64 = 12;
/// Output pixels computed per weight-streaming pass in OS.
pub const OS_SPATIAL_TILE: u64 = 256;

fn conv_only(shape: &LayerShape, dataflow: &'static str, i: usize) -> (u64, u64, u64, u64) {
    match *shape {
        LayerShape::Conv {
            in_channels,
            out_channels,
            kernel,
            ..
        } => (in_channels as u64, out_channels as u64, kernel as u64, {
            let _ = i;
            let _ = dataflow;
            0
        }),
        LayerShape::Fc { .. } => {
            panic!("{dataflow} dataflow maps conv layers only (layer {i})")
        }
    }
}

/// Weight-stationary: each filter weight is pinned in a PE and read from the
/// buffer once, but partial sums stream through the buffer every
/// `WS_ACC_DEPTH` accumulations and the ifmap is rebroadcast per resident
/// filter group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightStationaryDataflow;

impl WeightStationaryDataflow {
    /// Creates the dataflow model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Dataflow for WeightStationaryDataflow {
    fn name(&self) -> &'static str {
        "weight-stationary"
    }

    /// # Panics
    ///
    /// Panics if the workload contains an FC layer.
    fn activity(&self, workload: &Workload) -> WorkloadActivity {
        let layers = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, shape)| {
                let (c, m, k, _) = conv_only(shape, self.name(), i);
                let filter_passes = m.div_ceil(WS_RESIDENT_FILTERS);
                let ifmap = (shape.input_len() as f64 * filter_passes as f64 * WS_IFMAP_REFETCH)
                    .ceil() as u64;
                let spills = (c * k * k).div_ceil(WS_ACC_DEPTH);
                let psums = shape.output_len() * 2 * spills;
                LayerActivity {
                    layer: i,
                    macs: shape.macs(),
                    weight_accesses: shape.weight_count(),
                    input_accesses: ifmap,
                    output_accesses: psums,
                }
            })
            .collect();
        WorkloadActivity::new(self.name(), layers)
    }
}

/// Output-stationary: each partial sum stays in its PE until complete (one
/// buffer write per output), but weights are re-streamed for every spatial
/// tile and the ifmap for every resident-channel group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutputStationaryDataflow;

impl OutputStationaryDataflow {
    /// Creates the dataflow model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Dataflow for OutputStationaryDataflow {
    fn name(&self) -> &'static str {
        "output-stationary"
    }

    /// # Panics
    ///
    /// Panics if the workload contains an FC layer.
    fn activity(&self, workload: &Workload) -> WorkloadActivity {
        let layers = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, shape)| {
                let (_, m, _, _) = conv_only(shape, self.name(), i);
                let spatial = (shape.out_h() * shape.out_w()) as u64;
                let weight_passes = spatial.div_ceil(OS_SPATIAL_TILE);
                let channel_passes = m.div_ceil(OS_CHANNEL_TILE);
                LayerActivity {
                    layer: i,
                    macs: shape.macs(),
                    weight_accesses: shape.weight_count() * weight_passes,
                    input_accesses: shape.input_len() * channel_passes,
                    output_accesses: shape.output_len(),
                }
            })
            .collect();
        WorkloadActivity::new(self.name(), layers)
    }
}

/// No local reuse: every MAC fetches its weight and activation from the
/// buffer and round-trips its partial sum — the pathological upper bound of
/// the Fig. 12 `Ops_ratio` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoLocalReuseDataflow;

impl NoLocalReuseDataflow {
    /// Creates the dataflow model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Dataflow for NoLocalReuseDataflow {
    fn name(&self) -> &'static str {
        "no-local-reuse"
    }

    fn activity(&self, workload: &Workload) -> WorkloadActivity {
        let layers = workload
            .layers()
            .iter()
            .enumerate()
            .map(|(i, shape)| LayerActivity {
                layer: i,
                macs: shape.macs(),
                weight_accesses: shape.macs(),
                input_accesses: shape.macs(),
                output_accesses: shape.macs(),
            })
            .collect();
        WorkloadActivity::new(self.name(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_stationary::RowStationaryDataflow;
    use crate::workloads::alexnet_conv;

    #[test]
    fn dataflow_reuse_ordering_matches_the_literature() {
        // RS < OS < WS << NLR in buffer accesses per MAC for AlexNet.
        let wl = alexnet_conv();
        let rs = RowStationaryDataflow::new()
            .activity(&wl)
            .access_mac_ratio();
        let os = OutputStationaryDataflow::new()
            .activity(&wl)
            .access_mac_ratio();
        let ws = WeightStationaryDataflow::new()
            .activity(&wl)
            .access_mac_ratio();
        let nlr = NoLocalReuseDataflow::new().activity(&wl).access_mac_ratio();
        assert!(rs < os, "RS {rs} vs OS {os}");
        assert!(os < ws, "OS {os} vs WS {ws}");
        assert!(ws < 0.1, "WS should still exploit heavy reuse, got {ws}");
        assert!((nlr - 3.0).abs() < 1e-12, "NLR is 3 accesses per MAC");
    }

    #[test]
    fn ws_reads_each_weight_exactly_once() {
        let wl = alexnet_conv();
        let act = WeightStationaryDataflow::new().activity(&wl);
        let weight_reads: u64 = act.layers().iter().map(|l| l.weight_accesses).sum();
        assert_eq!(weight_reads, wl.total_weights());
    }

    #[test]
    fn os_writes_each_output_exactly_once() {
        let wl = alexnet_conv();
        let act = OutputStationaryDataflow::new().activity(&wl);
        for (layer, shape) in act.layers().iter().zip(wl.layers()) {
            assert_eq!(layer.output_accesses, shape.output_len());
        }
    }

    #[test]
    fn nlr_handles_fc_layers_too() {
        let wl = crate::workloads::mnist_fc();
        let act = NoLocalReuseDataflow::new().activity(&wl);
        assert!((act.access_mac_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "conv layers only")]
    fn ws_rejects_fc() {
        let wl = crate::workloads::mnist_fc();
        let _ = WeightStationaryDataflow::new().activity(&wl);
    }
}
