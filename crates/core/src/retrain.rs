//! Fault-aware retraining: harden a network under injected bit errors and
//! quantify the `V_min` those errors buy back.
//!
//! The paper lowers `V_min` with circuit-level boosting; MATIC (Kim et
//! al.) and Stutz et al.'s bit-error-robust training show the
//! complementary software lever — injecting the *same* bit errors during
//! training yields networks that tolerate substantially lower voltages at
//! iso-accuracy. This module closes that loop over the existing stack:
//!
//! 1. load the base network a [`NetworkSpec`] describes (the cached
//!    trained artifact a sweep would evaluate);
//! 2. fine-tune it with straight-through-estimator SGD
//!    ([`dante_nn::train::train_fault_injected`]): every mini-batch's
//!    forward/backward pass runs through a quantize→pack→corrupt→unpack
//!    copy of the current weights (the exact overlay machinery the
//!    Monte-Carlo evaluator uses, at the spec's target voltage and fault
//!    model), while the momentum update lands on the clean float weights;
//! 3. re-run the iso-accuracy solve ([`IsoAccuracySpec::solve_with`]) on
//!    both the baseline and the hardened network — same seeds, same dies,
//!    same test set — and report the `V_min` gap and energy ratios under
//!    single/boosted/dual supplies.
//!
//! Determinism: the corruption die of epoch `e` is drawn from
//! `derive_seed(spec.seed, site::RETRAIN_EPOCH, e)` (or index 0 under
//! [`ResamplePolicy::Hold`]), the mini-batch shuffle stream from the
//! reserved top index of the same site, and the loop is single-threaded —
//! so identical specs reproduce bit-identical hardened weights on any
//! machine and under any `DANTE_THREADS` setting.

use crate::accuracy::{AccuracyEvaluator, EccMode, OverlaySampling, VoltageAssignment};
use crate::iso::{IsoAccuracyResult, IsoAccuracySpec, IsoConfigPoint};
use crate::sweep::NetworkSpec;
use dante_circuit::units::Volt;
use dante_nn::network::Network;
use dante_nn::train::{train_fault_injected, SgdConfig, TrainPhase};
use dante_sim::{derive_seed, site};
use dante_sram::model::FaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// How often the corruption die is resampled while training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResamplePolicy {
    /// A fresh die per epoch (`derive_seed(seed, RETRAIN_EPOCH, epoch)`):
    /// the network sees many fault patterns and learns the error
    /// *statistics* rather than one die's layout.
    EveryEpoch,
    /// One die for the whole run (`derive_seed(seed, RETRAIN_EPOCH, 0)`):
    /// the MATIC-style per-chip calibration setting.
    Hold,
}

impl ResamplePolicy {
    /// The canonical lowercase token (`every_epoch` / `hold`).
    #[must_use]
    pub fn canonical_token(self) -> &'static str {
        match self {
            Self::EveryEpoch => "every_epoch",
            Self::Hold => "hold",
        }
    }
}

/// Retraining hyper-parameters are fixed constants of the `v1` key family
/// (changing them would silently alias cache entries): a conservative
/// fine-tuning schedule on top of the already-trained base artifact.
const RETRAIN_LR: f32 = 0.0005;
const RETRAIN_MOMENTUM: f32 = 0.9;
const RETRAIN_BATCH: usize = 32;
const RETRAIN_LR_DECAY: f32 = 0.9;

/// A complete, serializable description of one fault-aware retraining run
/// plus the iso-accuracy comparison that scores it.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainSpec {
    /// Root seed: epoch dies, the shuffle stream, and both comparison
    /// solves derive from it.
    pub seed: u64,
    /// Base network (and training/test data) to harden.
    pub network: NetworkSpec,
    /// Logic-rail voltage (millivolts) the training-time overlays are
    /// drawn at — train at the voltage you intend to deploy at.
    pub target_mv: u32,
    /// Fault statistics injected during training *and* used by both
    /// comparison solves.
    pub fault_model: FaultModel,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Die resampling policy.
    pub resample: ResamplePolicy,
    /// Candidate grid for the iso-accuracy comparison, in millivolts.
    pub voltages_mv: Vec<u32>,
    /// Monte-Carlo dies per candidate voltage in the comparison.
    pub trials: usize,
    /// Accuracy floor (fraction of clean accuracy) for the comparison.
    pub floor: f64,
    /// Boost level of the comparison's boosted configuration.
    pub level: usize,
    /// Overlay sampler (training corruption and comparison).
    pub sampling: OverlaySampling,
    /// Error-protection mode (training corruption and comparison).
    pub ecc: EccMode,
}

impl RetrainSpec {
    /// A fast toy default: harden the toy network at 380 mV.
    #[must_use]
    pub fn toy_default() -> Self {
        Self {
            seed: 0x4E7_8A1,
            network: NetworkSpec::Toy,
            target_mv: 380,
            fault_model: FaultModel::default(),
            epochs: 2,
            resample: ResamplePolicy::EveryEpoch,
            voltages_mv: (340..=600).step_by(20).collect(),
            trials: 4,
            floor: 0.97,
            level: 4,
            sampling: OverlaySampling::SparseTail,
            ecc: EccMode::None,
        }
    }

    /// The iso-accuracy spec both comparison solves run under (with this
    /// spec's fault model substituted via [`IsoAccuracySpec::solve_with`]).
    #[must_use]
    pub fn iso_spec(&self) -> IsoAccuracySpec {
        IsoAccuracySpec {
            seed: self.seed,
            voltages_mv: self.voltages_mv.clone(),
            trials: self.trials,
            floor: self.floor,
            level: self.level,
            sampling: self.sampling,
            ecc: self.ecc,
            network: self.network.clone(),
        }
    }

    /// Validates the spec's bounds (including the comparison solve's and
    /// the fault model's).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(310..=700).contains(&self.target_mv) {
            return Err(format!(
                "target_mv = {} outside the modeled 310..=700 mV range",
                self.target_mv
            ));
        }
        if !(1..=32).contains(&self.epochs) {
            return Err(format!("epochs = {} outside 1..=32", self.epochs));
        }
        self.fault_model.validate()?;
        self.iso_spec().validate()
    }

    /// The canonical flat encoding of the spec — the `dante.retrain.v1`
    /// content-address family. All retrain-specific fields are encoded
    /// directly; everything shared with a sweep (seed, trials, sampler,
    /// ECC, fault model, network, grid) rides in the trailing `base=`
    /// single-supply sweep encoding, which is itself injective. The floor
    /// is encoded by its exact bit pattern.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let base = crate::sweep::SweepSpec {
            seed: self.seed,
            voltages_mv: self.voltages_mv.clone(),
            trials: self.trials,
            sampling: self.sampling,
            ecc: self.ecc,
            network: self.network.clone(),
            supply: crate::sweep::SupplySpec::Single,
            fault_model: self.fault_model,
            geometry: crate::sweep::GeometrySpec::Calibrated,
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "dante.retrain.v1;target_mv={};epochs={};resample={};floor_bits={:016x};level={};base={}",
            self.target_mv,
            self.epochs,
            self.resample.canonical_token(),
            self.floor.to_bits(),
            self.level,
            base.canonical_string(),
        );
        out
    }

    /// Runs the full stage: load, harden, compare. Heavy — two iso solves
    /// plus the training loop.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn run(&self) -> HardenedNetwork {
        self.run_observed(&mut |_| ())
    }

    /// [`Self::run`] with per-epoch telemetry: `on_event` sees a
    /// [`RetrainEvent`] at each epoch boundary while training runs (the
    /// NDJSON stream behind `POST /v1/retrain`).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn run_observed(&self, on_event: &mut dyn FnMut(&RetrainEvent)) -> HardenedNetwork {
        if let Err(why) = self.validate() {
            panic!("invalid retrain spec: {why}");
        }
        let (mut net, train_images, train_labels, test_images, test_labels) = self.base_and_data();
        let baseline_net = net.clone();

        let weight_layers = net.weight_layer_indices().len();
        let assignment = VoltageAssignment::uniform(
            Volt::from_millivolts(f64::from(self.target_mv)),
            weight_layers,
        );
        // Trial count 1: the evaluator is only used as the corruption
        // engine here; the comparison solves build their own.
        let corruptor = AccuracyEvaluator::new(1)
            .with_sampling(self.sampling)
            .with_ecc(self.ecc)
            .with_fault_spec(self.fault_model);
        let die_seed = |epoch: usize| {
            let index = match self.resample {
                ResamplePolicy::EveryEpoch => epoch as u64,
                ResamplePolicy::Hold => 0,
            };
            derive_seed(self.seed, site::RETRAIN_EPOCH, index)
        };

        // The shuffle stream lives at the site's reserved top index so it
        // can never collide with an epoch die (epochs are capped at 32).
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, site::RETRAIN_EPOCH, u64::MAX));
        let config = SgdConfig {
            learning_rate: RETRAIN_LR,
            momentum: RETRAIN_MOMENTUM,
            batch_size: RETRAIN_BATCH,
            epochs: self.epochs,
            lr_decay: RETRAIN_LR_DECAY,
        };

        let mut reports: Vec<EpochReport> = Vec::with_capacity(self.epochs);
        train_fault_injected(
            &mut net,
            &train_images,
            &train_labels,
            &config,
            &mut rng,
            |epoch, clean| Some(corruptor.corrupt_network(clean, &assignment, die_seed(epoch))),
            |phase| match phase {
                TrainPhase::EpochStart { epoch } => {
                    on_event(&RetrainEvent::EpochStart { epoch });
                }
                TrainPhase::EpochDone { epoch, loss, net } => {
                    let clean_accuracy = net.accuracy(&test_images, &test_labels);
                    let faulty = corruptor.corrupt_network(net, &assignment, die_seed(epoch));
                    let faulty_accuracy = faulty.accuracy(&test_images, &test_labels);
                    let event = RetrainEvent::EpochDone {
                        epoch,
                        loss,
                        clean_accuracy,
                        faulty_accuracy,
                    };
                    on_event(&event);
                    reports.push(EpochReport {
                        epoch,
                        loss,
                        clean_accuracy,
                        faulty_accuracy,
                    });
                }
            },
        );

        // Both configurations must clear the SAME absolute accuracy bar —
        // the baseline's floor * clean_accuracy. Without the override a
        // hardened network whose clean accuracy slipped would get a lower
        // bar of its own, and the "gap" would reward degradation.
        let iso = self.iso_spec();
        let baseline = iso.solve_with(self.fault_model, Some(&baseline_net), None);
        let hardened = iso.solve_with(self.fault_model, Some(&net), Some(baseline.target_accuracy));

        HardenedNetwork {
            spec: self.clone(),
            network: net,
            epochs: reports,
            baseline,
            hardened,
        }
    }

    /// The base network plus its training and test buffers:
    /// `(net, train_images, train_labels, test_images, test_labels)`.
    fn base_and_data(&self) -> (Network, Vec<f32>, Vec<u8>, Vec<f32>, Vec<u8>) {
        match self.network {
            NetworkSpec::Toy => {
                let (net, images, labels) = crate::sweep::toy_net_and_data();
                // The toy set doubles as train and test, like the toy sweeps.
                (
                    net.clone(),
                    images.clone(),
                    labels.clone(),
                    images.clone(),
                    labels.clone(),
                )
            }
            NetworkSpec::MnistFc {
                train_n,
                test_n,
                epochs,
            } => {
                let (net, test) = crate::artifacts::trained_mnist_fc(train_n, test_n, epochs);
                let train = dante_nn::data::generate_mnist_like(train_n, 1);
                (
                    net,
                    train.images().to_vec(),
                    train.labels().to_vec(),
                    test.images().to_vec(),
                    test.labels().to_vec(),
                )
            }
            NetworkSpec::AlexNetConv {
                train_n,
                test_n,
                epochs,
                ..
            } => {
                let (net, test) = crate::artifacts::trained_cifar_cnn(train_n, test_n, epochs);
                let train = dante_nn::data::generate_cifar_like(train_n, 3);
                (
                    net,
                    train.images().to_vec(),
                    train.labels().to_vec(),
                    test.images().to_vec(),
                    test.labels().to_vec(),
                )
            }
        }
    }
}

/// A per-epoch telemetry event emitted while a retraining run executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainEvent {
    /// Epoch `epoch` (zero-based) is starting.
    EpochStart {
        /// Zero-based epoch index.
        epoch: usize,
    },
    /// Epoch `epoch` finished.
    EpochDone {
        /// Zero-based epoch index.
        epoch: usize,
        /// Mean mini-batch loss at the corrupted forward weights.
        loss: f32,
        /// Fault-free test accuracy of the network after the epoch.
        clean_accuracy: f64,
        /// Test accuracy under the epoch's own corruption die.
        faulty_accuracy: f64,
    },
}

/// One epoch's telemetry, retained in the artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean mini-batch loss at the corrupted forward weights.
    pub loss: f32,
    /// Fault-free test accuracy after the epoch.
    pub clean_accuracy: f64,
    /// Test accuracy under the epoch's corruption die.
    pub faulty_accuracy: f64,
}

/// The artifact a retraining run emits: the hardened weights plus the
/// baseline/hardened iso-accuracy comparison that scores them.
#[derive(Debug, Clone, PartialEq)]
pub struct HardenedNetwork {
    /// The spec that produced this artifact.
    pub spec: RetrainSpec,
    /// The hardened network (clean float weights after fine-tuning).
    pub network: Network,
    /// Per-epoch telemetry.
    pub epochs: Vec<EpochReport>,
    /// Iso-accuracy solve of the *base* network under the spec's fault
    /// model.
    pub baseline: IsoAccuracyResult,
    /// The same solve on the hardened network — same seeds, same dies.
    pub hardened: IsoAccuracyResult,
}

fn vmin_mv(point: &Option<IsoConfigPoint>) -> Option<f64> {
    point.as_ref().map(|p| p.v_logic.millivolts())
}

fn gap_mv(baseline: &Option<IsoConfigPoint>, hardened: &Option<IsoConfigPoint>) -> Option<f64> {
    match (baseline, hardened) {
        (Some(b), Some(h)) => Some(b.v_logic.millivolts() - h.v_logic.millivolts()),
        _ => None,
    }
}

fn energy_ratio(
    baseline: &Option<IsoConfigPoint>,
    hardened: &Option<IsoConfigPoint>,
) -> Option<f64> {
    match (baseline, hardened) {
        (Some(b), Some(h)) => {
            Some(h.energy.dynamic.total().joules() / b.energy.dynamic.total().joules())
        }
        _ => None,
    }
}

impl HardenedNetwork {
    /// Baseline single-supply `V_min` in millivolts, if the floor was met.
    #[must_use]
    pub fn baseline_single_vmin_mv(&self) -> Option<f64> {
        vmin_mv(&self.baseline.single)
    }

    /// Hardened single-supply `V_min` in millivolts, if the floor was met.
    #[must_use]
    pub fn hardened_single_vmin_mv(&self) -> Option<f64> {
        vmin_mv(&self.hardened.single)
    }

    /// `baseline − hardened` single-supply `V_min` in millivolts: positive
    /// means retraining bought voltage margin.
    #[must_use]
    pub fn single_vmin_gap_mv(&self) -> Option<f64> {
        gap_mv(&self.baseline.single, &self.hardened.single)
    }

    /// `baseline − hardened` boosted `V_min` in millivolts.
    #[must_use]
    pub fn boosted_vmin_gap_mv(&self) -> Option<f64> {
        gap_mv(&self.baseline.boosted, &self.hardened.boosted)
    }

    /// Hardened-over-baseline dynamic energy at each configuration's own
    /// single-supply operating point (< 1 means retraining saves energy).
    #[must_use]
    pub fn single_energy_ratio(&self) -> Option<f64> {
        energy_ratio(&self.baseline.single, &self.hardened.single)
    }

    /// Hardened-over-baseline dynamic energy at the boosted points.
    #[must_use]
    pub fn boosted_energy_ratio(&self) -> Option<f64> {
        energy_ratio(&self.baseline.boosted, &self.hardened.boosted)
    }

    /// Hardened-over-baseline dynamic energy at the dual-supply baselines.
    #[must_use]
    pub fn dual_energy_ratio(&self) -> Option<f64> {
        energy_ratio(&self.baseline.dual, &self.hardened.dual)
    }

    /// FNV-1a digest of the hardened weights' serialized bytes — the cheap
    /// byte-identity witness the service response and the determinism
    /// tests compare.
    #[must_use]
    pub fn weight_digest(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.network.to_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_string_prefix_and_fields() {
        let spec = RetrainSpec::toy_default();
        let s = spec.canonical_string();
        assert!(s.starts_with("dante.retrain.v1;"), "{s}");
        assert!(s.contains("target_mv=380;"), "{s}");
        assert!(s.contains("resample=every_epoch;"), "{s}");
        assert!(s.contains("base=dante.sweep.v1;"), "{s}");

        // Each retrain-specific field changes the encoding.
        let mut b = spec.clone();
        b.target_mv = 400;
        assert_ne!(spec.canonical_string(), b.canonical_string());
        let mut b = spec.clone();
        b.resample = ResamplePolicy::Hold;
        assert_ne!(spec.canonical_string(), b.canonical_string());
        let mut b = spec.clone();
        b.epochs = 3;
        assert_ne!(spec.canonical_string(), b.canonical_string());
        let mut b = spec.clone();
        b.floor = 0.97 + 1e-12;
        assert_ne!(spec.canonical_string(), b.canonical_string());
    }

    #[test]
    fn validation_rejects_bad_bounds() {
        let mut bad = RetrainSpec::toy_default();
        bad.target_mv = 200;
        assert!(bad.validate().unwrap_err().contains("target_mv"));
        let mut bad = RetrainSpec::toy_default();
        bad.epochs = 0;
        assert!(bad.validate().unwrap_err().contains("epochs"));
        let mut bad = RetrainSpec::toy_default();
        bad.epochs = 33;
        assert!(bad.validate().is_err());
        let mut bad = RetrainSpec::toy_default();
        bad.floor = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = RetrainSpec::toy_default();
        bad.voltages_mv = vec![440, 440];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn toy_run_is_deterministic_and_events_are_ordered() {
        let spec = RetrainSpec {
            trials: 2,
            voltages_mv: vec![360, 420, 480, 540],
            ..RetrainSpec::toy_default()
        };
        let mut events = Vec::new();
        let a = spec.run_observed(&mut |e| events.push(*e));
        let b = spec.run();
        assert_eq!(a.network.to_bytes(), b.network.to_bytes());
        assert_eq!(a.weight_digest(), b.weight_digest());
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.hardened, b.hardened);

        // epoch_start/epoch_done alternate in order.
        assert_eq!(events.len(), 2 * spec.epochs);
        for (i, pair) in events.chunks(2).enumerate() {
            assert!(matches!(pair[0], RetrainEvent::EpochStart { epoch } if epoch == i));
            assert!(matches!(pair[1], RetrainEvent::EpochDone { epoch, .. } if epoch == i));
        }

        // A different seed must produce different hardened weights.
        let other = RetrainSpec {
            seed: spec.seed ^ 1,
            ..spec.clone()
        };
        let c = other.run();
        assert_ne!(a.network.to_bytes(), c.network.to_bytes());
    }

    #[test]
    fn hardening_does_not_regress_the_toy_vmin() {
        let spec = RetrainSpec {
            trials: 2,
            voltages_mv: vec![360, 400, 440, 480, 520, 560],
            epochs: 3,
            ..RetrainSpec::toy_default()
        };
        let h = spec.run();
        let (Some(base), Some(hard)) = (h.baseline_single_vmin_mv(), h.hardened_single_vmin_mv())
        else {
            panic!("both configurations must meet the floor somewhere on the toy grid");
        };
        assert!(
            hard <= base,
            "hardened V_min {hard} mV must not exceed baseline {base} mV"
        );
        assert_eq!(h.epochs.len(), 3);
        assert!(h.epochs.iter().all(|e| e.loss.is_finite()));
    }
}
