//! The paper's headline numbers, computed from the models — the abstract's
//! summary claims, regenerated (see EXPERIMENTS.md for paper-vs-measured).

use crate::schedule::BoostPlan;
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::fc_dana::DanaFcDataflow;
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::{alexnet_conv, mnist_fc};
use dante_energy::supply::{BoostedGroup, EnergyModel};

/// The iso-accuracy target rail (Sec. 6.3).
const TARGET_V: Volt = Volt::const_new(0.48);

/// The headline results of the paper's abstract and Sec. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headlines {
    /// Peak AlexNet dynamic-energy savings of boosting vs. dual supply at
    /// full boost (paper: up to 26%).
    pub alexnet_peak_savings_vs_dual: f64,
    /// Mean AlexNet savings vs. dual supply across the 0.34–0.46 V
    /// iso-accuracy sweep (paper: 17% on average).
    pub alexnet_avg_savings_vs_dual: f64,
    /// Mean AlexNet savings vs. the 0.48 V single-supply alternative
    /// (paper: 30%).
    pub alexnet_savings_vs_single_048: f64,
    /// Mean leakage savings of boosting vs. dual supply over 0.34–0.50 V
    /// (paper: 32%).
    pub leakage_savings_vs_dual: f64,
    /// Booster leakage overhead relative to the unboosted chip (paper: ~6%).
    pub booster_leakage_overhead: f64,
    /// Boost-vs-dual advantage for the memory-bound MNIST FC-DNN at 0.40 V
    /// full boost (small — dual is only competitive here).
    pub mnist_savings_vs_dual: f64,
}

/// Computes every headline from the calibrated models.
#[must_use]
pub fn compute() -> Headlines {
    let m = EnergyModel::dante_chip();
    let booster = m.booster().clone();

    let conv = RowStationaryDataflow::new().activity(&alexnet_conv());
    let conv_acc = conv.total_sram_accesses();
    let conv_macs = conv.total_macs();

    // Peak savings vs dual: full boost at 0.40 V.
    let vdd = Volt::new(0.40);
    let vddv4 = booster.boosted_voltage(vdd, 4);
    let boost4 = m
        .dynamic_boosted(
            vdd,
            &[BoostedGroup {
                accesses: conv_acc,
                level: 4,
            }],
            conv_macs,
        )
        .joules();
    let dual4 = m.dynamic_dual(vddv4, vdd, conv_acc, conv_macs).joules();
    let alexnet_peak_savings_vs_dual = 1.0 - boost4 / dual4;

    // Iso-accuracy sweep 0.34–0.46 V.
    let voltages: Vec<Volt> = (0..=6)
        .map(|i| Volt::new(0.34 + 0.02 * f64::from(i)))
        .collect();
    let single_048 = m.dynamic_single(TARGET_V, conv_acc, conv_macs).joules();
    let mut vs_dual = Vec::new();
    let mut vs_single = Vec::new();
    for &v in &voltages {
        let Some(level) = booster.min_level_reaching(v, TARGET_V) else {
            continue;
        };
        let vddv = booster.boosted_voltage(v, level);
        let boost = m
            .dynamic_boosted(
                v,
                &[BoostedGroup {
                    accesses: conv_acc,
                    level,
                }],
                conv_macs,
            )
            .joules();
        let dual = m.dynamic_dual(vddv, v, conv_acc, conv_macs).joules();
        vs_dual.push(1.0 - boost / dual);
        vs_single.push(1.0 - boost / single_048);
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let alexnet_avg_savings_vs_dual = mean(&vs_dual);
    let alexnet_savings_vs_single_048 = mean(&vs_single);

    // Leakage savings over 0.34–0.50 V at full boost.
    let mut leak_savings = Vec::new();
    for mv in (340..=500).step_by(20) {
        let v = Volt::from_millivolts(f64::from(mv));
        let vddv = booster.boosted_voltage(v, 4);
        let b = m.leakage_boosted_per_cycle(v).joules();
        let d = m.leakage_dual_per_cycle(vddv, v).joules();
        leak_savings.push(1.0 - b / d);
    }
    let leakage_savings_vs_dual = mean(&leak_savings);

    let booster_leakage_overhead =
        m.leakage_boosted_per_cycle(vdd).joules() / m.leakage_single_per_cycle(vdd).joules() - 1.0;

    // MNIST FC: full-boost plan vs dual at 0.40 V.
    let fc = DanaFcDataflow::new().activity(&mnist_fc());
    let plan = BoostPlan::from_named_uniform(4, 4, &booster, vdd);
    let boost_fc = m
        .dynamic_boosted(vdd, &plan.boosted_groups(&fc), fc.total_macs())
        .joules();
    let dual_fc = m
        .dynamic_dual(vddv4, vdd, fc.total_sram_accesses(), fc.total_macs())
        .joules();
    let mnist_savings_vs_dual = 1.0 - boost_fc / dual_fc;

    Headlines {
        alexnet_peak_savings_vs_dual,
        alexnet_avg_savings_vs_dual,
        alexnet_savings_vs_single_048,
        leakage_savings_vs_dual,
        booster_leakage_overhead,
        mnist_savings_vs_dual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_land_in_the_paper_bands() {
        let h = compute();
        assert!(
            (0.20..=0.40).contains(&h.alexnet_peak_savings_vs_dual),
            "peak vs dual {:.3} (paper 0.26)",
            h.alexnet_peak_savings_vs_dual
        );
        assert!(
            (0.10..=0.30).contains(&h.alexnet_avg_savings_vs_dual),
            "avg vs dual {:.3} (paper 0.17)",
            h.alexnet_avg_savings_vs_dual
        );
        assert!(
            (0.18..=0.45).contains(&h.alexnet_savings_vs_single_048),
            "vs single@0.48 {:.3} (paper 0.30)",
            h.alexnet_savings_vs_single_048
        );
        assert!(
            (0.22..=0.45).contains(&h.leakage_savings_vs_dual),
            "leakage savings {:.3} (paper 0.32)",
            h.leakage_savings_vs_dual
        );
        assert!(
            (0.04..=0.08).contains(&h.booster_leakage_overhead),
            "booster overhead {:.3} (paper 0.06)",
            h.booster_leakage_overhead
        );
    }

    #[test]
    fn conv_workloads_benefit_far_more_than_fc() {
        let h = compute();
        assert!(h.alexnet_peak_savings_vs_dual > h.mnist_savings_vs_dual + 0.1);
        // Boosting should not lose badly even in the worst (FC) case.
        assert!(h.mnist_savings_vs_dual > -0.10);
    }
}
