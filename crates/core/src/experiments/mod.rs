//! The paper's evaluation experiments (Sec. 6).

pub mod conv;
pub mod fc;

pub use conv::{ConvExperiment, ConvPoint, IsoAccuracyPoint, ISO_ACCURACY_TARGET_V};
pub use fc::{FcExperiment, FcPoint};
