//! The fully-connected network analysis of paper Fig. 13.
//!
//! For every supply voltage and every Table 2 boost configuration this
//! experiment produces: Monte-Carlo inference accuracy, boosted dynamic
//! energy (Eq. 3), the single-supply (Eq. 2) and dual-supply (Eq. 6)
//! baselines at the corresponding target voltage, and the three leakage
//! energies per cycle (Eq. 4/7) — all normalized to the chip's dynamic
//! energy at 0.5 V as in the paper's plots.

use crate::accuracy::AccuracyEvaluator;
use crate::schedule::{BoostPlan, NamedBoostConfig};
use dante_circuit::units::Volt;
use dante_dataflow::activity::{Dataflow, WorkloadActivity};
use dante_dataflow::fc_dana::DanaFcDataflow;
use dante_dataflow::workloads::mnist_fc;
use dante_energy::supply::EnergyModel;
use dante_nn::network::Network;
use dante_sim::{derive_seed, site};

/// One `(Vdd, config)` data point of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct FcPoint {
    /// Supply voltage.
    pub vdd: Volt,
    /// Boost configuration.
    pub config: NamedBoostConfig,
    /// Target (comparison) voltage: the rail of the highest boost level in
    /// the plan.
    pub vddv: Volt,
    /// Mean Monte-Carlo accuracy.
    pub accuracy_mean: f64,
    /// Standard deviation across fault dies.
    pub accuracy_std: f64,
    /// Boosted dynamic energy, normalized to the 0.5 V chip reference.
    pub boost_dynamic: f64,
    /// Single-supply (at `vddv`) dynamic energy, normalized.
    pub single_dynamic: f64,
    /// Dual-supply (`V_h = vddv`, `V_l = vdd`) dynamic energy, normalized.
    pub dual_dynamic: f64,
    /// Boosted leakage energy per cycle, joules.
    pub boost_leakage: f64,
    /// Single-supply (at `vddv`) leakage energy per cycle, joules.
    pub single_leakage: f64,
    /// Dual-supply leakage energy per cycle, joules.
    pub dual_leakage: f64,
}

/// The Fig. 13 experiment context.
#[derive(Debug)]
pub struct FcExperiment<'a> {
    net: &'a Network,
    test_images: &'a [f32],
    test_labels: &'a [u8],
    evaluator: AccuracyEvaluator,
    energy: EnergyModel,
    activity: WorkloadActivity,
}

impl<'a> FcExperiment<'a> {
    /// Creates the experiment around a trained FC-DNN and its test set.
    ///
    /// # Panics
    ///
    /// Panics if the network does not have four weight layers (the paper's
    /// FC-DNN) or buffer lengths are inconsistent.
    #[must_use]
    pub fn new(
        net: &'a Network,
        test_images: &'a [f32],
        test_labels: &'a [u8],
        trials: usize,
    ) -> Self {
        assert_eq!(
            net.weight_layer_indices().len(),
            4,
            "the Fig. 13 experiment expects the 4-layer FC-DNN"
        );
        assert_eq!(
            test_images.len(),
            test_labels.len() * net.in_len(),
            "test buffer length mismatch"
        );
        Self {
            net,
            test_images,
            test_labels,
            evaluator: AccuracyEvaluator::new(trials),
            energy: EnergyModel::dante_chip(),
            activity: DanaFcDataflow::new().activity(&mnist_fc()),
        }
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The paper's Fig. 13 voltage axis: 0.34–0.50 V in 20 mV steps.
    #[must_use]
    pub fn default_voltages() -> Vec<Volt> {
        (0..=8)
            .map(|i| Volt::new(0.34 + 0.02 * f64::from(i)))
            .collect()
    }

    /// Computes one data point.
    #[must_use]
    pub fn point(&self, vdd: Volt, config: NamedBoostConfig, seed: u64) -> FcPoint {
        let booster = self.energy.booster();
        let plan = BoostPlan::from_named(config, 4, booster, vdd);
        let vddv = booster.boosted_voltage(vdd, plan.max_weight_level());

        // Accuracy via Monte-Carlo fault injection at the plan's rails.
        let assignment = plan.voltage_assignment(booster, vdd);
        let stats = self.evaluator.evaluate(
            self.net,
            &assignment,
            self.test_images,
            self.test_labels,
            seed,
        );

        // Energy via Eqs. 2, 3, 6 on the DANA activity counts.
        let macs = self.activity.total_macs();
        let accesses = self.activity.total_sram_accesses();
        let reference = self.energy.reference_energy_at_0v5(accesses, macs).joules();
        let groups = plan.boosted_groups(&self.activity);
        let boost = self.energy.dynamic_boosted(vdd, &groups, macs).joules();
        let single = self.energy.dynamic_single(vddv, accesses, macs).joules();
        let dual = self.energy.dynamic_dual(vddv, vdd, accesses, macs).joules();

        FcPoint {
            vdd,
            config,
            vddv,
            accuracy_mean: stats.mean(),
            accuracy_std: stats.std_dev(),
            boost_dynamic: boost / reference,
            single_dynamic: single / reference,
            dual_dynamic: dual / reference,
            boost_leakage: self.energy.leakage_boosted_per_cycle(vdd).joules(),
            single_leakage: self.energy.leakage_single_per_cycle(vddv).joules(),
            dual_leakage: self.energy.leakage_dual_per_cycle(vddv, vdd).joules(),
        }
    }

    /// Runs the full grid: every voltage x every Table 2 configuration.
    /// Each cell evaluates under its own [`derive_seed`]-derived sub-seed,
    /// so any cell can be recomputed in isolation.
    #[must_use]
    pub fn run(&self, voltages: &[Volt], seed: u64) -> Vec<FcPoint> {
        let configs = NamedBoostConfig::all();
        let mut out = Vec::with_capacity(voltages.len() * configs.len());
        for (vi, &vdd) in voltages.iter().enumerate() {
            for (ci, &config) in configs.iter().enumerate() {
                let cell = (vi * configs.len() + ci) as u64;
                out.push(self.point(vdd, config, derive_seed(seed, site::GRID_CELL, cell)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Dense, Layer, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small stand-in with the FC-DNN's 4-weight-layer structure but tiny
    /// dimensions, so the unit tests stay fast. The real 784-wide network is
    /// exercised by the bench harness and integration tests.
    fn tiny_fc4() -> (Network, Vec<f32>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(12, 16, &mut rng)),
            Layer::Relu(Relu::new(16)),
            Layer::Dense(Dense::new(16, 16, &mut rng)),
            Layer::Relu(Relu::new(16)),
            Layer::Dense(Dense::new(16, 16, &mut rng)),
            Layer::Relu(Relu::new(16)),
            Layer::Dense(Dense::new(16, 3, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let c = (i % 3) as u8;
            for j in 0..12 {
                let on = (j % 3) == usize::from(c);
                images.push(if on { 0.9 } else { 0.1 } + ((i + j) % 5) as f32 * 0.01);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 25,
            batch_size: 10,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    }

    #[test]
    fn higher_boost_gives_higher_accuracy_at_vlv() {
        let (net, images, labels) = tiny_fc4();
        let exp = FcExperiment::new(&net, &images, &labels, 4);
        let vdd = Volt::new(0.38);
        let lo = exp.point(vdd, NamedBoostConfig::Vddv1, 1);
        let hi = exp.point(vdd, NamedBoostConfig::Vddv4, 1);
        assert!(
            hi.accuracy_mean >= lo.accuracy_mean,
            "Vddv4 ({}) must beat Vddv1 ({}) at 0.38 V",
            hi.accuracy_mean,
            lo.accuracy_mean
        );
        assert!(
            hi.accuracy_mean > 0.9,
            "full boost at 0.38 V reaches ~0.55 V rails"
        );
    }

    #[test]
    fn boost_beats_single_supply_and_energy_orders_hold() {
        let (net, images, labels) = tiny_fc4();
        let exp = FcExperiment::new(&net, &images, &labels, 1);
        for config in [NamedBoostConfig::Vddv3, NamedBoostConfig::Vddv4] {
            let p = exp.point(Volt::new(0.40), config, 2);
            // Paper Fig. 13a: boosting beats the corresponding single supply.
            assert!(
                p.boost_dynamic < p.single_dynamic,
                "{}: boost {} vs single {}",
                config.name(),
                p.boost_dynamic,
                p.single_dynamic
            );
            // Leakage: boosted << single-at-vddv and << dual.
            assert!(p.boost_leakage < p.single_leakage);
            assert!(p.boost_leakage < p.dual_leakage);
        }
    }

    #[test]
    fn normalization_reference_is_0v5_chip_energy() {
        let (net, images, labels) = tiny_fc4();
        let exp = FcExperiment::new(&net, &images, &labels, 1);
        // A single-supply point at exactly 0.5 V must normalize to ~1.
        let activity = DanaFcDataflow::new().activity(&mnist_fc());
        let reference = exp
            .energy_model()
            .reference_energy_at_0v5(activity.total_sram_accesses(), activity.total_macs());
        let single_05 = exp.energy_model().dynamic_single(
            Volt::new(0.5),
            activity.total_sram_accesses(),
            activity.total_macs(),
        );
        assert!((single_05.joules() / reference.joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_covers_the_full_grid() {
        let (net, images, labels) = tiny_fc4();
        let exp = FcExperiment::new(&net, &images, &labels, 1);
        let voltages = [Volt::new(0.38), Volt::new(0.46)];
        let pts = exp.run(&voltages, 3);
        assert_eq!(pts.len(), 12);
        assert!(pts.iter().any(|p| p.config == NamedBoostConfig::Diff2));
    }

    #[test]
    fn default_voltage_axis_matches_fig13() {
        let vs = FcExperiment::default_voltages();
        assert_eq!(vs.len(), 9);
        assert!((vs[0].volts() - 0.34).abs() < 1e-9);
        assert!((vs[8].volts() - 0.50).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "expects the 4-layer FC-DNN")]
    fn wrong_layer_count_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(vec![Layer::Dense(Dense::new(4, 2, &mut rng))]).unwrap();
        let labels = [0u8];
        let images = [0.0f32; 4];
        let _ = FcExperiment::new(&net, &images, &labels, 1);
    }
}
