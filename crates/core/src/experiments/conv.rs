//! The convolutional-network analysis of paper Figs. 14 and 15.
//!
//! Energy uses the *real* AlexNet conv-layer shapes under the Eyeriss
//! row-stationary activity model (the same inputs the paper feeds Eq. 3 and
//! Eq. 6); accuracy uses the compact CNN proxy trained on the procedural
//! CIFAR-like set (see DESIGN.md for the substitution rationale).

use crate::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante_circuit::units::Volt;
use dante_dataflow::activity::{Dataflow, WorkloadActivity};
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::alexnet_conv;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use dante_nn::network::Network;
use dante_sim::{derive_seed, site};

/// The supply voltage at which the chip reaches the iso-accuracy target
/// without boosting (paper Sec. 6.3: "The chip reaches its target accuracy
/// at Vdd >= 0.48 V without need for boosting").
pub const ISO_ACCURACY_TARGET_V: Volt = Volt::const_new(0.48);

/// One `(Vdd, level)` data point of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvPoint {
    /// Supply voltage.
    pub vdd: Volt,
    /// Uniform boost level applied to the global buffer.
    pub level: usize,
    /// Boosted rail voltage.
    pub vddv: Volt,
    /// Mean Monte-Carlo accuracy of the CNN proxy at the boosted rail.
    pub accuracy_mean: f64,
    /// Boosted dynamic energy (Eq. 3), normalized to the 0.5 V reference.
    pub boost_dynamic: f64,
    /// Dual-supply dynamic energy (Eq. 6), normalized.
    pub dual_dynamic: f64,
}

/// One point of the Fig. 15 iso-accuracy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoAccuracyPoint {
    /// Supply voltage.
    pub vdd: Volt,
    /// Minimum boost level whose rail reaches the target voltage.
    pub level: usize,
    /// The boosted rail voltage actually achieved.
    pub vddv: Volt,
    /// Boosted dynamic energy, normalized to the 0.5 V reference.
    pub boost_dynamic: f64,
    /// Dual-supply dynamic energy at the same rails, normalized.
    pub dual_dynamic: f64,
    /// Single-supply energy with everything at the 0.48 V target, normalized
    /// (constant across the sweep — the no-boost alternative).
    pub single_at_target: f64,
}

/// The Figs. 14/15 experiment context.
#[derive(Debug)]
pub struct ConvExperiment<'a> {
    proxy_net: &'a Network,
    test_images: &'a [f32],
    test_labels: &'a [u8],
    evaluator: AccuracyEvaluator,
    energy: EnergyModel,
    activity: WorkloadActivity,
}

impl<'a> ConvExperiment<'a> {
    /// Creates the experiment around the trained CNN proxy and its test
    /// set.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent buffer lengths.
    #[must_use]
    pub fn new(
        proxy_net: &'a Network,
        test_images: &'a [f32],
        test_labels: &'a [u8],
        trials: usize,
    ) -> Self {
        assert_eq!(
            test_images.len(),
            test_labels.len() * proxy_net.in_len(),
            "test buffer length mismatch"
        );
        Self {
            proxy_net,
            test_images,
            test_labels,
            evaluator: AccuracyEvaluator::new(trials),
            energy: EnergyModel::dante_chip(),
            activity: RowStationaryDataflow::new().activity(&alexnet_conv()),
        }
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The AlexNet RS activity counts feeding the energy model.
    #[must_use]
    pub fn activity(&self) -> &WorkloadActivity {
        &self.activity
    }

    /// The Fig. 14/15 voltage axis: 0.34–0.46 V in 20 mV steps.
    #[must_use]
    pub fn default_voltages() -> Vec<Volt> {
        (0..=6)
            .map(|i| Volt::new(0.34 + 0.02 * f64::from(i)))
            .collect()
    }

    fn normalized(&self, joules: f64) -> f64 {
        let reference = self
            .energy
            .reference_energy_at_0v5(
                self.activity.total_sram_accesses(),
                self.activity.total_macs(),
            )
            .joules();
        joules / reference
    }

    fn proxy_accuracy(&self, rail: Volt, seed: u64) -> f64 {
        let layers = self.proxy_net.weight_layer_indices().len();
        let assignment = VoltageAssignment::uniform(rail, layers);
        self.evaluator
            .evaluate(
                self.proxy_net,
                &assignment,
                self.test_images,
                self.test_labels,
                seed,
            )
            .mean()
    }

    /// Computes one Fig. 14 point.
    #[must_use]
    pub fn point(&self, vdd: Volt, level: usize, seed: u64) -> ConvPoint {
        let booster = self.energy.booster();
        let vddv = booster.boosted_voltage(vdd, level);
        let macs = self.activity.total_macs();
        let accesses = self.activity.total_sram_accesses();
        let boost = self
            .energy
            .dynamic_boosted(vdd, &[BoostedGroup { accesses, level }], macs)
            .joules();
        let dual = self.energy.dynamic_dual(vddv, vdd, accesses, macs).joules();
        ConvPoint {
            vdd,
            level,
            vddv,
            accuracy_mean: self.proxy_accuracy(vddv, seed),
            boost_dynamic: self.normalized(boost),
            dual_dynamic: self.normalized(dual),
        }
    }

    /// Runs the Fig. 14 grid: every voltage x boost levels 1..=4.
    /// Each cell evaluates under its own [`derive_seed`]-derived sub-seed,
    /// so any cell can be recomputed in isolation.
    #[must_use]
    pub fn run(&self, voltages: &[Volt], seed: u64) -> Vec<ConvPoint> {
        let levels = self.energy.booster().levels();
        let mut out = Vec::new();
        for (vi, &vdd) in voltages.iter().enumerate() {
            for level in 1..=levels {
                let cell = (vi * levels + (level - 1)) as u64;
                out.push(self.point(vdd, level, derive_seed(seed, site::GRID_CELL, cell)));
            }
        }
        out
    }

    /// Runs the Fig. 15 iso-accuracy sweep: at each supply voltage choose
    /// the *minimum* boost level whose rail reaches
    /// [`ISO_ACCURACY_TARGET_V`] and compare against dual-supply and the
    /// 0.48 V single-supply alternative.
    ///
    /// Voltages whose full boost cannot reach the target are skipped (the
    /// chip cannot meet accuracy there).
    #[must_use]
    pub fn iso_accuracy_sweep(&self, voltages: &[Volt]) -> Vec<IsoAccuracyPoint> {
        let booster = self.energy.booster();
        let macs = self.activity.total_macs();
        let accesses = self.activity.total_sram_accesses();
        let single_target = self
            .energy
            .dynamic_single(ISO_ACCURACY_TARGET_V, accesses, macs)
            .joules();
        voltages
            .iter()
            .filter_map(|&vdd| {
                let level = booster.min_level_reaching(vdd, ISO_ACCURACY_TARGET_V)?;
                let vddv = booster.boosted_voltage(vdd, level);
                let boost = self
                    .energy
                    .dynamic_boosted(vdd, &[BoostedGroup { accesses, level }], macs)
                    .joules();
                let dual = self.energy.dynamic_dual(vddv, vdd, accesses, macs).joules();
                Some(IsoAccuracyPoint {
                    vdd,
                    level,
                    vddv,
                    boost_dynamic: self.normalized(boost),
                    dual_dynamic: self.normalized(dual),
                    single_at_target: self.normalized(single_target),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny conv proxy for fast unit tests.
    fn tiny_cnn() -> (Network, Vec<f32>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(64, 2, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = (i % 2) as u8;
            for y in 0..8 {
                for x in 0..8 {
                    // class 0: horizontal stripes, class 1: vertical stripes
                    let v = if c == 0 {
                        (y % 2) as f32
                    } else {
                        (x % 2) as f32
                    };
                    images.push(v * 0.8 + ((i + x + y) % 5) as f32 * 0.02);
                }
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 15,
            batch_size: 10,
            learning_rate: 0.05,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    }

    #[test]
    fn boost_beats_dual_across_all_levels() {
        // The Fig. 14 energy claim.
        let (net, images, labels) = tiny_cnn();
        let exp = ConvExperiment::new(&net, &images, &labels, 1);
        for &vdd in &[Volt::new(0.36), Volt::new(0.42)] {
            for level in 1..=4 {
                let p = exp.point(vdd, level, 1);
                assert!(
                    p.boost_dynamic < p.dual_dynamic,
                    "boost {} vs dual {} at {vdd} level {level}",
                    p.boost_dynamic,
                    p.dual_dynamic
                );
            }
        }
    }

    #[test]
    fn full_boost_recovers_proxy_accuracy_at_low_vdd() {
        let (net, images, labels) = tiny_cnn();
        let clean = net.accuracy(&images, &labels);
        assert!(clean > 0.9, "proxy failed to train: {clean}");
        let exp = ConvExperiment::new(&net, &images, &labels, 3);
        let low = exp.point(Volt::new(0.36), 1, 2);
        let high = exp.point(Volt::new(0.36), 4, 2);
        assert!(high.accuracy_mean >= low.accuracy_mean);
        assert!(
            high.accuracy_mean > 0.85,
            "level 4 at 0.36 V -> ~0.54 V rail"
        );
    }

    #[test]
    fn iso_accuracy_sweep_picks_minimum_levels() {
        let (net, images, labels) = tiny_cnn();
        let exp = ConvExperiment::new(&net, &images, &labels, 1);
        let pts = exp.iso_accuracy_sweep(&ConvExperiment::default_voltages());
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(
                p.vddv >= ISO_ACCURACY_TARGET_V,
                "rail below target at {}",
                p.vdd
            );
            // Minimality: one level lower must miss the target (level 0 means
            // vdd itself already reaches it).
            if p.level > 0 {
                let lower = exp
                    .energy_model()
                    .booster()
                    .boosted_voltage(p.vdd, p.level - 1);
                assert!(lower < ISO_ACCURACY_TARGET_V);
            }
        }
        // Levels decrease as the supply rises (paper: Vddv3 at 0.38 V,
        // Vddv1 at 0.46 V).
        let at = |mv: u32| {
            pts.iter()
                .find(|p| (p.vdd.millivolts() - f64::from(mv)).abs() < 1.0)
                .map(|p| p.level)
        };
        assert_eq!(at(380), Some(3));
        assert_eq!(at(460), Some(1));
    }

    #[test]
    fn iso_accuracy_boost_saves_about_30_percent_vs_single_048() {
        // Paper Sec. 6.3: "Compared to the dynamic energy at single supply
        // of 0.48 V, boosting results in 30% energy savings."
        let (net, images, labels) = tiny_cnn();
        let exp = ConvExperiment::new(&net, &images, &labels, 1);
        let pts = exp.iso_accuracy_sweep(&ConvExperiment::default_voltages());
        let savings: Vec<f64> = pts
            .iter()
            .map(|p| 1.0 - p.boost_dynamic / p.single_at_target)
            .collect();
        let avg = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(
            (0.18..=0.45).contains(&avg),
            "average savings {avg:.3} should be ~0.30"
        );
    }

    #[test]
    fn iso_accuracy_boost_beats_dual_by_about_17_percent() {
        // Paper Sec. 6.3: "boosting results in 17% lower energy on average
        // ... compared to dual supply operation."
        let (net, images, labels) = tiny_cnn();
        let exp = ConvExperiment::new(&net, &images, &labels, 1);
        let pts = exp.iso_accuracy_sweep(&ConvExperiment::default_voltages());
        let savings: Vec<f64> = pts
            .iter()
            .map(|p| 1.0 - p.boost_dynamic / p.dual_dynamic)
            .collect();
        let avg = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(
            (0.10..=0.30).contains(&avg),
            "average savings {avg:.3} should be ~0.17"
        );
    }

    #[test]
    fn run_covers_voltages_times_levels() {
        let (net, images, labels) = tiny_cnn();
        let exp = ConvExperiment::new(&net, &images, &labels, 1);
        let pts = exp.run(&[Volt::new(0.38), Volt::new(0.44)], 5);
        assert_eq!(pts.len(), 8);
    }
}
