//! Application-aware boost policy optimization.
//!
//! The paper's architecture hands the application control of the
//! accuracy/energy trade-off; this module automates the choice: given a
//! trained network, a test set, and a target accuracy, find the cheapest
//! [`BoostPlan`] (per-layer levels + input level) that still meets the
//! target — the search that produces the paper's `Boost_diff` style
//! configurations and the Fig. 15 operating points.

use crate::accuracy::AccuracyEvaluator;
use crate::schedule::BoostPlan;
use dante_circuit::booster::BoosterBank;
use dante_circuit::units::Volt;
use dante_dataflow::activity::WorkloadActivity;
use dante_energy::supply::EnergyModel;
use dante_nn::network::Network;
use dante_sim::{derive_seed, site};

/// The boost-policy optimizer.
#[derive(Debug)]
pub struct PolicyOptimizer {
    evaluator: AccuracyEvaluator,
    energy: EnergyModel,
    target_accuracy: f64,
}

/// A plan found by the optimizer, with its predicted cost and quality.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedPlan {
    /// The chosen boost plan.
    pub plan: BoostPlan,
    /// Mean Monte-Carlo accuracy of the plan.
    pub accuracy: f64,
    /// Dynamic energy of one inference under the plan, joules.
    pub dynamic_energy: f64,
}

impl PolicyOptimizer {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `target_accuracy` is in `(0, 1]`.
    #[must_use]
    pub fn new(trials: usize, target_accuracy: f64) -> Self {
        assert!(
            target_accuracy > 0.0 && target_accuracy <= 1.0,
            "target accuracy must be in (0, 1]"
        );
        Self {
            evaluator: AccuracyEvaluator::new(trials),
            energy: EnergyModel::dante_chip(),
            target_accuracy,
        }
    }

    /// The accuracy target.
    #[must_use]
    pub fn target_accuracy(&self) -> f64 {
        self.target_accuracy
    }

    fn booster(&self) -> &BoosterBank {
        self.energy.booster()
    }

    fn accuracy_of(
        &self,
        net: &Network,
        plan: &BoostPlan,
        vdd: Volt,
        images: &[f32],
        labels: &[u8],
        seed: u64,
    ) -> f64 {
        let assignment = plan.voltage_assignment(self.booster(), vdd);
        self.evaluator
            .evaluate(net, &assignment, images, labels, seed)
            .mean()
    }

    fn energy_of(&self, plan: &BoostPlan, vdd: Volt, activity: &WorkloadActivity) -> f64 {
        let groups = plan.boosted_groups(activity);
        self.energy
            .dynamic_boosted(vdd, &groups, activity.total_macs())
            .joules()
    }

    /// Finds the cheapest plan meeting the accuracy target at supply `vdd`,
    /// or `None` if even full boost misses it.
    ///
    /// Strategy: find the lowest *uniform* level that meets the target,
    /// then greedily lower individual layers (deepest first, since later
    /// layers have fewer weights and tolerate more faults) while the target
    /// still holds.
    ///
    /// # Panics
    ///
    /// Panics if the activity's layer count differs from the network's
    /// weight-layer count or buffers are inconsistent.
    #[must_use]
    pub fn optimize(
        &self,
        net: &Network,
        activity: &WorkloadActivity,
        vdd: Volt,
        images: &[f32],
        labels: &[u8],
        seed: u64,
    ) -> Option<OptimizedPlan> {
        let layers = net.weight_layer_indices().len();
        assert_eq!(
            activity.layers().len(),
            layers,
            "activity layer count mismatches the network"
        );
        let p = self.booster().levels();
        // Every candidate plan is scored under the same derived seed —
        // paired comparisons (common random numbers), so greedy decisions
        // compare plans on identical fault dies instead of die-to-die noise.
        let seed = derive_seed(seed, site::POLICY_STEP, 0);

        // Phase 1: lowest uniform level that meets the target.
        let mut base_level = None;
        for level in 0..=p {
            let plan = BoostPlan::from_named_uniform(level, layers, self.booster(), vdd);
            let acc = self.accuracy_of(net, &plan, vdd, images, labels, seed);
            if acc >= self.target_accuracy {
                base_level = Some(level);
                break;
            }
        }
        let base_level = base_level?;

        // Phase 2: greedy per-layer relaxation, deepest layer first.
        let mut levels = vec![base_level; layers];
        for layer in (0..layers).rev() {
            while levels[layer] > 0 {
                levels[layer] -= 1;
                let plan = BoostPlan::with_input_target(levels.clone(), self.booster(), vdd);
                let acc = self.accuracy_of(net, &plan, vdd, images, labels, seed);
                if acc < self.target_accuracy {
                    levels[layer] += 1;
                    break;
                }
            }
        }

        let plan = BoostPlan::with_input_target(levels, self.booster(), vdd);
        let accuracy = self.accuracy_of(net, &plan, vdd, images, labels, seed);
        let dynamic_energy = self.energy_of(&plan, vdd, activity);
        Some(OptimizedPlan {
            plan,
            accuracy,
            dynamic_energy,
        })
    }
}

impl BoostPlan {
    /// A uniform plan with the paper's input-target rule.
    #[must_use]
    pub fn from_named_uniform(
        level: usize,
        layers: usize,
        booster: &BoosterBank,
        vdd: Volt,
    ) -> Self {
        Self::with_input_target(vec![level; layers], booster, vdd)
    }

    /// A plan with explicit weight levels and the input level derived from
    /// the paper's 0.44 V input-target rule.
    ///
    /// # Panics
    ///
    /// Panics if `weight_levels` is empty.
    #[must_use]
    pub fn with_input_target(weight_levels: Vec<usize>, booster: &BoosterBank, vdd: Volt) -> Self {
        let input_level = booster
            .min_level_reaching(vdd, crate::schedule::INPUT_TARGET)
            .unwrap_or(booster.levels());
        Self::new(weight_levels, input_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_dataflow::activity::{LayerActivity, WorkloadActivity};
    use dante_nn::layers::{Dense, Layer, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (Network, Vec<f32>, Vec<u8>, WorkloadActivity) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(10, 14, &mut rng)),
            Layer::Relu(Relu::new(14)),
            Layer::Dense(Dense::new(14, 2, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = (i % 2) as u8;
            let base = if c == 0 { 0.85 } else { 0.15 };
            for j in 0..10 {
                images.push(base + ((i * 3 + j) % 4) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 20,
            batch_size: 10,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        let activity = WorkloadActivity::new(
            "toy",
            vec![
                LayerActivity {
                    layer: 0,
                    macs: 140,
                    weight_accesses: 70,
                    input_accesses: 35,
                    output_accesses: 4,
                },
                LayerActivity {
                    layer: 1,
                    macs: 28,
                    weight_accesses: 14,
                    input_accesses: 7,
                    output_accesses: 1,
                },
            ],
        );
        (net, images, labels, activity)
    }

    #[test]
    fn optimizer_meets_the_target_at_vlv() {
        let (net, images, labels, activity) = toy();
        let opt = PolicyOptimizer::new(3, 0.95);
        let result = opt
            .optimize(&net, &activity, Volt::new(0.38), &images, &labels, 11)
            .expect("full boost at 0.38 V reaches ~0.55 V and must meet the target");
        assert!(result.accuracy >= 0.95);
        assert!(result.dynamic_energy > 0.0);
    }

    #[test]
    fn optimizer_uses_no_boost_when_voltage_is_safe() {
        let (net, images, labels, activity) = toy();
        let opt = PolicyOptimizer::new(2, 0.95);
        let result = opt
            .optimize(&net, &activity, Volt::new(0.56), &images, &labels, 12)
            .expect("0.56 V is fault-free");
        assert!(
            result.plan.weight_levels().iter().all(|&l| l == 0),
            "no boost needed at 0.56 V: {:?}",
            result.plan.weight_levels()
        );
    }

    #[test]
    fn optimized_plan_is_cheaper_or_equal_to_full_boost() {
        let (net, images, labels, activity) = toy();
        let opt = PolicyOptimizer::new(2, 0.9);
        let vdd = Volt::new(0.40);
        let result = opt
            .optimize(&net, &activity, vdd, &images, &labels, 13)
            .unwrap();
        let full = BoostPlan::from_named_uniform(4, 2, EnergyModel::dante_chip().booster(), vdd);
        let full_energy = EnergyModel::dante_chip()
            .dynamic_boosted(vdd, &full.boosted_groups(&activity), activity.total_macs())
            .joules();
        assert!(result.dynamic_energy <= full_energy + 1e-18);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (net, images, labels, activity) = toy();
        // Demand more than perfect accuracy margins can give at a voltage
        // where even the full boost rail stays in the faulty region.
        let opt = PolicyOptimizer::new(2, 1.0);
        // Custom fault model shifted up so that even boosted rails fail:
        // easier: a target of exactly 1.0 at 0.34 V with faults present in
        // the boosted rail (~0.51 V has a tiny but non-zero BER; with only
        // 2 dies it may still pass). Use a stricter check: at the lowest
        // voltage the optimizer either meets 1.0 or returns None; both are
        // acceptable, but a returned plan must truly meet the target.
        if let Some(r) = opt.optimize(&net, &activity, Volt::new(0.34), &images, &labels, 14) {
            assert!(r.accuracy >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "mismatches the network")]
    fn activity_shape_validated() {
        let (net, images, labels, _) = toy();
        let bad = WorkloadActivity::new(
            "bad",
            vec![LayerActivity {
                layer: 0,
                macs: 1,
                weight_accesses: 1,
                input_accesses: 0,
                output_accesses: 0,
            }],
        );
        let opt = PolicyOptimizer::new(1, 0.9);
        let _ = opt.optimize(&net, &bad, Volt::new(0.4), &images, &labels, 0);
    }
}
