//! Disk-cached trained models for the heavyweight experiments.
//!
//! The Fig. 2/13/14 harnesses need the trained FC-DNN and CNN proxy; both
//! train from scratch in tens of seconds, so this module trains once and
//! caches the serialized network under `DANTE_CACHE` (default
//! `target/dante-cache`). Cache keys include the training hyper-parameters,
//! so changing them invalidates the entry.

use dante_nn::data::{generate_cifar_like, generate_mnist_like, Dataset};
use dante_nn::models::{cifar_cnn, mnist_fc_dnn};
use dante_nn::network::Network;
use dante_nn::train::{train, SgdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Where cached artifacts live (`DANTE_CACHE` env var, else
/// `target/dante-cache`).
#[must_use]
pub fn cache_dir() -> PathBuf {
    std::env::var_os("DANTE_CACHE")
        .map_or_else(|| PathBuf::from("target/dante-cache"), PathBuf::from)
}

fn load_or_train(key: &str, train_fn: impl FnOnce() -> Network) -> Network {
    let dir = cache_dir();
    let path = dir.join(format!("{key}.dnet"));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(net) = Network::from_bytes(&bytes) {
            return net;
        }
    }
    let net = train_fn();
    if std::fs::create_dir_all(&dir).is_ok() {
        // Cache failures are non-fatal; the next run just retrains.
        let _ = std::fs::write(&path, net.to_bytes());
    }
    net
}

/// The trained MNIST-like FC-DNN (784-256-256-256-10) plus its held-out
/// test set.
///
/// `train_n`/`test_n` size the procedural datasets; `epochs` the training
/// run. Typical experiment values: 5000/1000/5.
#[must_use]
pub fn trained_mnist_fc(train_n: usize, test_n: usize, epochs: usize) -> (Network, Dataset) {
    let key = format!("mnist-fc-{train_n}-{epochs}");
    let net = load_or_train(&key, || {
        let ds = generate_mnist_like(train_n, 1);
        let mut rng = StdRng::seed_from_u64(0xF0);
        let mut net = mnist_fc_dnn(&mut rng);
        let cfg = SgdConfig {
            epochs,
            ..SgdConfig::default()
        };
        train(&mut net, ds.images(), ds.labels(), &cfg, &mut rng);
        net
    });
    (net, generate_mnist_like(test_n, 2))
}

/// The trained CIFAR-like CNN proxy plus its held-out test set.
///
/// Typical experiment values: 2000/500/4.
#[must_use]
pub fn trained_cifar_cnn(train_n: usize, test_n: usize, epochs: usize) -> (Network, Dataset) {
    let key = format!("cifar-cnn-{train_n}-{epochs}");
    let net = load_or_train(&key, || {
        let ds = generate_cifar_like(train_n, 3);
        let mut rng = StdRng::seed_from_u64(0xC1);
        let mut net = cifar_cnn(&mut rng);
        let cfg = SgdConfig {
            epochs,
            batch_size: 32,
            learning_rate: 0.02,
            ..SgdConfig::default()
        };
        train(&mut net, ds.images(), ds.labels(), &cfg, &mut rng);
        net
    });
    (net, generate_cifar_like(test_n, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trips_a_tiny_model() {
        // Use a unique cache dir to avoid interference.
        let dir = std::env::temp_dir().join(format!("dante-cache-test-{}", std::process::id()));
        std::env::set_var("DANTE_CACHE", &dir);
        let (net1, test1) = trained_mnist_fc(50, 20, 1);
        let (net2, test2) = trained_mnist_fc(50, 20, 1);
        // Second call must come from the cache and be identical.
        assert_eq!(net1, net2);
        assert_eq!(test1, test2);
        assert!(dir.join("mnist-fc-50-1.dnet").exists());
        std::env::remove_var("DANTE_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_dir_honours_env_override() {
        std::env::set_var("DANTE_CACHE", "/tmp/some-dante-cache");
        assert_eq!(cache_dir(), PathBuf::from("/tmp/some-dante-cache"));
        std::env::remove_var("DANTE_CACHE");
        assert_eq!(cache_dir(), PathBuf::from("target/dante-cache"));
    }
}
