//! Boost schedules: the paper's Table 2 configurations and their mapping to
//! rail voltages, accelerator schedules, and energy-accounting groups.

use crate::accuracy::VoltageAssignment;
use dante_circuit::booster::BoosterBank;
use dante_circuit::units::Volt;
use dante_dataflow::activity::WorkloadActivity;
use dante_energy::supply::BoostedGroup;

/// The minimum rail voltage the paper requires for input/intermediate data
/// ("Inputs are boosted to the minimum level such that `Vddv_i > 0.44`",
/// Table 2).
pub const INPUT_TARGET: Volt = Volt::const_new(0.44);

/// The named boost configurations of paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedBoostConfig {
    /// All weight layers at level 1 (`Boost_Vddv1`).
    Vddv1,
    /// All weight layers at level 2.
    Vddv2,
    /// All weight layers at level 3.
    Vddv3,
    /// All weight layers at level 4.
    Vddv4,
    /// Increasing boost with depth; deepest layer gets the highest level
    /// (`Boost_diff1`).
    Diff1,
    /// Decreasing boost with depth; first layer gets the highest level
    /// (`Boost_diff2`).
    Diff2,
}

impl NamedBoostConfig {
    /// All six configurations in Table 2 order.
    #[must_use]
    pub fn all() -> [Self; 6] {
        [
            Self::Vddv1,
            Self::Vddv2,
            Self::Vddv3,
            Self::Vddv4,
            Self::Diff1,
            Self::Diff2,
        ]
    }

    /// The paper's name for the configuration.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Vddv1 => "Boost_Vddv1",
            Self::Vddv2 => "Boost_Vddv2",
            Self::Vddv3 => "Boost_Vddv3",
            Self::Vddv4 => "Boost_Vddv4",
            Self::Diff1 => "Boost_diff1",
            Self::Diff2 => "Boost_diff2",
        }
    }

    /// Per-layer weight boost levels for `layers` weight layers on a
    /// `p`-level booster.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero or `p < 4` for the named 4-level configs.
    #[must_use]
    pub fn weight_levels(&self, layers: usize, p: usize) -> Vec<usize> {
        assert!(layers > 0, "need at least one layer");
        assert!(
            p >= 4,
            "Table 2 configurations assume at least 4 boost levels"
        );
        let ramp = |reverse: bool| -> Vec<usize> {
            (0..layers)
                .map(|i| {
                    let idx = if reverse { layers - 1 - i } else { i };
                    if layers == 1 {
                        4
                    } else {
                        1 + (idx * 3).div_ceil(layers - 1).min(3)
                    }
                })
                .collect()
        };
        match self {
            Self::Vddv1 => vec![1; layers],
            Self::Vddv2 => vec![2; layers],
            Self::Vddv3 => vec![3; layers],
            Self::Vddv4 => vec![4; layers],
            Self::Diff1 => ramp(false),
            Self::Diff2 => ramp(true),
        }
    }
}

/// A concrete boost plan: per-weight-layer levels plus the input-memory
/// level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoostPlan {
    weight_levels: Vec<usize>,
    input_level: usize,
}

impl BoostPlan {
    /// Creates a plan from explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if `weight_levels` is empty.
    #[must_use]
    pub fn new(weight_levels: Vec<usize>, input_level: usize) -> Self {
        assert!(!weight_levels.is_empty(), "plan needs at least one layer");
        Self {
            weight_levels,
            input_level,
        }
    }

    /// Builds a Table 2 plan: the named weight levels plus the
    /// minimum input level whose rail reaches [`INPUT_TARGET`] at `vdd`
    /// (full boost if even that falls short).
    #[must_use]
    pub fn from_named(
        config: NamedBoostConfig,
        layers: usize,
        booster: &BoosterBank,
        vdd: Volt,
    ) -> Self {
        let input_level = booster
            .min_level_reaching(vdd, INPUT_TARGET)
            .unwrap_or(booster.levels());
        Self::new(config.weight_levels(layers, booster.levels()), input_level)
    }

    /// Per-layer weight levels.
    #[must_use]
    pub fn weight_levels(&self) -> &[usize] {
        &self.weight_levels
    }

    /// Input-memory level.
    #[must_use]
    pub fn input_level(&self) -> usize {
        self.input_level
    }

    /// The highest weight level in the plan (used to pick the comparison
    /// voltage for single/dual baselines).
    #[must_use]
    pub fn max_weight_level(&self) -> usize {
        *self.weight_levels.iter().max().expect("non-empty plan")
    }

    /// The rail voltages this plan produces at supply `vdd`.
    #[must_use]
    pub fn voltage_assignment(&self, booster: &BoosterBank, vdd: Volt) -> VoltageAssignment {
        VoltageAssignment {
            weight_layers: self
                .weight_levels
                .iter()
                .map(|&l| booster.boosted_voltage(vdd, l))
                .collect(),
            inputs: booster.boosted_voltage(vdd, self.input_level),
        }
    }

    /// Converts to the accelerator-simulator schedule.
    #[must_use]
    pub fn to_accel_schedule(&self) -> dante_accel::executor::BoostSchedule {
        dante_accel::executor::BoostSchedule::per_layer(
            self.weight_levels.clone(),
            self.input_level,
        )
    }

    /// Splits a workload's activity into the per-level access groups of the
    /// paper's Eq. 3: weight accesses at each layer's level, input and
    /// output accesses at the input-memory level.
    ///
    /// # Panics
    ///
    /// Panics if the activity has a different layer count than the plan.
    #[must_use]
    pub fn boosted_groups(&self, activity: &WorkloadActivity) -> Vec<BoostedGroup> {
        assert_eq!(
            activity.layers().len(),
            self.weight_levels.len(),
            "activity layer count mismatches plan"
        );
        let mut groups: Vec<BoostedGroup> = Vec::new();
        let mut add = |accesses: u64, level: usize| {
            if accesses == 0 {
                return;
            }
            if let Some(g) = groups.iter_mut().find(|g| g.level == level) {
                g.accesses += accesses;
            } else {
                groups.push(BoostedGroup { accesses, level });
            }
        };
        for (layer, &level) in activity.layers().iter().zip(&self.weight_levels) {
            add(layer.weight_accesses, level);
            add(
                layer.input_accesses + layer.output_accesses,
                self.input_level,
            );
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_dataflow::activity::Dataflow;
    use dante_dataflow::fc_dana::DanaFcDataflow;
    use dante_dataflow::workloads::mnist_fc;

    fn booster() -> BoosterBank {
        BoosterBank::standard()
    }

    #[test]
    fn table2_levels_match_the_paper() {
        assert_eq!(
            NamedBoostConfig::Vddv1.weight_levels(4, 4),
            vec![1, 1, 1, 1]
        );
        assert_eq!(
            NamedBoostConfig::Vddv4.weight_levels(4, 4),
            vec![4, 4, 4, 4]
        );
        assert_eq!(
            NamedBoostConfig::Diff1.weight_levels(4, 4),
            vec![1, 2, 3, 4]
        );
        assert_eq!(
            NamedBoostConfig::Diff2.weight_levels(4, 4),
            vec![4, 3, 2, 1]
        );
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(NamedBoostConfig::Vddv3.name(), "Boost_Vddv3");
        assert_eq!(NamedBoostConfig::Diff2.name(), "Boost_diff2");
        assert_eq!(NamedBoostConfig::all().len(), 6);
    }

    #[test]
    fn input_level_reaches_the_044_target() {
        // At 0.40 V, level 1 gives ~0.45 V > 0.44 V.
        let plan = BoostPlan::from_named(NamedBoostConfig::Vddv4, 4, &booster(), Volt::new(0.40));
        assert_eq!(plan.input_level(), 1);
        // At 0.36 V, level 1 gives ~0.405 V < 0.44, level 2 gives ~0.45.
        let plan = BoostPlan::from_named(NamedBoostConfig::Vddv4, 4, &booster(), Volt::new(0.36));
        assert_eq!(plan.input_level(), 2);
        // Above 0.44 V no boost is needed for inputs.
        let plan = BoostPlan::from_named(NamedBoostConfig::Vddv1, 4, &booster(), Volt::new(0.46));
        assert_eq!(plan.input_level(), 0);
    }

    #[test]
    fn voltage_assignment_follows_the_ladder() {
        let b = booster();
        let vdd = Volt::new(0.40);
        let plan = BoostPlan::from_named(NamedBoostConfig::Diff1, 4, &b, vdd);
        let a = plan.voltage_assignment(&b, vdd);
        assert_eq!(a.weight_layers.len(), 4);
        for w in a.weight_layers.windows(2) {
            assert!(w[1] > w[0], "Diff1 voltages must increase with depth");
        }
        assert!(a.inputs >= INPUT_TARGET);
    }

    #[test]
    fn boosted_groups_partition_all_accesses() {
        let activity = DanaFcDataflow::new().activity(&mnist_fc());
        let plan = BoostPlan::new(vec![1, 2, 3, 4], 1);
        let groups = plan.boosted_groups(&activity);
        let total: u64 = groups.iter().map(|g| g.accesses).sum();
        assert_eq!(total, activity.total_sram_accesses());
        // Input accesses merged into the level-1 group along with L1 weights.
        let l1 = groups.iter().find(|g| g.level == 1).unwrap();
        assert!(l1.accesses > activity.layers()[0].weight_accesses);
    }

    #[test]
    fn accel_schedule_round_trips_levels() {
        let plan = BoostPlan::new(vec![4, 3, 2, 1], 2);
        let s = plan.to_accel_schedule();
        assert_eq!(s.weight_levels(), &[4, 3, 2, 1]);
        assert_eq!(s.input_level(), 2);
    }

    #[test]
    fn diff_ramps_generalize_to_other_layer_counts() {
        let five = NamedBoostConfig::Diff1.weight_levels(5, 4);
        assert_eq!(five.len(), 5);
        assert_eq!(*five.first().unwrap(), 1);
        assert_eq!(*five.last().unwrap(), 4);
        for w in five.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let one = NamedBoostConfig::Diff2.weight_levels(1, 4);
        assert_eq!(one, vec![4]);
    }

    #[test]
    #[should_panic(expected = "mismatches plan")]
    fn group_split_validates_layer_count() {
        let activity = DanaFcDataflow::new().activity(&mnist_fc());
        let plan = BoostPlan::new(vec![1, 2], 0);
        let _ = plan.boosted_groups(&activity);
    }
}
