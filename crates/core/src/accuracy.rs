//! Monte-Carlo fault-injection accuracy evaluation (paper Sec. 5.1,
//! Fig. 11).
//!
//! This is the fast statistical path used for the accuracy figures: the
//! network's weights (and optionally the test inputs) are quantized to the
//! chip's fixed-point format, packed into the exact SRAM bit image, overlaid
//! with a fresh Monte-Carlo fault die per trial at each data class's
//! *effective voltage* (the boosted rail of the bank holding it), and the
//! corrupted network is evaluated on the test set. Averaging over dies
//! reproduces the paper's 100-fault-map methodology.

use dante_circuit::units::Volt;
use dante_nn::batched::{trial_correct_count, BatchedScratch, CleanForward, LayerWork};
use dante_nn::layers::Layer;
use dante_nn::network::Network;
use dante_nn::quant::ScaledQuantizer;
use dante_nn::Matrix;
use dante_sim::{derive_seed, site, NoopObserver, TrialEngine, TrialObserver};
use dante_sram::fault::VminFaultModel;
use dante_sram::model::{DieFaultModel, FaultModel};
use dante_sram::sparse::SparseCell;
use dante_sram::storage::FaultOverlay;
use std::time::Instant;

/// Effective rail voltage for each data class of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageAssignment {
    /// One voltage per weight layer (depth order).
    pub weight_layers: Vec<Volt>,
    /// Voltage of the input/activation memory.
    pub inputs: Volt,
}

impl VoltageAssignment {
    /// Every data class at the same voltage.
    #[must_use]
    pub fn uniform(v: Volt, weight_layers: usize) -> Self {
        Self {
            weight_layers: vec![v; weight_layers],
            inputs: v,
        }
    }

    /// Weights at `v`, inputs held safe at a high voltage (isolates weight
    /// sensitivity, as in Fig. 2's "weights" curves).
    #[must_use]
    pub fn weights_only(v: Volt, weight_layers: usize, safe: Volt) -> Self {
        Self {
            weight_layers: vec![v; weight_layers],
            inputs: safe,
        }
    }

    /// Inputs at `v`, weights held safe (Fig. 2's "inputs" curve).
    #[must_use]
    pub fn inputs_only(v: Volt, weight_layers: usize, safe: Volt) -> Self {
        Self {
            weight_layers: vec![safe; weight_layers],
            inputs: v,
        }
    }

    /// Only weight layer `layer` at `v`, everything else safe (Fig. 2's
    /// per-layer curves).
    ///
    /// # Panics
    ///
    /// Panics if `layer >= weight_layers`.
    #[must_use]
    pub fn single_layer(v: Volt, layer: usize, weight_layers: usize, safe: Volt) -> Self {
        assert!(layer < weight_layers, "layer {layer} out of range");
        let mut weights = vec![safe; weight_layers];
        weights[layer] = v;
        Self {
            weight_layers: weights,
            inputs: safe,
        }
    }
}

/// Result of a Monte-Carlo accuracy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyStats {
    /// Accuracy of each trial (one fault die each).
    pub per_trial: Vec<f64>,
}

impl AccuracyStats {
    /// Mean accuracy across dies.
    ///
    /// # Panics
    ///
    /// Panics if there are no trials.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(!self.per_trial.is_empty(), "no trials");
        self.per_trial.iter().sum::<f64>() / self.per_trial.len() as f64
    }

    /// Sample standard deviation across dies (0 for a single trial).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let n = self.per_trial.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .per_trial
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Worst-die accuracy.
    ///
    /// # Panics
    ///
    /// Panics if there are no trials.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.per_trial.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Pools the per-trial accuracies back into `(successes, attempts)`
    /// counts given the test-set size each trial saw — the binomial view a
    /// confidence interval (e.g. Wilson score) needs. Each trial's success
    /// count is recovered by rounding `accuracy * samples_per_trial`, which
    /// is exact because every accuracy was computed as such a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_trial` is zero.
    #[must_use]
    pub fn pooled_successes(&self, samples_per_trial: usize) -> (u64, u64) {
        assert!(samples_per_trial > 0, "trials must have evaluated samples");
        let successes = self
            .per_trial
            .iter()
            .map(|&a| (a * samples_per_trial as f64).round() as u64)
            .sum();
        (successes, (self.per_trial.len() * samples_per_trial) as u64)
    }
}

/// Error-protection scheme applied to the SRAM words (ablation axis: the
/// paper's related work contrasts boosting against conventional ECC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccMode {
    /// No coding: every flip reaches the data (the paper's baseline).
    #[default]
    None,
    /// Hamming(72,64) SEC-DED per 64-bit word: single flips are healed,
    /// double or more pass through; check bits fault at the same rate.
    SecDed,
}

/// Which sampler draws each trial's Monte-Carlo fault dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlaySampling {
    /// Dense per-cell Gaussian V_min draws — O(bits) per die per trial, the
    /// original reference path.
    Dense,
    /// Sparse tail sampling at the evaluation voltage — the faulty-cell
    /// count is drawn as Binomial(bits, F(v)) via geometric-gap skipping
    /// and only those cells get (truncated-Gaussian) V_mins, so a die
    /// costs O(faulty bits). Statistically equivalent to [`Self::Dense`]
    /// (same fault-count and V_min distributions; `dante-verify` pins
    /// this), but a different random stream: per-trial results differ
    /// bit-for-bit from the dense path while all distributions agree.
    #[default]
    SparseTail,
}

/// Which forward-pass implementation scores each trial's corrupted network.
///
/// Both paths produce **bit-identical** [`AccuracyStats`]: the batched path
/// uses the exact register-tiled kernels from `dante_nn::gemm` (same
/// per-element fold order as the scalar `Matrix::matmul`) and an integer
/// correct-count divided exactly as [`Network::accuracy`] divides. The
/// differential suite in `tests/differential.rs` pins this; goldens never
/// need re-blessing when switching paths. Because results are identical,
/// the choice deliberately does **not** enter any sweep cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ForwardPath {
    /// Per-trial `Network::accuracy` over the whole test set — the original
    /// reference path, kept as the differential baseline.
    Scalar,
    /// Trial-batched incremental evaluation (`dante_nn::batched`): the clean
    /// forward pass runs once per evaluation; each trial recomputes only the
    /// images and layer outputs reachable from its flipped words.
    #[default]
    Batched,
}

impl ForwardPath {
    /// Resolves the `DANTE_FORWARD` override (`"scalar"` forces the
    /// reference path; anything else, or unset, selects [`Self::Batched`]).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DANTE_FORWARD") {
            Ok(v) if v.eq_ignore_ascii_case("scalar") => Self::Scalar,
            _ => Self::Batched,
        }
    }
}

/// One quantized-and-packed bit image, prepared once per evaluation and
/// reused read-only across all trials.
#[derive(Debug, Clone, PartialEq)]
struct PackedImage {
    scale: f32,
    bits: u8,
    bit_len: usize,
    len: usize,
    /// Clean packed SRAM words (never mutated; corruption XORs on the fly).
    words: Vec<u64>,
    /// Clean dequantized values (the undo source for flipped words).
    clean: Vec<f32>,
}

impl PackedImage {
    fn build(quantizer: &ScaledQuantizer, values: &[f32]) -> Self {
        let tensor = quantizer.quantize(values);
        Self {
            scale: tensor.scale(),
            bits: tensor.bits(),
            bit_len: tensor.bit_len(),
            len: tensor.len(),
            words: tensor.to_packed_words(),
            clean: tensor.to_f32(),
        }
    }

    #[inline]
    fn lanes(&self) -> usize {
        64 / usize::from(self.bits)
    }

    /// Dequantizes every lane of (corrupted) `word` into the value buffer —
    /// the same sign-extend-and-scale as `ScaledTensor::to_f32`, applied to
    /// only the lanes a fault actually touched.
    #[inline]
    fn dequant_word_into(&self, w: usize, word: u64, out: &mut [f32]) {
        let lanes = self.lanes();
        let bits = u32::from(self.bits);
        let shift = 16 - bits;
        let mask = if self.bits == 16 { 0xFFFFu64 } else { 0xFFu64 };
        let base = w * lanes;
        for lane in 0..lanes {
            let e = base + lane;
            if e >= self.len {
                break;
            }
            let raw = ((word >> (bits * lane as u32)) & mask) as u16;
            let code = i32::from((raw << shift) as i16 >> shift);
            out[e] = code as f32 * self.scale;
        }
    }

    /// Restores the lanes of word `w` in the value buffer from the clean
    /// dequantized values (exact undo: dequantization is deterministic).
    #[inline]
    fn restore_word_into(&self, w: usize, out: &mut [f32]) {
        let base = w * self.lanes();
        let end = (base + self.lanes()).min(self.len);
        out[base..end].copy_from_slice(&self.clean[base..end]);
    }
}

/// Everything quantized/packed once per evaluation: per-layer weight
/// images, the clean dequantized network, and (optionally) the input image.
#[derive(Debug)]
struct Prepared {
    layers: Vec<PackedImage>,
    layer_indices: Vec<usize>,
    clean_net: Network,
    inputs: Option<PackedImage>,
}

/// Reused sampling/ECC buffers: nothing here affects trial results, so the
/// scratch can live per worker without breaking thread-count determinism.
#[derive(Debug, Default)]
struct OverlayBuffers {
    indices: Vec<u64>,
    cells: Vec<SparseCell>,
    corruption: Vec<u64>,
    check: Vec<u64>,
    check_flips: Vec<u32>,
}

/// The `touched` undo-log target meaning "the input image" rather than a
/// weight layer position.
const INPUTS_TARGET: usize = usize::MAX;

/// How the evaluator's fault model was configured: a fixed per-die Gaussian
/// handed in directly (the legacy `with_fault_model` path — every trial
/// sees the same die parameters), or a [`FaultModel`] spec resolved against
/// each trial's seed (so chip-variation specs draw a fresh die profile per
/// trial, matching the paper's one-fault-map-per-trial methodology).
#[derive(Debug, Clone, PartialEq)]
enum ConfiguredFaultModel {
    Fixed(VminFaultModel),
    Spec(FaultModel),
}

impl ConfiguredFaultModel {
    /// The per-trial die. The `Fixed` arm and the `Spec(Gaussian)` arm both
    /// resolve to plain Gaussian dies independent of the seed, preserving
    /// the pre-refactor sampling byte-for-byte.
    fn resolve_die(&self, trial_seed: u64) -> DieFaultModel {
        match self {
            Self::Fixed(m) => DieFaultModel::Gaussian(*m),
            Self::Spec(spec) => spec.resolve_die(trial_seed),
        }
    }

    /// The spec form, when configured as one.
    fn spec(&self) -> Option<FaultModel> {
        match self {
            Self::Fixed(_) => None,
            Self::Spec(spec) => Some(*spec),
        }
    }
}

/// Per-worker trial scratch: a working network + input buffer (restored to
/// the clean dequantized state between trials via the `touched` undo log)
/// plus the overlay buffers. Steady-state trials allocate nothing.
#[derive(Debug)]
struct TrialScratch {
    net: Network,
    inputs: Vec<f32>,
    touched: Vec<(usize, usize)>,
    bufs: OverlayBuffers,
    /// Batched-path working buffers (unused on the scalar path).
    batched: BatchedScratch,
    /// Sorted, deduped indices of test images with a flipped input word.
    dirty_images: Vec<usize>,
    /// Dirty output columns/channels of the first corrupted layer.
    dirty_units: Vec<usize>,
}

impl TrialScratch {
    fn new(prep: &Prepared) -> Self {
        Self {
            net: prep.clean_net.clone(),
            inputs: prep
                .inputs
                .as_ref()
                .map(|i| i.clean.clone())
                .unwrap_or_default(),
            touched: Vec::new(),
            bufs: OverlayBuffers::default(),
            batched: BatchedScratch::new(),
            dirty_images: Vec::new(),
            dirty_units: Vec::new(),
        }
    }
}

/// How the first dirty layer's recompute is narrowed (resolved into a
/// [`LayerWork`] once the unit list stops mutating — the indirection keeps
/// the borrow of `dirty_units` out of the computation that fills it).
#[derive(Debug, Clone, Copy)]
enum DirtyKind {
    Full,
    DenseCols,
    ConvChans,
}

/// The mutable weight-value slice of the layer at `idx` (which must be a
/// parameterized layer).
fn weight_slice_mut(net: &mut Network, idx: usize) -> &mut [f32] {
    match &mut net.layers_mut()[idx] {
        Layer::Dense(d) => d.weights_mut().as_mut_slice(),
        Layer::Conv2d(c) => c.weights_mut(),
        _ => unreachable!("weight_layer_indices returns parameterized layers"),
    }
}

/// The Monte-Carlo evaluator.
///
/// Trials run on the shared [`TrialEngine`]: each trial's randomness is
/// derived from `(seed, trial index)` via [`derive_seed`], so the per-trial
/// results are bit-identical whether the engine runs them serially or
/// across any number of worker threads.
///
/// Each evaluation quantizes and packs every bit image **once**, then each
/// trial corrupts only the words its fault die touches (sparse tail
/// sampling by default, see [`OverlaySampling`]) and undoes them afterwards
/// — the steady-state hot path allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyEvaluator {
    fault_model: ConfiguredFaultModel,
    weight_quantizer: ScaledQuantizer,
    input_quantizer: ScaledQuantizer,
    trials: usize,
    ecc: EccMode,
    sampling: OverlaySampling,
    forward: ForwardPath,
    engine: TrialEngine,
}

impl AccuracyEvaluator {
    /// Creates an evaluator with the paper's defaults: the calibrated 14nm
    /// fault model, the chip's 16-bit/2-guard-bit weight format, and the
    /// given Monte-Carlo trial count (the paper uses 100 fault maps).
    /// Trials run in parallel per `DANTE_THREADS` (default: all cores).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        assert!(trials > 0, "need at least one Monte-Carlo trial");
        Self {
            fault_model: ConfiguredFaultModel::Spec(FaultModel::default()),
            weight_quantizer: ScaledQuantizer::weight_default(),
            input_quantizer: ScaledQuantizer::weight_default(),
            trials,
            ecc: EccMode::None,
            sampling: OverlaySampling::default(),
            forward: ForwardPath::from_env(),
            engine: TrialEngine::from_env(),
        }
    }

    /// Pins the worker-thread count (overriding `DANTE_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = TrialEngine::with_threads(threads);
        self
    }

    /// The worker-thread count in effect.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Pins a fixed Gaussian fault model: every trial's die uses exactly
    /// these parameters (e.g. a model fitted from chip measurements).
    #[must_use]
    pub fn with_fault_model(mut self, model: VminFaultModel) -> Self {
        self.fault_model = ConfiguredFaultModel::Fixed(model);
        self
    }

    /// Selects a [`FaultModel`] spec: each trial resolves the spec against
    /// its own seed, so correlated-burst dies draw fresh weak rows/columns
    /// and chip-variation dies draw fresh `(mu, sigma)` profiles per trial.
    /// The default spec reproduces [`VminFaultModel::default_14nm`]
    /// byte-for-byte.
    #[must_use]
    pub fn with_fault_spec(mut self, spec: FaultModel) -> Self {
        self.fault_model = ConfiguredFaultModel::Spec(spec);
        self
    }

    /// Selects the ECC ablation mode.
    #[must_use]
    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// The ECC mode in effect.
    #[must_use]
    pub fn ecc(&self) -> EccMode {
        self.ecc
    }

    /// Selects the overlay sampler (default: [`OverlaySampling::SparseTail`]).
    #[must_use]
    pub fn with_sampling(mut self, sampling: OverlaySampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// The overlay sampler in effect.
    #[must_use]
    pub fn sampling(&self) -> OverlaySampling {
        self.sampling
    }

    /// Selects the forward-pass implementation (default: the env-resolved
    /// [`ForwardPath::from_env`]). Results are bit-identical either way —
    /// this only trades evaluation strategies.
    #[must_use]
    pub fn with_forward_path(mut self, forward: ForwardPath) -> Self {
        self.forward = forward;
        self
    }

    /// The forward-pass implementation in effect.
    #[must_use]
    pub fn forward_path(&self) -> ForwardPath {
        self.forward
    }

    /// The fault-model spec in use, when the evaluator was configured with
    /// one (`None` after [`Self::with_fault_model`] pinned a fixed die).
    #[must_use]
    pub fn fault_spec(&self) -> Option<FaultModel> {
        self.fault_model.spec()
    }

    /// Monte-Carlo trial count.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Quantizes and packs every bit image once: per-layer weight images,
    /// the clean dequantized network (the state every trial starts from and
    /// is restored to), and optionally the input image.
    fn prepare(&self, net: &Network, images: Option<&[f32]>) -> Prepared {
        let mut layers = Vec::new();
        let clean_net = net.map_weight_layers(|_pos, layer| match layer {
            Layer::Dense(d) => {
                let img = PackedImage::build(&self.weight_quantizer, d.weights().as_slice());
                let (r, c) = d.weights().dims();
                let mut d = d.clone();
                *d.weights_mut() = Matrix::from_vec(r, c, img.clean.clone());
                layers.push(img);
                Layer::Dense(d)
            }
            Layer::Conv2d(conv) => {
                let img = PackedImage::build(&self.weight_quantizer, conv.weights());
                let mut conv = conv.clone();
                conv.weights_mut().copy_from_slice(&img.clean);
                layers.push(img);
                Layer::Conv2d(conv)
            }
            _ => unreachable!("weight_layer_indices returns parameterized layers"),
        });
        Prepared {
            layers,
            layer_indices: net.weight_layer_indices(),
            clean_net,
            inputs: images.map(|im| PackedImage::build(&self.input_quantizer, im)),
        }
    }

    /// Materializes one die's corruption words for `image` into `out`
    /// (exactly `word_len` words), drawing from `seed` with the configured
    /// sampler.
    #[allow(clippy::too_many_arguments)]
    fn corruption_words_into(
        &self,
        die: &DieFaultModel,
        bit_len: usize,
        word_len: usize,
        v: Volt,
        seed: u64,
        bufs: &mut OverlayBuffers,
        out_is_check: bool,
    ) {
        // Split borrow: the check overlay fills `bufs.check`, the data
        // overlay fills `bufs.corruption`; both share the sampling buffers.
        let (out, indices, cells) = if out_is_check {
            (&mut bufs.check, &mut bufs.indices, &mut bufs.cells)
        } else {
            (&mut bufs.corruption, &mut bufs.indices, &mut bufs.cells)
        };
        match (self.sampling, die.as_gaussian()) {
            (OverlaySampling::Dense, Some(gaussian)) => {
                let overlay = FaultOverlay::from_seed(bit_len, gaussian, seed);
                out.clear();
                out.extend(overlay.corruption_iter(v).take(word_len));
                out.resize(word_len, 0);
            }
            // Non-Gaussian dies have no dense V_min field; sampling the
            // faulty-at-`v` tail directly is statistically identical to
            // generating a dense field and thresholding it at `v`.
            (OverlaySampling::SparseTail, _) | (OverlaySampling::Dense, None) => {
                // Floor == applied voltage and only the flip bits are read,
                // so the V_min-eliding streaming fast path is exact here.
                out.clear();
                out.resize(word_len, 0);
                die.for_each_flip_word_at_floor(bit_len, v, seed, indices, cells, |w, mask| {
                    out[w] = mask;
                });
            }
        }
    }

    /// Corrupts one prepared image at voltage `v` with the die drawn from
    /// `seed`, writing only the affected lanes of `values` and logging each
    /// touched word into the undo log. Returns the number of flipped bits
    /// that reached the data.
    #[allow(clippy::too_many_arguments)]
    fn corrupt_image(
        &self,
        die: &DieFaultModel,
        image: &PackedImage,
        target: usize,
        v: Volt,
        seed: u64,
        values: &mut [f32],
        touched: &mut Vec<(usize, usize)>,
        bufs: &mut OverlayBuffers,
    ) -> u64 {
        let word_len = image.words.len();
        let mut flipped = 0u64;
        match self.ecc {
            EccMode::None => match (self.sampling, die.as_gaussian()) {
                (OverlaySampling::SparseTail, _) | (OverlaySampling::Dense, None) => {
                    // The floor *is* the evaluation voltage, so every
                    // sampled cell is faulty here and only the flip bits
                    // matter: the V_min-eliding streaming fast path emits
                    // exactly the slow path's per-word flip masks without
                    // materializing cells. Non-Gaussian dies take this
                    // path for both samplers — see `corruption_words_into`.
                    die.for_each_flip_word_at_floor(
                        image.bit_len,
                        v,
                        seed,
                        &mut bufs.indices,
                        &mut bufs.cells,
                        |w, mask| {
                            flipped += u64::from(mask.count_ones());
                            image.dequant_word_into(w, image.words[w] ^ mask, values);
                            touched.push((target, w));
                        },
                    );
                }
                (OverlaySampling::Dense, Some(gaussian)) => {
                    let overlay = FaultOverlay::from_seed(image.bit_len, gaussian, seed);
                    for (w, c) in overlay.corruption_iter(v).enumerate() {
                        if c != 0 {
                            flipped += u64::from(c.count_ones());
                            image.dequant_word_into(w, image.words[w] ^ c, values);
                            touched.push((target, w));
                        }
                    }
                }
            },
            EccMode::SecDed => {
                // SEC-DED per 64-bit word: heal single flips, counting the
                // 8 check bits (which fault at the same per-cell rate).
                self.corruption_words_into(die, image.bit_len, word_len, v, seed, bufs, false);
                self.corruption_words_into(
                    die,
                    word_len * 8,
                    (word_len * 8).div_ceil(64),
                    v,
                    derive_seed(seed, site::ECC_CHECK, 0),
                    bufs,
                    true,
                );
                bufs.check_flips.clear();
                for w in 0..word_len {
                    let word = bufs.check[w / 8];
                    bufs.check_flips
                        .push(((word >> ((w % 8) * 8)) & 0xFF).count_ones());
                }
                dante_sram::ecc::filter_corruption(&mut bufs.corruption, &bufs.check_flips);
                for (w, &c) in bufs.corruption.iter().enumerate() {
                    if c != 0 {
                        flipped += u64::from(c.count_ones());
                        image.dequant_word_into(w, image.words[w] ^ c, values);
                        touched.push((target, w));
                    }
                }
            }
        }
        flipped
    }

    /// Runs one trial's corruption over every prepared image, mutating the
    /// scratch network/input buffers in place. Returns the total number of
    /// fault bits that reached the data.
    fn corrupt_trial(
        &self,
        prep: &Prepared,
        assignment: &VoltageAssignment,
        trial_seed: u64,
        scratch: &mut TrialScratch,
    ) -> u64 {
        assert_eq!(
            prep.layers.len(),
            assignment.weight_layers.len(),
            "assignment covers {} layers, network has {}",
            assignment.weight_layers.len(),
            prep.layers.len()
        );
        let TrialScratch {
            net,
            inputs,
            touched,
            bufs,
            ..
        } = scratch;
        // One die per trial: a chip-variation spec draws this trial's
        // (mu, sigma) profile here; Gaussian configurations resolve to the
        // same die for every trial and consume no randomness.
        let die = self.fault_model.resolve_die(trial_seed);
        let mut fault_bits = 0u64;
        for (pos, image) in prep.layers.iter().enumerate() {
            fault_bits += self.corrupt_image(
                &die,
                image,
                pos,
                assignment.weight_layers[pos],
                derive_seed(trial_seed, site::WEIGHT_LAYER, pos as u64),
                weight_slice_mut(net, prep.layer_indices[pos]),
                touched,
                bufs,
            );
        }
        if let Some(image) = &prep.inputs {
            fault_bits += self.corrupt_image(
                &die,
                image,
                INPUTS_TARGET,
                assignment.inputs,
                derive_seed(trial_seed, site::INPUTS, 0),
                inputs,
                touched,
                bufs,
            );
        }
        fault_bits
    }

    /// Rolls the scratch back to the clean state by restoring every word
    /// the trial's undo log recorded.
    fn undo_trial(prep: &Prepared, scratch: &mut TrialScratch) {
        for &(target, w) in &scratch.touched {
            if target == INPUTS_TARGET {
                prep.inputs
                    .as_ref()
                    .expect("undo log names inputs only when inputs were prepared")
                    .restore_word_into(w, &mut scratch.inputs);
            } else {
                prep.layers[target].restore_word_into(
                    w,
                    weight_slice_mut(&mut scratch.net, prep.layer_indices[target]),
                );
            }
        }
        scratch.touched.clear();
    }

    /// Scores one corrupted trial through the trial-batched incremental
    /// path, deriving the dirty-image set and the first dirty layer's
    /// [`LayerWork`] straight from the trial's undo log (the sorted
    /// touched-word list `corrupt_trial` built). Bit-identical to
    /// `scratch.net.accuracy(&scratch.inputs, labels)`.
    fn batched_accuracy(
        prep: &Prepared,
        cache: &CleanForward,
        labels: &[u8],
        scratch: &mut TrialScratch,
    ) -> f64 {
        let n = labels.len();
        if n == 0 {
            // `Network::accuracy` returns 0.0 on an empty set.
            return 0.0;
        }
        let TrialScratch {
            net,
            inputs,
            touched,
            batched,
            dirty_images,
            dirty_units,
            ..
        } = scratch;
        // Every lane of a flipped input word belongs to exactly one image;
        // weight entries only contribute the earliest corrupted layer.
        dirty_images.clear();
        let mut first_pos: Option<usize> = None;
        let in_len = net.in_len();
        for &(target, w) in touched.iter() {
            if target == INPUTS_TARGET {
                let image = prep.inputs.as_ref().expect("inputs were prepared");
                let base = w * image.lanes();
                let end = (base + image.lanes()).min(image.len);
                let (lo, hi) = (base / in_len, (end - 1) / in_len);
                for img in lo..=hi {
                    if dirty_images.last() != Some(&img) {
                        dirty_images.push(img);
                    }
                }
            } else {
                first_pos = Some(first_pos.map_or(target, |p| p.min(target)));
            }
        }
        // Input words are logged in ascending order, so this is near-sorted;
        // the sort is cheap insurance, the dedup handles word-sharing images.
        dirty_images.sort_unstable();
        dirty_images.dedup();

        // When the first dirty layer's damage is confined to a small set of
        // output columns (dense) or channels (conv), tell the batched path
        // so clean images only recompute those before resuming downstream.
        dirty_units.clear();
        let localized = first_pos.map(|pos| {
            let layer_idx = prep.layer_indices[pos];
            let image = &prep.layers[pos];
            let lanes = image.lanes();
            let kind = match &net.layers()[layer_idx] {
                Layer::Dense(d) => {
                    // Row-major (in, out): element `e` feeds column `e % out`.
                    let out_l = d.weights().dims().1;
                    for &(target, w) in touched.iter() {
                        if target == pos {
                            for e in w * lanes..(w * lanes + lanes).min(image.len) {
                                dirty_units.push(e % out_l);
                            }
                        }
                    }
                    dirty_units.sort_unstable();
                    dirty_units.dedup();
                    if dirty_units.len() * 4 <= out_l {
                        DirtyKind::DenseCols
                    } else {
                        DirtyKind::Full
                    }
                }
                Layer::Conv2d(conv) => {
                    // Weight layout ((oc*in_c+ic)*k+kr)*k+kc: element `e`
                    // feeds output channel `e / (in_c*k*k)`.
                    let per_ch = conv.in_shape().c * conv.kernel() * conv.kernel();
                    let out_c = conv.out_shape().c;
                    for &(target, w) in touched.iter() {
                        if target == pos {
                            for e in w * lanes..(w * lanes + lanes).min(image.len) {
                                dirty_units.push(e / per_ch);
                            }
                        }
                    }
                    dirty_units.sort_unstable();
                    dirty_units.dedup();
                    if dirty_units.len() * 4 <= out_c {
                        DirtyKind::ConvChans
                    } else {
                        DirtyKind::Full
                    }
                }
                _ => DirtyKind::Full,
            };
            (layer_idx, kind)
        });
        let first_dirty = match localized {
            None => None,
            Some((idx, DirtyKind::DenseCols)) => {
                Some((idx, LayerWork::DenseColumns(dirty_units.as_slice())))
            }
            Some((idx, DirtyKind::ConvChans)) => {
                Some((idx, LayerWork::ConvChannels(dirty_units.as_slice())))
            }
            Some((idx, DirtyKind::Full)) => Some((idx, LayerWork::Full)),
        };
        let count = trial_correct_count(
            net,
            cache,
            labels,
            inputs,
            dirty_images,
            first_dirty,
            batched,
        );
        // The exact division `Network::accuracy` performs.
        count as f64 / n as f64
    }

    /// Returns a copy of `net` whose weights went through quantization and
    /// one fault die at the assignment's voltages. The die is a pure
    /// function of `trial_seed` (each weight layer draws its overlay from a
    /// [`derive_seed`]-derived sub-seed), so the same seed reproduces the
    /// same corruption on any thread.
    ///
    /// # Panics
    ///
    /// Panics if the assignment's layer count mismatches the network's
    /// weight layers.
    #[must_use]
    pub fn corrupt_network(
        &self,
        net: &Network,
        assignment: &VoltageAssignment,
        trial_seed: u64,
    ) -> Network {
        let prep = self.prepare(net, None);
        let mut scratch = TrialScratch::new(&prep);
        let _ = self.corrupt_trial(&prep, assignment, trial_seed, &mut scratch);
        scratch.net
    }

    /// Returns a corrupted copy of a test-image buffer at the inputs
    /// voltage; the die is a pure function of `trial_seed`.
    #[must_use]
    pub fn corrupt_inputs(&self, images: &[f32], v: Volt, trial_seed: u64) -> Vec<f32> {
        let image = PackedImage::build(&self.input_quantizer, images);
        let mut values = image.clean.clone();
        let mut touched = Vec::new();
        let mut bufs = OverlayBuffers::default();
        let die = self.fault_model.resolve_die(trial_seed);
        let _ = self.corrupt_image(
            &die,
            &image,
            INPUTS_TARGET,
            v,
            derive_seed(trial_seed, site::INPUTS, 0),
            &mut values,
            &mut touched,
            &mut bufs,
        );
        values
    }

    /// Evaluates accuracy over a voltage axis with a caller-supplied
    /// assignment builder (e.g. `VoltageAssignment::uniform` for the Fig. 1
    /// curve, `weights_only` for a Fig. 2 series).
    #[must_use]
    pub fn voltage_sweep(
        &self,
        net: &Network,
        voltages: &[Volt],
        make_assignment: impl Fn(Volt) -> VoltageAssignment,
        images: &[f32],
        labels: &[u8],
        seed: u64,
    ) -> Vec<(Volt, AccuracyStats)> {
        voltages
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let stats = self.evaluate(
                    net,
                    &make_assignment(v),
                    images,
                    labels,
                    derive_seed(seed, site::SWEEP_POINT, i as u64),
                );
                (v, stats)
            })
            .collect()
    }

    /// Finds `V_target-acc` (paper Fig. 1): the lowest voltage on a 10 mV
    /// grid at which the mean accuracy under a uniform assignment reaches
    /// `target_fraction` of the clean accuracy. Returns `None` if even the
    /// top of the searched range (0.60 V) misses the target.
    ///
    /// # Panics
    ///
    /// Panics unless `target_fraction` is in `(0, 1]`.
    #[must_use]
    pub fn find_target_voltage(
        &self,
        net: &Network,
        images: &[f32],
        labels: &[u8],
        target_fraction: f64,
        seed: u64,
    ) -> Option<Volt> {
        assert!(
            target_fraction > 0.0 && target_fraction <= 1.0,
            "target fraction must be in (0, 1]"
        );
        let clean = net.accuracy(images, labels);
        let target = clean * target_fraction;
        let layers = net.weight_layer_indices().len();
        // The accuracy curve is monotone in voltage (inclusive fault maps),
        // so walk the grid bottom-up and return the first passing point.
        let mut passing = None;
        for mv in (300..=600).rev().step_by(10) {
            let v = Volt::from_millivolts(f64::from(mv));
            let stats = self.evaluate(
                net,
                &VoltageAssignment::uniform(v, layers),
                images,
                labels,
                seed,
            );
            if stats.mean() >= target {
                passing = Some(v);
            } else {
                break;
            }
        }
        passing
    }

    /// Runs the full Monte-Carlo evaluation: `trials` fresh dies, each
    /// corrupting weights and inputs at the assignment's voltages, averaged
    /// over the labelled test set.
    ///
    /// Trial `t` draws its die from `derive_seed(seed, site::TRIAL, t)`, so
    /// the returned per-trial accuracies are bit-identical for any worker
    /// count and any execution order.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent buffer lengths or a mismatched assignment.
    #[must_use]
    pub fn evaluate(
        &self,
        net: &Network,
        assignment: &VoltageAssignment,
        images: &[f32],
        labels: &[u8],
        seed: u64,
    ) -> AccuracyStats {
        self.evaluate_observed(net, assignment, images, labels, seed, &NoopObserver)
    }

    /// [`Self::evaluate`] with instrumentation: the observer sees per-trial
    /// completions, `"corrupt"`/`"inference"` stage timings, and the number
    /// of fault bits each trial injected.
    #[must_use]
    pub fn evaluate_observed(
        &self,
        net: &Network,
        assignment: &VoltageAssignment,
        images: &[f32],
        labels: &[u8],
        seed: u64,
        observer: &dyn TrialObserver,
    ) -> AccuracyStats {
        self.evaluate_trial_range_observed(
            net,
            assignment,
            images,
            labels,
            seed,
            0,
            self.trials,
            observer,
        )
    }

    /// Evaluates only the contiguous **global** trial window
    /// `[trial_offset, trial_offset + trial_count)` of the full
    /// `self.trials`-trial evaluation.
    ///
    /// Trial `trial_offset + t` draws its die from
    /// `derive_seed(seed, site::TRIAL, trial_offset + t)` — exactly the
    /// seed the same trial uses in a full run — so concatenating the
    /// windows of any partition of `0..self.trials` in offset order is
    /// bit-identical to [`Self::evaluate_observed`]. This is the shard
    /// primitive: a backend computes one window, a coordinator merges.
    ///
    /// The observer sees **local** trial indices `0..trial_count` (each
    /// window is its own engine batch).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or extends past `self.trials`, or on
    /// inconsistent buffer lengths / a mismatched assignment.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_trial_range_observed(
        &self,
        net: &Network,
        assignment: &VoltageAssignment,
        images: &[f32],
        labels: &[u8],
        seed: u64,
        trial_offset: usize,
        trial_count: usize,
        observer: &dyn TrialObserver,
    ) -> AccuracyStats {
        assert!(trial_count > 0, "trial window must be non-empty");
        assert!(
            trial_offset + trial_count <= self.trials,
            "trial window [{trial_offset}, {}) exceeds {} trials",
            trial_offset + trial_count,
            self.trials
        );
        // Quantize/pack each bit image exactly once; every trial then
        // corrupts only the touched words of a per-worker scratch copy and
        // undoes them afterwards, so steady-state trials allocate nothing.
        let prep = self.prepare(net, Some(images));
        // On the batched path the clean forward pass (and its per-layer
        // activation cache) is also shared read-only by every trial.
        let cache = match self.forward {
            ForwardPath::Scalar => None,
            ForwardPath::Batched => Some(CleanForward::build(
                &prep.clean_net,
                &prep
                    .inputs
                    .as_ref()
                    .expect("evaluation always prepares inputs")
                    .clean,
                labels,
            )),
        };
        let per_trial = self.engine.run_scratch_observed(
            trial_count,
            observer,
            || TrialScratch::new(&prep),
            |trial, scratch| {
                // Seed by the *global* trial index: the engine hands this
                // window local indices, but the die stream is positional in
                // the full evaluation.
                let trial_seed = derive_seed(seed, site::TRIAL, (trial_offset + trial) as u64);
                let corrupt_start = Instant::now();
                let fault_bits = self.corrupt_trial(&prep, assignment, trial_seed, scratch);
                observer.on_stage("corrupt", corrupt_start.elapsed());
                observer.on_fault_bits(trial, fault_bits);
                let infer_start = Instant::now();
                let accuracy = match &cache {
                    None => scratch.net.accuracy(&scratch.inputs, labels),
                    Some(cache) => Self::batched_accuracy(&prep, cache, labels, scratch),
                };
                observer.on_stage("inference", infer_start.elapsed());
                Self::undo_trial(&prep, scratch);
                accuracy
            },
        );
        AccuracyStats { per_trial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_net_and_data() -> (Network, Vec<f32>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(6, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 2, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = (i % 2) as u8;
            let base = if c == 0 { 0.75 } else { 0.15 };
            for j in 0..6 {
                images.push(base + ((i + j) % 7) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 20,
            batch_size: 8,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    }

    #[test]
    fn high_voltage_preserves_accuracy() {
        let (net, images, labels) = toy_net_and_data();
        let clean = net.accuracy(&images, &labels);
        assert!(clean > 0.95, "toy net failed to train: {clean}");
        let eval = AccuracyEvaluator::new(3);
        let assignment = VoltageAssignment::uniform(Volt::new(0.60), 2);
        let stats = eval.evaluate(&net, &assignment, &images, &labels, 1);
        assert!(
            (stats.mean() - clean).abs() < 0.02,
            "0.6 V should be fault-free: {} vs {clean}",
            stats.mean()
        );
    }

    #[test]
    fn very_low_voltage_destroys_accuracy() {
        let (net, images, labels) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(3);
        let assignment = VoltageAssignment::uniform(Volt::new(0.34), 2);
        let stats = eval.evaluate(&net, &assignment, &images, &labels, 2);
        assert!(
            stats.mean() < 0.85,
            "0.34 V should corrupt heavily: {}",
            stats.mean()
        );
    }

    #[test]
    fn accuracy_is_monotonic_ish_in_voltage() {
        let (net, images, labels) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(4);
        let acc = |mv: u32| {
            let a = VoltageAssignment::uniform(Volt::from_millivolts(f64::from(mv)), 2);
            eval.evaluate(&net, &a, &images, &labels, 3).mean()
        };
        let low = acc(340);
        let high = acc(520);
        assert!(
            high >= low,
            "accuracy must not degrade as V rises: {low} vs {high}"
        );
        assert!(high > 0.95);
    }

    #[test]
    fn weights_only_and_inputs_only_assignments_differ() {
        let (net, images, labels) = toy_net_and_data();
        // Enough dies that the weight-vs-input sensitivity gap clears the
        // Monte-Carlo noise floor on this tiny network.
        let eval = AccuracyEvaluator::new(48);
        let safe = Volt::new(0.60);
        let v = Volt::new(0.40);
        let w = eval.evaluate(
            &net,
            &VoltageAssignment::weights_only(v, 2, safe),
            &images,
            &labels,
            4,
        );
        let i = eval.evaluate(
            &net,
            &VoltageAssignment::inputs_only(v, 2, safe),
            &images,
            &labels,
            4,
        );
        // The paper's core observation: weights are far more sensitive than
        // inputs at the same BER.
        assert!(
            i.mean() >= w.mean(),
            "inputs ({}) should tolerate faults better than weights ({})",
            i.mean(),
            w.mean()
        );
    }

    #[test]
    fn target_voltage_sits_on_the_cliff() {
        let (net, images, labels) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(3);
        let v = eval
            .find_target_voltage(&net, &images, &labels, 0.98, 21)
            .expect("0.60 V must meet any 98% target");
        // The cliff for this quantization sits between 0.40 and 0.52 V.
        assert!(
            (0.38..=0.54).contains(&v.volts()),
            "V_target-acc {v} outside the plausible cliff region"
        );
        // Everything above it passes, the grid point 20 mV below fails.
        let layers = net.weight_layer_indices().len();
        let above = eval
            .evaluate(
                &net,
                &VoltageAssignment::uniform(v, layers),
                &images,
                &labels,
                21,
            )
            .mean();
        assert!(above >= 0.98 * net.accuracy(&images, &labels));
    }

    #[test]
    fn voltage_sweep_matches_individual_evaluations() {
        let (net, images, labels) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(2);
        let voltages = [Volt::new(0.40), Volt::new(0.50)];
        let sweep = eval.voltage_sweep(
            &net,
            &voltages,
            |v| VoltageAssignment::uniform(v, 2),
            &images,
            &labels,
            33,
        );
        assert_eq!(sweep.len(), 2);
        assert!(sweep[1].1.mean() >= sweep[0].1.mean());
        // Deterministic per seed and per index.
        let again = eval.voltage_sweep(
            &net,
            &voltages,
            |v| VoltageAssignment::uniform(v, 2),
            &images,
            &labels,
            33,
        );
        assert_eq!(sweep, again);
    }

    #[test]
    fn secded_improves_accuracy_in_the_transition_region() {
        // ECC heals isolated flips, so at moderate BER it must beat the
        // unprotected baseline; at very high BER (multi-bit words) it
        // degrades toward the baseline.
        let (net, images, labels) = toy_net_and_data();
        let plain = AccuracyEvaluator::new(4);
        let ecc = AccuracyEvaluator::new(4).with_ecc(EccMode::SecDed);
        let v = Volt::new(0.42);
        let a = VoltageAssignment::uniform(v, 2);
        let acc_plain = plain.evaluate(&net, &a, &images, &labels, 9).mean();
        let acc_ecc = ecc.evaluate(&net, &a, &images, &labels, 9).mean();
        assert!(
            acc_ecc >= acc_plain,
            "SEC-DED ({acc_ecc}) must not be worse than unprotected ({acc_plain}) at 0.42 V"
        );
        // At a fault-free voltage both are clean.
        let safe = VoltageAssignment::uniform(Volt::new(0.60), 2);
        assert!(ecc.evaluate(&net, &safe, &images, &labels, 9).mean() > 0.95);
    }

    #[test]
    fn secded_cannot_match_full_boost_at_deep_vlv() {
        // The ablation the paper's related-work argument rests on: at very
        // low voltage the multi-bit error rate defeats SEC-DED, while
        // boosting (rail back to ~0.55 V) stays clean.
        let (net, images, labels) = toy_net_and_data();
        let ecc = AccuracyEvaluator::new(4).with_ecc(EccMode::SecDed);
        let deep = VoltageAssignment::uniform(Volt::new(0.36), 2);
        let acc_ecc = ecc.evaluate(&net, &deep, &images, &labels, 10).mean();
        let boosted = VoltageAssignment::uniform(Volt::new(0.54), 2);
        let acc_boost = ecc.evaluate(&net, &boosted, &images, &labels, 10).mean();
        assert!(
            acc_boost > acc_ecc + 0.2,
            "boosted rail ({acc_boost}) must beat ECC at 0.36 V ({acc_ecc})"
        );
    }

    #[test]
    fn stats_summaries_are_consistent() {
        let stats = AccuracyStats {
            per_trial: vec![0.9, 1.0, 0.8],
        };
        assert!((stats.mean() - 0.9).abs() < 1e-12);
        assert!((stats.min() - 0.8).abs() < 1e-12);
        assert!(stats.std_dev() > 0.0);
        let single = AccuracyStats {
            per_trial: vec![0.5],
        };
        assert_eq!(single.std_dev(), 0.0);
    }

    #[test]
    fn evaluation_is_deterministic_per_seed() {
        let (net, images, labels) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(2);
        let a = VoltageAssignment::uniform(Volt::new(0.40), 2);
        let s1 = eval.evaluate(&net, &a, &images, &labels, 7);
        let s2 = eval.evaluate(&net, &a, &images, &labels, 7);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "assignment covers")]
    fn mismatched_assignment_rejected() {
        let (net, _, _) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(1);
        let bad = VoltageAssignment::uniform(Volt::new(0.5), 3);
        let _ = eval.corrupt_network(&net, &bad, 0);
    }

    #[test]
    fn batched_and_scalar_paths_are_bit_identical() {
        let (net, images, labels) = toy_net_and_data();
        for mv in [340_u32, 400, 440, 480, 540] {
            let a = VoltageAssignment::uniform(Volt::from_millivolts(f64::from(mv)), 2);
            let scalar = AccuracyEvaluator::new(4)
                .with_forward_path(ForwardPath::Scalar)
                .evaluate(&net, &a, &images, &labels, 17);
            let batched = AccuracyEvaluator::new(4)
                .with_forward_path(ForwardPath::Batched)
                .evaluate(&net, &a, &images, &labels, 17);
            let sb: Vec<u64> = scalar.per_trial.iter().map(|a| a.to_bits()).collect();
            let bb: Vec<u64> = batched.per_trial.iter().map(|a| a.to_bits()).collect();
            assert_eq!(sb, bb, "paths diverge at {mv} mV");
        }
    }

    #[test]
    fn batched_path_handles_ecc_and_dense_sampling() {
        let (net, images, labels) = toy_net_and_data();
        let a = VoltageAssignment::uniform(Volt::new(0.42), 2);
        for (ecc, sampling) in [
            (EccMode::SecDed, OverlaySampling::SparseTail),
            (EccMode::None, OverlaySampling::Dense),
        ] {
            let make = |fwd| {
                AccuracyEvaluator::new(3)
                    .with_ecc(ecc)
                    .with_sampling(sampling)
                    .with_forward_path(fwd)
            };
            let scalar = make(ForwardPath::Scalar).evaluate(&net, &a, &images, &labels, 23);
            let batched = make(ForwardPath::Batched).evaluate(&net, &a, &images, &labels, 23);
            assert_eq!(scalar, batched, "ecc={ecc:?} sampling={sampling:?}");
        }
    }

    #[test]
    fn corrupt_network_is_a_pure_function_of_its_seed() {
        let (net, _, _) = toy_net_and_data();
        let eval = AccuracyEvaluator::new(1);
        let a = VoltageAssignment::uniform(Volt::new(0.38), 2);
        assert_eq!(
            eval.corrupt_network(&net, &a, 99),
            eval.corrupt_network(&net, &a, 99)
        );
        assert_ne!(
            eval.corrupt_network(&net, &a, 99),
            eval.corrupt_network(&net, &a, 100)
        );
    }
}
