//! Serializable sweep job specifications.
//!
//! A [`SweepSpec`] captures everything that determines a Monte-Carlo
//! voltage sweep — seed, voltage grid, trial count, sampler, ECC mode, the
//! network under test, and the power-supply configuration — as plain data,
//! so a sweep can be shipped across a process boundary (the `dante-serve`
//! HTTP service), queued, digested for caching, and replayed bit-identically.
//! Because the trial engine is counter-based deterministic, two runs of the
//! same spec produce the same per-trial accuracies on any machine and any
//! thread count; the spec's
//! [`canonical_string`](SweepSpec::canonical_string) is therefore a sound
//! content-address for result caching.
//!
//! Every sweep point is a joint **(voltage, accuracy, energy)** record: the
//! accuracy comes from Monte-Carlo fault injection at the configuration's
//! SRAM rail, the energy from the paper's supply equations
//! (`dante-energy::supply`, Eqs. 2–7) applied to the activity counts of the
//! spec's workload under its dataflow (`dante-dataflow`).
//!
//! # Canonical encoding versions
//!
//! `v1` (PRs ≤ 4) had no supply field; every existing cache key was minted
//! from a `v1` string. A spec whose supply is [`SupplySpec::Single`] — the
//! `v1` behaviour — still encodes as the byte-identical `v1` string, so old
//! content addresses remain valid. Any other supply emits a `v2` string
//! carrying a `supply=` token. The two families cannot collide: `v1`
//! strings never contain `supply=`.
//!
//! The fault-model field follows the same discipline: a spec whose
//! `fault_model` is the default i.i.d. Gaussian encodes exactly as before
//! (`v1` or `v2` per the supply rule), so every pre-fault-model content
//! address survives. Any other model emits a `v3` string carrying a
//! `fault=` token between `ecc=` and `supply=`/`net=`; `v1`/`v2` strings
//! never contain `fault=`, so the families stay collision-free.

use crate::accuracy::{
    AccuracyEvaluator, AccuracyStats, EccMode, OverlaySampling, VoltageAssignment,
};
use crate::artifacts::{trained_cifar_cnn, trained_mnist_fc};
use crate::schedule::BoostPlan;
use dante_circuit::bic::BoostScheduler;
use dante_circuit::booster::BoosterBank;
use dante_circuit::ldo::Ldo;
use dante_circuit::units::{Joule, Volt};
use dante_dataflow::activity::{Dataflow, WorkloadActivity};
use dante_dataflow::workload::{LayerShape, Workload};
use dante_dataflow::{alexnet_conv_prefix, mnist_fc, DanaFcDataflow, RowStationaryDataflow};
use dante_energy::breakdown::EnergyBreakdown;
use dante_energy::params::{EnergyParams, DANTE_BANKS};
use dante_energy::supply::{BoostedGroup, EnergyModel, SupplyKind};
pub use dante_energy::GeometrySpec;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sim::TrialObserver;
use dante_sram::model::FaultModel;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// The power-supply configuration a sweep evaluates (paper Sec. 5.2).
///
/// The configuration decides both the energy equations applied to each grid
/// point and the *SRAM rail* the fault overlays are drawn at — the grid
/// voltage is always the logic rail:
///
/// * [`Single`](Self::Single) — logic and memory share the grid rail
///   (Eq. 2); lowering the rail lowers both.
/// * [`Boosted`](Self::Boosted) — logic rides the grid rail, every SRAM
///   access is boosted to `Vddv(level)` above it (Eq. 3), restoring the
///   memory margin.
/// * [`Dual`](Self::Dual) — memory sits on a fixed external `V_h` while the
///   logic rail sweeps below it through the LDO (Eq. 6). Accuracy is flat
///   across the grid (faults depend only on `V_h`); energy is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SupplySpec {
    /// One shared rail (the `v1` implicit default).
    #[default]
    Single,
    /// Per-access SRAM boost at a fixed level; logic at the grid voltage.
    Boosted {
        /// Booster level, 1..=4 (Table 1's `Vddv1..Vddv4`).
        level: usize,
    },
    /// Per-bank *scheduled* boost ([`BoostScheduler`]): only the banks
    /// holding the last `critical_layers` layers are boosted at `level`;
    /// every other bank — and the input memory — stays at the grid voltage
    /// and pays no boost energy. The paper's Boost Input Control made
    /// adaptive.
    BoostedScheduled {
        /// Booster level programmed into critical banks, 1..=4.
        level: usize,
        /// How many trailing (fault-critical) layers are boosted.
        critical_layers: usize,
    },
    /// LDO-based dual rail: memory fixed at `v_h_mv`, logic sweeps.
    Dual {
        /// The memory rail in millivolts; must cover every grid point
        /// (an LDO only steps down).
        v_h_mv: u32,
    },
}

impl SupplySpec {
    /// Canonical token used in [`SweepSpec::canonical_string`] `v2` strings.
    #[must_use]
    pub fn canonical_token(&self) -> String {
        match self {
            Self::Single => SupplyKind::Single.token().to_owned(),
            Self::Boosted { level } => format!("{}({level})", SupplyKind::Boosted.token()),
            Self::BoostedScheduled {
                level,
                critical_layers,
            } => format!(
                "{}_sched({level},{critical_layers})",
                SupplyKind::Boosted.token()
            ),
            Self::Dual { v_h_mv } => format!("{}({v_h_mv})", SupplyKind::Dual.token()),
        }
    }

    /// The corresponding reporting kind.
    #[must_use]
    pub fn kind(&self) -> SupplyKind {
        match self {
            Self::Single => SupplyKind::Single,
            Self::Boosted { .. } | Self::BoostedScheduled { .. } => SupplyKind::Boosted,
            Self::Dual { .. } => SupplyKind::Dual,
        }
    }
}

/// The network a sweep evaluates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NetworkSpec {
    /// A tiny deterministic 6-12-2 FC net trained in-process on an 80-sample
    /// two-class synthetic set. Milliseconds to build; meant for smoke
    /// tests, service integration tests, and latency-sensitive callers.
    Toy,
    /// The cached MNIST-like FC-DNN from [`crate::artifacts`], with its
    /// procedural held-out test set.
    MnistFc {
        /// Training-set size (cache key component).
        train_n: usize,
        /// Held-out test images evaluated per trial.
        test_n: usize,
        /// Training epochs (cache key component).
        epochs: usize,
    },
    /// The paper's AlexNet conv-layer energy workload under the Eyeriss
    /// row-stationary dataflow, paired with the repo's documented accuracy
    /// proxy (the cached CIFAR-like CNN from [`crate::artifacts`]): the
    /// *energy* model uses the real AlexNet layer shapes from
    /// `dante-dataflow`, while fault-injection accuracy is measured on the
    /// proxy CNN's weights through the same `CorruptionOverlay` path as
    /// every other network.
    AlexNetConv {
        /// How many of the five conv layers the energy workload covers
        /// (1..=5, a validated layer subset).
        layers: usize,
        /// Proxy-CNN training-set size (cache key component).
        train_n: usize,
        /// Held-out proxy test images evaluated per trial.
        test_n: usize,
        /// Proxy training epochs (cache key component).
        epochs: usize,
    },
}

impl NetworkSpec {
    /// Canonical token used in [`SweepSpec::canonical_string`].
    #[must_use]
    pub fn canonical_token(&self) -> String {
        match self {
            Self::Toy => "toy".to_owned(),
            Self::MnistFc {
                train_n,
                test_n,
                epochs,
            } => format!("mnist_fc({train_n},{test_n},{epochs})"),
            Self::AlexNetConv {
                layers,
                train_n,
                test_n,
                epochs,
            } => format!("alexnet_conv({layers},{train_n},{test_n},{epochs})"),
        }
    }

    /// The energy workload and dataflow this network's sweeps charge energy
    /// for: Table 3's pairings — FC nets under the DANA FC dataflow, the
    /// AlexNet conv layers under Eyeriss row-stationary.
    #[must_use]
    pub fn energy_activity(&self) -> WorkloadActivity {
        match self {
            Self::Toy => DanaFcDataflow::new().activity(&Workload::new(
                "toy FC",
                vec![LayerShape::fc(6, 12), LayerShape::fc(12, 2)],
            )),
            Self::MnistFc { .. } => DanaFcDataflow::new().activity(&mnist_fc()),
            Self::AlexNetConv { layers, .. } => {
                RowStationaryDataflow::new().activity(&alexnet_conv_prefix(*layers))
            }
        }
    }
}

/// A complete, serializable description of one Monte-Carlo voltage sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SweepSpec {
    /// Root seed; trial `t` of sweep point `i` derives its die from
    /// `(seed, point, trial)` counters, never from shared RNG state.
    pub seed: u64,
    /// Voltage grid in millivolts (kept integral so the canonical encoding
    /// has no float-formatting ambiguity).
    pub voltages_mv: Vec<u32>,
    /// Monte-Carlo fault dies per sweep point.
    pub trials: usize,
    /// Overlay sampler.
    pub sampling: OverlaySampling,
    /// Error-protection mode.
    pub ecc: EccMode,
    /// Network under test.
    pub network: NetworkSpec,
    /// Power-supply configuration (energy model + SRAM rail selection).
    pub supply: SupplySpec,
    /// SRAM fault-model spec the Monte-Carlo dies are drawn from. The
    /// default (i.i.d. Gaussian, [`FaultModel::gaussian_default`]) keeps
    /// the pre-fault-model `v1`/`v2` canonical encodings byte-identical.
    pub fault_model: FaultModel,
    /// Where the SRAM access energy comes from: the scalar calibration
    /// (default, encodes to nothing — pre-geometry cache keys survive) or
    /// a structural macro geometry whose derived capacitance and leakage
    /// replace the scalars. Non-default geometries encode as `v4` with a
    /// `geom=` token.
    pub geometry: GeometrySpec,
}

impl SweepSpec {
    /// A fast default: the toy network over the cliff region.
    #[must_use]
    pub fn toy_default() -> Self {
        Self {
            seed: 0xDA17E,
            voltages_mv: vec![360, 400, 440, 480, 520, 560],
            trials: 4,
            sampling: OverlaySampling::SparseTail,
            ecc: EccMode::None,
            network: NetworkSpec::Toy,
            supply: SupplySpec::Single,
            fault_model: FaultModel::default(),
            geometry: GeometrySpec::Calibrated,
        }
    }

    /// Whether this sweep exercises the energy-comparison machinery beyond
    /// the `v1` default — a non-single supply or the AlexNet/row-stationary
    /// workload. `dante-serve` counts such jobs separately in `/metrics`.
    #[must_use]
    pub fn is_energy_sweep(&self) -> bool {
        self.supply != SupplySpec::Single || matches!(self.network, NetworkSpec::AlexNetConv { .. })
    }

    /// Validates the spec's bounds, returning a human-readable reason on
    /// rejection. Service entry points call this before queueing so a bad
    /// request fails fast with a 4xx instead of panicking a worker.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.voltages_mv.is_empty() {
            return Err("voltages_mv must be non-empty".to_owned());
        }
        if self.voltages_mv.len() > 256 {
            return Err(format!(
                "voltages_mv has {} points; at most 256 allowed",
                self.voltages_mv.len()
            ));
        }
        for &mv in &self.voltages_mv {
            // SparseOverlay panics below its sampling floor; 310 mV keeps
            // every grid point above the 0.30 V data-retention floor.
            if !(310..=700).contains(&mv) {
                return Err(format!(
                    "voltage {mv} mV outside the supported 310..=700 mV range"
                ));
            }
        }
        // Duplicate grid points would silently burn trials, repeat the
        // voltage in results, and fork the content-address cache.
        let mut sorted = self.voltages_mv.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!(
                "duplicate voltage {} mV in voltages_mv; each grid point must be unique",
                w[0]
            ));
        }
        if self.trials == 0 {
            return Err("trials must be at least 1".to_owned());
        }
        if self.trials > 100_000 {
            return Err(format!("trials = {} exceeds the 100000 cap", self.trials));
        }
        match self.network {
            NetworkSpec::Toy => {}
            NetworkSpec::MnistFc {
                train_n,
                test_n,
                epochs,
            } => {
                if train_n == 0 || train_n > 20_000 {
                    return Err(format!("mnist_fc train_n = {train_n} outside 1..=20000"));
                }
                if test_n == 0 || test_n > 10_000 {
                    return Err(format!("mnist_fc test_n = {test_n} outside 1..=10000"));
                }
                if epochs == 0 || epochs > 12 {
                    return Err(format!("mnist_fc epochs = {epochs} outside 1..=12"));
                }
            }
            NetworkSpec::AlexNetConv {
                layers,
                train_n,
                test_n,
                epochs,
            } => {
                if !(1..=5).contains(&layers) {
                    return Err(format!("alexnet_conv layers = {layers} outside 1..=5"));
                }
                if train_n == 0 || train_n > 10_000 {
                    return Err(format!(
                        "alexnet_conv train_n = {train_n} outside 1..=10000"
                    ));
                }
                if test_n == 0 || test_n > 5_000 {
                    return Err(format!("alexnet_conv test_n = {test_n} outside 1..=5000"));
                }
                if epochs == 0 || epochs > 12 {
                    return Err(format!("alexnet_conv epochs = {epochs} outside 1..=12"));
                }
                // Proxy-CNN inference is ~25x an FC inference; a tighter
                // trial cap keeps a single queued job bounded.
                if self.trials > 2_000 {
                    return Err(format!(
                        "alexnet_conv trials = {} exceeds the 2000 cap for conv sweeps",
                        self.trials
                    ));
                }
            }
        }
        if let Err(why) = self.fault_model.validate() {
            return Err(format!("fault_model: {why}"));
        }
        if let Err(why) = self.geometry.validate() {
            return Err(format!("geometry: {why}"));
        }
        match self.supply {
            SupplySpec::Single => {}
            SupplySpec::Boosted { level } => {
                if !(1..=4).contains(&level) {
                    return Err(format!(
                        "boosted supply level = {level} outside 1..=4 \
                         (level 0 is the single-supply configuration)"
                    ));
                }
            }
            SupplySpec::BoostedScheduled {
                level,
                critical_layers,
            } => {
                if !(1..=4).contains(&level) {
                    return Err(format!(
                        "scheduled boost level = {level} outside 1..=4 \
                         (level 0 is the single-supply configuration)"
                    ));
                }
                if !(1..=64).contains(&critical_layers) {
                    return Err(format!(
                        "scheduled boost critical_layers = {critical_layers} outside 1..=64"
                    ));
                }
            }
            SupplySpec::Dual { v_h_mv } => {
                if !(310..=700).contains(&v_h_mv) {
                    return Err(format!(
                        "dual supply v_h = {v_h_mv} mV outside the supported 310..=700 mV range"
                    ));
                }
                if let Some(&mv) = self.voltages_mv.iter().find(|&&mv| mv > v_h_mv) {
                    return Err(format!(
                        "dual supply v_h = {v_h_mv} mV is below grid point {mv} mV \
                         (the LDO only steps down; v_h must cover the whole grid)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The canonical flat encoding of the spec: stable field order, integral
    /// voltages, lowercase tokens. Equal specs — and only equal specs —
    /// produce equal strings, so a digest of this string is a sound
    /// content-address for the sweep's results.
    ///
    /// Single-supply specs with the default fault model encode as the
    /// historical `v1` string (no `supply=` token) so content addresses
    /// minted before the supply field existed remain valid; a non-single
    /// supply with the default fault model encodes as `v2` with the
    /// `supply=` token between `ecc=` and `net=`; any non-default fault
    /// model encodes as `v3` with a `fault=` token between `ecc=` and
    /// `supply=`/`net=`; any non-default geometry encodes as `v4` with a
    /// `geom=` token between `ecc=` and `fault=`. Lower-version strings
    /// never contain the higher versions' tokens, so the families stay
    /// collision-free.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        let version = if !self.geometry.is_default() {
            "v4"
        } else if !self.fault_model.is_default() {
            "v3"
        } else if self.supply != SupplySpec::Single {
            "v2"
        } else {
            "v1"
        };
        let _ = write!(
            out,
            "dante.sweep.{version};seed={};trials={};sampling={};ecc={};",
            self.seed,
            self.trials,
            match self.sampling {
                OverlaySampling::Dense => "dense",
                OverlaySampling::SparseTail => "sparse_tail",
            },
            match self.ecc {
                EccMode::None => "none",
                EccMode::SecDed => "secded",
            },
        );
        if let Some(tok) = self.geometry.canonical_token() {
            let _ = write!(out, "geom={tok};");
        }
        if !self.fault_model.is_default() {
            let _ = write!(out, "fault={};", self.fault_model.canonical_token());
        }
        if self.supply != SupplySpec::Single {
            let _ = write!(out, "supply={};", self.supply.canonical_token());
        }
        let _ = write!(out, "net={};mv=", self.network.canonical_token());
        for (i, mv) in self.voltages_mv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{mv}");
        }
        out
    }

    /// Trains/loads the network and materializes the evaluator and energy
    /// context: everything heavyweight happens here, once, so the per-point
    /// runs that follow are pure Monte-Carlo plus analytic energy.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn prepare(&self) -> PreparedSweep {
        if let Err(why) = self.validate() {
            panic!("invalid sweep spec: {why}");
        }
        let (net, images, labels) = match self.network {
            NetworkSpec::Toy => {
                let (net, images, labels) = toy_net_and_data();
                (net.clone(), images.clone(), labels.clone())
            }
            NetworkSpec::MnistFc {
                train_n,
                test_n,
                epochs,
            } => {
                let (net, test) = trained_mnist_fc(train_n, test_n, epochs);
                (net, test.images().to_vec(), test.labels().to_vec())
            }
            NetworkSpec::AlexNetConv {
                train_n,
                test_n,
                epochs,
                ..
            } => {
                let (net, test) = trained_cifar_cnn(train_n, test_n, epochs);
                (net, test.images().to_vec(), test.labels().to_vec())
            }
        };
        let evaluator = AccuracyEvaluator::new(self.trials)
            .with_sampling(self.sampling)
            .with_ecc(self.ecc)
            .with_fault_spec(self.fault_model);
        let layers = net.weight_layer_indices().len();
        PreparedSweep {
            ctx: self.energy_context(),
            evaluator,
            net,
            images,
            labels,
            layers,
        }
    }

    /// Materializes only the analytic (non-Monte-Carlo) half of a sweep:
    /// the energy model and workload activity. Unlike [`Self::prepare`]
    /// this never trains or loads a network, so a merge coordinator can
    /// reassemble [`SweepPoint`]s from shard-computed per-trial accuracies
    /// without paying for training it will never use.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn energy_context(&self) -> SweepEnergyContext {
        if let Err(why) = self.validate() {
            panic!("invalid sweep spec: {why}");
        }
        let energy = if self.geometry.is_default() {
            EnergyModel::dante_chip()
        } else {
            EnergyModel::new(
                EnergyParams::dante_chip().with_geometry(self.geometry),
                BoosterBank::standard(),
                Ldo::new(),
            )
        };
        SweepEnergyContext {
            spec: self.clone(),
            energy,
            activity: self.network.energy_activity(),
        }
    }
}

/// Splits `total` items into at most `shards` contiguous `(offset, count)`
/// windows covering `0..total` in order, sizes differing by at most one
/// (earlier windows take the remainder). Empty windows are omitted, so the
/// result holds `min(shards, total)` entries.
///
/// This is the canonical grid partition for scale-out execution: both the
/// per-point trial axis of a sweep and the die axis of a fleet shard with
/// it, and because every window keeps **global** offsets, each shard's
/// counter-derived seed stream is exactly the slice the unsharded run would
/// use.
///
/// # Panics
///
/// Panics if `total` or `shards` is zero.
#[must_use]
pub fn shard_ranges(total: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(total > 0, "cannot shard zero items");
    assert!(shards > 0, "need at least one shard");
    let shards = shards.min(total);
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut offset = 0;
    for i in 0..shards {
        let count = base + usize::from(i < extra);
        ranges.push((offset, count));
        offset += count;
    }
    debug_assert_eq!(offset, total);
    ranges
}

/// Per-inference energy of one sweep point under the spec's supply
/// configuration: the component breakdown (Eqs. 2/3/6), the leakage energy
/// per cycle (Eqs. 4/7 analogues), and the paper's 0.5 V normalization
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEnergy {
    /// Dynamic energy split by component (SRAM / logic / booster).
    pub dynamic: EnergyBreakdown,
    /// Leakage energy per cycle for this configuration.
    pub leakage_per_cycle: Joule,
    /// The chip's dynamic reference energy at 0.5 V for the same activity
    /// counts (Fig. 13's normalization denominator).
    pub reference_0v5: Joule,
}

impl PointEnergy {
    /// Total dynamic energy normalized to the 0.5 V reference, the unit the
    /// paper plots.
    #[must_use]
    pub fn normalized_total(&self) -> f64 {
        self.dynamic.total().joules() / self.reference_0v5.joules()
    }
}

/// Joint result of one sweep grid point: the grid (logic) voltage, the SRAM
/// rail the faults were drawn at, Monte-Carlo accuracy, and the energy
/// attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Grid voltage — the logic rail.
    pub vdd: Volt,
    /// Effective SRAM rail (equals `vdd` for single supply, `Vddv` for
    /// boosted, `V_h` for dual).
    pub v_sram: Volt,
    /// Monte-Carlo accuracy statistics at `v_sram`.
    pub stats: AccuracyStats,
    /// Per-inference energy under the spec's supply configuration.
    pub energy: PointEnergy,
}

/// The analytic half of a sweep — energy model, workload activity, and the
/// spec itself — with everything needed to turn per-trial accuracies back
/// into full [`SweepPoint`]s. Cheap to build (no training, no dataset); see
/// [`SweepSpec::energy_context`].
#[derive(Debug)]
pub struct SweepEnergyContext {
    spec: SweepSpec,
    energy: EnergyModel,
    activity: WorkloadActivity,
}

impl SweepEnergyContext {
    /// The spec this context was built from.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Number of voltage grid points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.spec.voltages_mv.len()
    }

    /// The energy workload activity this sweep charges each inference for.
    #[must_use]
    pub fn activity(&self) -> &WorkloadActivity {
        &self.activity
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The SRAM rail fault overlays are drawn at when the logic rail sits
    /// at grid voltage `vdd` (see [`SupplySpec`]). For a scheduled boost
    /// this is the *critical-bank* rail (`Vddv(level)`); non-critical banks
    /// stay at `vdd` — use [`Self::voltage_assignment`] for the full
    /// per-layer picture.
    #[must_use]
    pub fn sram_rail(&self, vdd: Volt) -> Volt {
        match self.spec.supply {
            SupplySpec::Single => vdd,
            SupplySpec::Boosted { level } | SupplySpec::BoostedScheduled { level, .. } => {
                self.energy.vddv(vdd, level)
            }
            SupplySpec::Dual { v_h_mv } => Volt::from_millivolts(f64::from(v_h_mv)),
        }
    }

    /// The per-layer boost levels of a scheduled-boost spec for an
    /// `n`-layer structure: the last `critical_layers` layers are marked
    /// fault-critical, layers sharing their banks (round-robin striping
    /// over the chip's [`DANTE_BANKS`] banks) ride along, everything else
    /// stays at level 0. Returns `None` for non-scheduled supplies.
    #[must_use]
    pub fn scheduled_levels(&self, n: usize) -> Option<Vec<usize>> {
        match self.spec.supply {
            SupplySpec::BoostedScheduled {
                level,
                critical_layers,
            } => {
                let mut sched =
                    BoostScheduler::new(DANTE_BANKS, self.energy.booster().levels() as u8, level);
                for layer in n.saturating_sub(critical_layers)..n {
                    sched.mark_critical_layer(layer);
                }
                Some(sched.layer_levels(n))
            }
            _ => None,
        }
    }

    /// The per-weight-layer voltage assignment fault overlays are drawn
    /// at when the logic rail sits at `vdd`. Uniform at [`Self::sram_rail`]
    /// for single/boosted/dual supplies; for a scheduled boost, critical
    /// banks' layers sit at the boosted rail while the rest — and the
    /// input memory — stay at `vdd`.
    #[must_use]
    pub fn voltage_assignment(&self, vdd: Volt, weight_layers: usize) -> VoltageAssignment {
        match self.scheduled_levels(weight_layers) {
            Some(levels) => VoltageAssignment {
                weight_layers: levels
                    .into_iter()
                    .map(|l| self.energy.vddv(vdd, l))
                    .collect(),
                inputs: vdd,
            },
            None => VoltageAssignment::uniform(self.sram_rail(vdd), weight_layers),
        }
    }

    /// The per-inference energy attribution at grid voltage `vdd` — a pure
    /// function of the spec (no Monte-Carlo), exposed so services and tests
    /// can recompute it independently of a run.
    #[must_use]
    pub fn point_energy(&self, vdd: Volt) -> PointEnergy {
        let macs = self.activity.total_macs();
        let accesses = self.activity.total_sram_accesses();
        let (dynamic, leakage) = match self.spec.supply {
            SupplySpec::Single => (
                self.energy.breakdown_single(vdd, accesses, macs),
                self.energy.leakage_single_per_cycle(vdd),
            ),
            SupplySpec::Boosted { level } => (
                self.energy
                    .breakdown_boosted(vdd, &[BoostedGroup { accesses, level }], macs),
                self.energy.leakage_boosted_per_cycle(vdd),
            ),
            SupplySpec::BoostedScheduled { .. } => {
                let levels = self
                    .scheduled_levels(self.activity.layers().len())
                    .expect("scheduled supply always yields levels");
                let groups = BoostPlan::new(levels, 0).boosted_groups(&self.activity);
                (
                    self.energy.breakdown_boosted(vdd, &groups, macs),
                    self.energy.leakage_boosted_per_cycle(vdd),
                )
            }
            SupplySpec::Dual { v_h_mv } => {
                let v_h = Volt::from_millivolts(f64::from(v_h_mv));
                (
                    self.energy.breakdown_dual(v_h, vdd, accesses, macs),
                    self.energy.leakage_dual_per_cycle(v_h, vdd),
                )
            }
        };
        PointEnergy {
            dynamic,
            leakage_per_cycle: leakage,
            reference_0v5: self.energy.reference_energy_at_0v5(accesses, macs),
        }
    }

    /// Reassembles grid point `index` from its per-trial accuracies.
    ///
    /// When `per_trial` is the offset-order concatenation of shard windows
    /// (see [`shard_ranges`] and
    /// [`PreparedSweep::run_point_trial_range_observed`]), the result is
    /// bit-identical to [`PreparedSweep::run_point`]: the voltage, rail,
    /// and energy fields are pure functions of the spec recomputed here,
    /// and [`AccuracyStats`] derives everything from the per-trial vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the trial count doesn't match
    /// the spec.
    #[must_use]
    pub fn assemble_point(&self, index: usize, per_trial: Vec<f64>) -> SweepPoint {
        assert_eq!(
            per_trial.len(),
            self.spec.trials,
            "merged trial count must match the spec"
        );
        let vdd = Volt::from_millivolts(f64::from(self.spec.voltages_mv[index]));
        SweepPoint {
            vdd,
            v_sram: self.sram_rail(vdd),
            stats: AccuracyStats { per_trial },
            energy: self.point_energy(vdd),
        }
    }

    /// [`Self::assemble_point`] over every grid point in order.
    ///
    /// # Panics
    ///
    /// Panics unless `per_point` holds exactly one full per-trial vector
    /// per grid point.
    #[must_use]
    pub fn assemble(&self, per_point: Vec<Vec<f64>>) -> Vec<SweepPoint> {
        assert_eq!(
            per_point.len(),
            self.point_count(),
            "merged point count must match the grid"
        );
        per_point
            .into_iter()
            .enumerate()
            .map(|(i, trials)| self.assemble_point(i, trials))
            .collect()
    }
}

/// A sweep with its network trained, its evaluator built, and its energy
/// context materialized, ready to run point by point (the granularity a
/// progress-streaming service needs).
#[derive(Debug)]
pub struct PreparedSweep {
    ctx: SweepEnergyContext,
    evaluator: AccuracyEvaluator,
    net: Network,
    images: Vec<f32>,
    labels: Vec<u8>,
    layers: usize,
}

impl PreparedSweep {
    /// The spec this sweep was prepared from.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        self.ctx.spec()
    }

    /// Replaces the prepared network with `net`, keeping the spec's test
    /// set, evaluator, and energy context. This is how the retraining
    /// subsystem evaluates a hardened network through exactly the same
    /// sweep/solve path as its baseline — same seeds, same dies, same test
    /// set, only the weights differ.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different weight-layer structure than the
    /// spec's network (per-layer voltage assignments would be meaningless).
    #[must_use]
    pub fn with_network(mut self, net: Network) -> Self {
        assert_eq!(
            net.weight_layer_indices().len(),
            self.layers,
            "replacement network weight-layer count mismatch"
        );
        assert_eq!(
            net.in_len(),
            self.net.in_len(),
            "replacement network input width mismatch"
        );
        assert_eq!(
            net.out_len(),
            self.net.out_len(),
            "replacement network output width mismatch"
        );
        self.net = net;
        self
    }

    /// Number of voltage grid points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.ctx.point_count()
    }

    /// Test images evaluated per trial.
    #[must_use]
    pub fn samples_per_trial(&self) -> usize {
        self.labels.len()
    }

    /// The energy workload activity this sweep charges each inference for.
    #[must_use]
    pub fn activity(&self) -> &WorkloadActivity {
        self.ctx.activity()
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        self.ctx.energy_model()
    }

    /// Fault-free accuracy of the prepared network on its test set (the
    /// clean baseline iso-accuracy targets are expressed against).
    #[must_use]
    pub fn clean_accuracy(&self) -> f64 {
        self.net.accuracy(&self.images, &self.labels)
    }

    /// The SRAM rail fault overlays are drawn at when the logic rail sits
    /// at grid voltage `vdd` (see [`SupplySpec`]).
    #[must_use]
    pub fn sram_rail(&self, vdd: Volt) -> Volt {
        self.ctx.sram_rail(vdd)
    }

    /// The per-inference energy attribution at grid voltage `vdd` — a pure
    /// function of the spec (no Monte-Carlo), exposed so services and tests
    /// can recompute it independently of a run.
    #[must_use]
    pub fn point_energy(&self, vdd: Volt) -> PointEnergy {
        self.ctx.point_energy(vdd)
    }

    /// Runs grid point `index`, deriving its seed from `(spec.seed, index)`
    /// so points are reproducible in isolation and in any order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run_point(&self, index: usize) -> SweepPoint {
        self.run_point_observed(index, &dante_sim::NoopObserver)
    }

    /// [`Self::run_point`] with per-trial instrumentation. After the
    /// point's trials finish, the point's total dynamic energy is reported
    /// through [`TrialObserver::on_annotation`] as `"dynamic_energy_j"`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run_point_observed(&self, index: usize, observer: &dyn TrialObserver) -> SweepPoint {
        let spec = self.spec();
        let mv = spec.voltages_mv[index];
        let vdd = Volt::from_millivolts(f64::from(mv));
        let v_sram = self.sram_rail(vdd);
        let stats = self.evaluator.evaluate_observed(
            &self.net,
            &self.ctx.voltage_assignment(vdd, self.layers),
            &self.images,
            &self.labels,
            dante_sim::derive_seed(spec.seed, dante_sim::site::SWEEP_POINT, index as u64),
            observer,
        );
        let energy = self.point_energy(vdd);
        observer.on_annotation("dynamic_energy_j", energy.dynamic.total().joules());
        SweepPoint {
            vdd,
            v_sram,
            stats,
            energy,
        }
    }

    /// Runs only the global trial window `[trial_offset, trial_offset +
    /// trial_count)` of grid point `index`, returning the raw per-trial
    /// accuracies (the shard unit of work).
    ///
    /// Every trial keeps the seed it would have in a full
    /// [`Self::run_point`] — `derive_seed(point_seed, TRIAL, global
    /// index)` — so concatenating the windows of a [`shard_ranges`]
    /// partition in order reproduces the full run's
    /// [`AccuracyStats::per_trial`] bit-for-bit. Merging happens on the
    /// coordinator via [`SweepEnergyContext::assemble_point`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the window is empty or exceeds
    /// the spec's trial count.
    #[must_use]
    pub fn run_point_trial_range_observed(
        &self,
        index: usize,
        trial_offset: usize,
        trial_count: usize,
        observer: &dyn TrialObserver,
    ) -> Vec<f64> {
        let spec = self.spec();
        let mv = spec.voltages_mv[index];
        let vdd = Volt::from_millivolts(f64::from(mv));
        self.evaluator
            .evaluate_trial_range_observed(
                &self.net,
                &self.ctx.voltage_assignment(vdd, self.layers),
                &self.images,
                &self.labels,
                dante_sim::derive_seed(spec.seed, dante_sim::site::SWEEP_POINT, index as u64),
                trial_offset,
                trial_count,
                observer,
            )
            .per_trial
    }

    /// Runs every grid point in order.
    #[must_use]
    pub fn run(&self) -> Vec<SweepPoint> {
        (0..self.point_count()).map(|i| self.run_point(i)).collect()
    }

    /// [`Self::run`] with per-trial instrumentation shared across points.
    #[must_use]
    pub fn run_observed(&self, observer: &dyn TrialObserver) -> Vec<SweepPoint> {
        (0..self.point_count())
            .map(|i| self.run_point_observed(i, observer))
            .collect()
    }
}

/// The process-wide toy network and its dataset (trained once, lazily).
pub(crate) fn toy_net_and_data() -> &'static (Network, Vec<f32>, Vec<u8>) {
    static TOY: OnceLock<(Network, Vec<f32>, Vec<u8>)> = OnceLock::new();
    TOY.get_or_init(|| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(6, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 2, &mut rng)),
        ])
        .expect("toy network is well-formed");
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = (i % 2) as u8;
            let base = if c == 0 { 0.75 } else { 0.15 };
            for j in 0..6 {
                images.push(base + ((i + j) % 7) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 20,
            batch_size: 8,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_grid_exactly() {
        for total in [1usize, 2, 5, 7, 100] {
            for shards in [1usize, 2, 3, 4, 9, 200] {
                let ranges = shard_ranges(total, shards);
                assert_eq!(ranges.len(), shards.min(total));
                let mut next = 0;
                for &(offset, count) in &ranges {
                    assert_eq!(offset, next, "windows are contiguous in order");
                    assert!(count > 0, "no empty windows");
                    next = offset + count;
                }
                assert_eq!(next, total, "windows cover the grid");
                let min = ranges.iter().map(|r| r.1).min().unwrap();
                let max = ranges.iter().map(|r| r.1).max().unwrap();
                assert!(max - min <= 1, "balanced to within one item");
            }
        }
    }

    #[test]
    fn trial_range_windows_merge_bit_identical_to_the_full_run() {
        let spec = SweepSpec {
            supply: SupplySpec::Boosted { level: 3 },
            ..SweepSpec::toy_default()
        };
        let prepared = spec.prepare();
        let full = prepared.run();
        let ctx = spec.energy_context();
        for shards in [1usize, 2, 3] {
            let merged: Vec<SweepPoint> = (0..prepared.point_count())
                .map(|point| {
                    let mut per_trial = Vec::with_capacity(spec.trials);
                    for (offset, count) in shard_ranges(spec.trials, shards) {
                        per_trial.extend(prepared.run_point_trial_range_observed(
                            point,
                            offset,
                            count,
                            &dante_sim::NoopObserver,
                        ));
                    }
                    ctx.assemble_point(point, per_trial)
                })
                .collect();
            assert_eq!(merged.len(), full.len());
            for (m, f) in merged.iter().zip(&full) {
                let mb: Vec<u64> = m.stats.per_trial.iter().map(|a| a.to_bits()).collect();
                let fb: Vec<u64> = f.stats.per_trial.iter().map(|a| a.to_bits()).collect();
                assert_eq!(
                    mb, fb,
                    "per-trial accuracies bit-identical at {shards} shards"
                );
                assert_eq!(m, f, "assembled points identical");
            }
        }
    }

    #[test]
    fn canonical_string_distinguishes_specs() {
        let a = SweepSpec::toy_default();
        let mut b = a.clone();
        assert_eq!(a.canonical_string(), b.canonical_string());
        b.seed ^= 1;
        assert_ne!(a.canonical_string(), b.canonical_string());
        let mut c = a.clone();
        c.sampling = OverlaySampling::Dense;
        assert_ne!(a.canonical_string(), c.canonical_string());
        let mut d = a.clone();
        d.voltages_mv.push(600);
        assert_ne!(a.canonical_string(), d.canonical_string());
        let mut e = a.clone();
        e.supply = SupplySpec::Boosted { level: 4 };
        assert_ne!(a.canonical_string(), e.canonical_string());
        let mut f = a.clone();
        f.supply = SupplySpec::Dual { v_h_mv: 600 };
        assert_ne!(e.canonical_string(), f.canonical_string());
        let mut g = a.clone();
        g.fault_model = FaultModel::burst_default();
        assert_ne!(a.canonical_string(), g.canonical_string());
    }

    #[test]
    fn non_default_fault_model_encodes_as_v3_with_a_fault_token() {
        let spec = SweepSpec {
            fault_model: FaultModel::burst_default(),
            ..SweepSpec::toy_default()
        };
        assert_eq!(
            spec.canonical_string(),
            "dante.sweep.v3;seed=893310;trials=4;sampling=sparse_tail;ecc=none;\
             fault=burst.v1(mu=352,sigma=40,flip=500000,row=2000,col=1000,shift=120);\
             net=toy;mv=360,400,440,480,520,560"
        );
        // v3 composes with the supply token in the fixed field order.
        let both = SweepSpec {
            fault_model: FaultModel::chip_variation_default(),
            supply: SupplySpec::Boosted { level: 2 },
            ..SweepSpec::toy_default()
        };
        let s = both.canonical_string();
        assert!(s.starts_with("dante.sweep.v3;"), "{s}");
        assert!(s.contains(";fault=chip.v1("), "{s}");
        assert!(s.contains(");supply=boosted(2);net="), "{s}");
        // v1/v2 strings never carry a fault token: the families are
        // collision-free by construction.
        assert!(!SweepSpec::toy_default()
            .canonical_string()
            .contains("fault="));
        let v2 = SweepSpec {
            supply: SupplySpec::Boosted { level: 3 },
            ..SweepSpec::toy_default()
        };
        assert!(!v2.canonical_string().contains("fault="));
    }

    #[test]
    fn validation_rejects_bad_fault_models() {
        let bad = SweepSpec {
            fault_model: FaultModel::Gaussian {
                mu_mv: 100,
                sigma_mv: 40,
                flip_ppm: 500_000,
            },
            ..SweepSpec::toy_default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("fault_model"), "{err}");
    }

    #[test]
    fn non_gaussian_sweeps_run_and_degrade_accuracy() {
        // A burst model adds faults on top of the shared Gaussian
        // background, so at a cliff voltage accuracy can only drop relative
        // to the default model with the same seed.
        let base = SweepSpec {
            voltages_mv: vec![420],
            trials: 3,
            ..SweepSpec::toy_default()
        };
        let burst = SweepSpec {
            fault_model: FaultModel::CorrelatedBurst {
                mu_mv: 352,
                sigma_mv: 40,
                flip_ppm: 500_000,
                row_weak_ppm: 50_000,
                col_weak_ppm: 10_000,
                shift_mv: 150,
            },
            ..base.clone()
        };
        let acc_base = base.prepare().run_point(0).stats.mean();
        let acc_burst = burst.prepare().run_point(0).stats.mean();
        assert!(
            acc_burst <= acc_base,
            "bursts must not improve accuracy: {acc_burst} vs {acc_base}"
        );
        // Deterministic like every other sweep.
        assert_eq!(burst.prepare().run(), burst.prepare().run());
    }

    #[test]
    fn single_supply_encodes_as_the_byte_stable_v1_string() {
        // Cache-compat regression: these exact strings minted every cache
        // key before the supply field existed. They must never change.
        let toy = SweepSpec::toy_default();
        assert_eq!(
            toy.canonical_string(),
            "dante.sweep.v1;seed=893310;trials=4;sampling=sparse_tail;ecc=none;\
             net=toy;mv=360,400,440,480,520,560"
        );
        let mnist = SweepSpec {
            seed: 7,
            voltages_mv: vec![400, 480],
            trials: 2,
            sampling: OverlaySampling::Dense,
            ecc: EccMode::SecDed,
            network: NetworkSpec::MnistFc {
                train_n: 1200,
                test_n: 100,
                epochs: 4,
            },
            supply: SupplySpec::Single,
            fault_model: FaultModel::default(),
            geometry: GeometrySpec::Calibrated,
        };
        assert_eq!(
            mnist.canonical_string(),
            "dante.sweep.v1;seed=7;trials=2;sampling=dense;ecc=secded;\
             net=mnist_fc(1200,100,4);mv=400,480"
        );
    }

    #[test]
    fn non_single_supply_encodes_as_v2_with_a_supply_token() {
        let spec = SweepSpec {
            supply: SupplySpec::Boosted { level: 3 },
            ..SweepSpec::toy_default()
        };
        assert_eq!(
            spec.canonical_string(),
            "dante.sweep.v2;seed=893310;trials=4;sampling=sparse_tail;ecc=none;\
             supply=boosted(3);net=toy;mv=360,400,440,480,520,560"
        );
        let dual = SweepSpec {
            supply: SupplySpec::Dual { v_h_mv: 600 },
            ..SweepSpec::toy_default()
        };
        assert!(dual.canonical_string().contains("supply=dual(600);"));
        // v1 strings never carry a supply token, so the families are
        // collision-free by construction.
        assert!(!SweepSpec::toy_default()
            .canonical_string()
            .contains("supply="));
    }

    #[test]
    fn validation_rejects_out_of_range_specs() {
        let ok = SweepSpec::toy_default();
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.voltages_mv.clear();
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.voltages_mv = vec![200];
        assert!(bad.validate().unwrap_err().contains("200"));
        let mut bad = ok.clone();
        bad.trials = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.network = NetworkSpec::MnistFc {
            train_n: 0,
            test_n: 10,
            epochs: 1,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_rejects_duplicate_voltages() {
        let mut bad = SweepSpec::toy_default();
        bad.voltages_mv = vec![400, 440, 400];
        let err = bad.validate().unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(err.contains("400"), "diagnostic names the voltage: {err}");
    }

    #[test]
    fn validation_rejects_bad_supply_configs() {
        let base = SweepSpec::toy_default();
        let bad = SweepSpec {
            supply: SupplySpec::Boosted { level: 0 },
            ..base.clone()
        };
        assert!(bad.validate().unwrap_err().contains("level"));
        let bad = SweepSpec {
            supply: SupplySpec::Boosted { level: 5 },
            ..base.clone()
        };
        assert!(bad.validate().is_err());
        // v_h below a grid point: the LDO cannot step up.
        let bad = SweepSpec {
            supply: SupplySpec::Dual { v_h_mv: 500 },
            ..base.clone()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("steps down"), "{err}");
        let ok = SweepSpec {
            supply: SupplySpec::Dual { v_h_mv: 560 },
            ..base
        };
        assert!(
            ok.validate().is_ok(),
            "v_h equal to the max grid point is fine"
        );
    }

    #[test]
    fn validation_bounds_alexnet_conv() {
        let base = SweepSpec {
            network: NetworkSpec::AlexNetConv {
                layers: 5,
                train_n: 100,
                test_n: 20,
                epochs: 1,
            },
            ..SweepSpec::toy_default()
        };
        assert!(base.validate().is_ok());
        let mut bad = base.clone();
        bad.network = NetworkSpec::AlexNetConv {
            layers: 6,
            train_n: 100,
            test_n: 20,
            epochs: 1,
        };
        assert!(bad.validate().unwrap_err().contains("layers"));
        let mut bad = base.clone();
        bad.network = NetworkSpec::AlexNetConv {
            layers: 0,
            train_n: 100,
            test_n: 20,
            epochs: 1,
        };
        assert!(bad.validate().is_err());
        let mut bad = base;
        bad.trials = 5_000;
        assert!(bad.validate().unwrap_err().contains("2000"));
    }

    #[test]
    fn prepared_sweep_is_deterministic_and_order_independent() {
        let spec = SweepSpec {
            voltages_mv: vec![400, 520],
            trials: 3,
            ..SweepSpec::toy_default()
        };
        let prep = spec.prepare();
        let full = prep.run();
        assert_eq!(full.len(), 2);
        // Points rerun in isolation reproduce the full-run results.
        let p1 = prep.run_point(1);
        let p0 = prep.run_point(0);
        assert_eq!(full[0], p0);
        assert_eq!(full[1], p1);
        // A fresh preparation agrees bit-for-bit.
        assert_eq!(spec.prepare().run(), full);
        // Accuracy rises with voltage on the toy net.
        assert!(full[1].stats.mean() >= full[0].stats.mean());
    }

    #[test]
    fn supply_config_sets_the_sram_rail_and_energy_equations() {
        let base = SweepSpec {
            voltages_mv: vec![400],
            trials: 2,
            ..SweepSpec::toy_default()
        };
        let single = base.prepare().run_point(0);
        assert_eq!(single.v_sram, single.vdd);
        assert_eq!(single.energy.dynamic.booster, Joule::ZERO);

        let boosted_spec = SweepSpec {
            supply: SupplySpec::Boosted { level: 4 },
            ..base.clone()
        };
        let boosted = boosted_spec.prepare().run_point(0);
        assert!(boosted.v_sram > boosted.vdd, "boost lifts the SRAM rail");
        assert!(boosted.energy.dynamic.booster > Joule::ZERO);
        // A boosted SRAM rail at 400 mV sees fewer faults than an unboosted
        // one, so accuracy can only improve.
        assert!(boosted.stats.mean() >= single.stats.mean());

        let dual_spec = SweepSpec {
            supply: SupplySpec::Dual { v_h_mv: 560 },
            ..base
        };
        let dual = dual_spec.prepare().run_point(0);
        assert_eq!(dual.v_sram, Volt::from_millivolts(560.0));
        assert_eq!(dual.energy.dynamic.booster, Joule::ZERO);
        // The LDO tax makes dual logic energy exceed single logic energy at
        // the same logic rail.
        assert!(dual.energy.dynamic.logic > single.energy.dynamic.logic);
    }

    #[test]
    fn point_energy_matches_the_library_equations() {
        let spec = SweepSpec {
            voltages_mv: vec![440],
            supply: SupplySpec::Boosted { level: 2 },
            ..SweepSpec::toy_default()
        };
        let prep = spec.prepare();
        let e = prep.point_energy(Volt::from_millivolts(440.0));
        let m = EnergyModel::dante_chip();
        let activity = spec.network.energy_activity();
        let expected = m.breakdown_boosted(
            Volt::from_millivolts(440.0),
            &[BoostedGroup {
                accesses: activity.total_sram_accesses(),
                level: 2,
            }],
            activity.total_macs(),
        );
        assert_eq!(e.dynamic, expected);
        assert!(e.normalized_total().is_finite() && e.normalized_total() > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sweep spec")]
    fn prepare_rejects_invalid_specs() {
        let mut spec = SweepSpec::toy_default();
        spec.trials = 0;
        let _ = spec.prepare();
    }

    #[test]
    fn non_default_geometry_encodes_as_v4_with_a_geom_token() {
        use dante_circuit::macro_model::MacroGeometry;
        let spec = SweepSpec {
            geometry: GeometrySpec::Structural(MacroGeometry::bank_64kbit()),
            ..SweepSpec::toy_default()
        };
        assert_eq!(
            spec.canonical_string(),
            "dante.sweep.v4;seed=893310;trials=4;sampling=sparse_tail;ecc=none;\
             geom=struct(r=256,c=128,m=4,b=2);net=toy;mv=360,400,440,480,520,560"
        );
        // v4 composes with fault and supply tokens in the fixed field order.
        let all = SweepSpec {
            geometry: GeometrySpec::Structural(MacroGeometry::macro_32kbit()),
            fault_model: FaultModel::burst_default(),
            supply: SupplySpec::Boosted { level: 2 },
            ..SweepSpec::toy_default()
        };
        let s = all.canonical_string();
        assert!(s.starts_with("dante.sweep.v4;"), "{s}");
        assert!(
            s.contains(";geom=struct(r=256,c=128,m=4,b=1);fault="),
            "{s}"
        );
        assert!(s.contains(");supply=boosted(2);net="), "{s}");
        // v1/v2/v3 strings never carry a geom token.
        for old in [
            SweepSpec::toy_default(),
            SweepSpec {
                supply: SupplySpec::Boosted { level: 3 },
                ..SweepSpec::toy_default()
            },
            SweepSpec {
                fault_model: FaultModel::burst_default(),
                ..SweepSpec::toy_default()
            },
        ] {
            assert!(!old.canonical_string().contains("geom="));
        }
    }

    #[test]
    fn structural_geometry_sweeps_run_with_derived_energy() {
        use dante_circuit::macro_model::MacroGeometry;
        let base = SweepSpec {
            voltages_mv: vec![440],
            trials: 2,
            ..SweepSpec::toy_default()
        };
        let structural = SweepSpec {
            geometry: GeometrySpec::Structural(MacroGeometry::bank_64kbit()),
            ..base.clone()
        };
        let pb = base.prepare().run_point(0);
        let ps = structural.prepare().run_point(0);
        // Accuracy is untouched by the energy-side geometry (same seeds,
        // same rails) ...
        assert_eq!(pb.stats, ps.stats);
        // ... while the energy now comes from the derived capacitance,
        // which lands within 1% of the calibration at the paper geometry.
        let ratio = ps.energy.dynamic.sram.joules() / pb.energy.dynamic.sram.joules();
        assert!((ratio - 1.0).abs() < 0.01, "sram energy ratio {ratio}");
        assert!(ps.energy.dynamic.logic == pb.energy.dynamic.logic);
    }

    #[test]
    fn validation_rejects_bad_geometry_and_scheduled_configs() {
        use dante_circuit::macro_model::MacroGeometry;
        let bad = SweepSpec {
            geometry: GeometrySpec::Structural(MacroGeometry {
                rows: 100,
                cols: 128,
                mux: 4,
                banks: 1,
            }),
            ..SweepSpec::toy_default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("geometry"), "{err}");
        let bad = SweepSpec {
            supply: SupplySpec::BoostedScheduled {
                level: 5,
                critical_layers: 1,
            },
            ..SweepSpec::toy_default()
        };
        assert!(bad.validate().unwrap_err().contains("level"));
        let bad = SweepSpec {
            supply: SupplySpec::BoostedScheduled {
                level: 2,
                critical_layers: 0,
            },
            ..SweepSpec::toy_default()
        };
        assert!(bad.validate().unwrap_err().contains("critical_layers"));
    }

    #[test]
    fn scheduled_boost_encodes_as_v2_and_is_cheaper_than_full_boost() {
        let sched = SweepSpec {
            voltages_mv: vec![400],
            trials: 2,
            supply: SupplySpec::BoostedScheduled {
                level: 4,
                critical_layers: 1,
            },
            ..SweepSpec::toy_default()
        };
        assert_eq!(
            sched.canonical_string(),
            "dante.sweep.v2;seed=893310;trials=2;sampling=sparse_tail;ecc=none;\
             supply=boosted_sched(4,1);net=toy;mv=400"
        );
        let full = SweepSpec {
            supply: SupplySpec::Boosted { level: 4 },
            ..sched.clone()
        };
        let ps = sched.prepare().run_point(0);
        let pf = full.prepare().run_point(0);
        // Only the critical bank boosts, so the scheduled configuration
        // pays less SRAM + booster energy than boosting every access...
        assert!(ps.energy.dynamic.sram < pf.energy.dynamic.sram);
        assert!(ps.energy.dynamic.booster < pf.energy.dynamic.booster);
        // ...while the critical layer still sees the full boosted rail.
        assert_eq!(ps.v_sram, pf.v_sram);
        // Accuracy sits between single-supply (nothing protected) and full
        // boost (everything protected).
        let single = SweepSpec {
            supply: SupplySpec::Single,
            ..sched.clone()
        };
        let pn = single.prepare().run_point(0);
        assert!(ps.stats.mean() >= pn.stats.mean());
        assert!(ps.stats.mean() <= pf.stats.mean());
    }

    #[test]
    fn scheduled_levels_boost_only_critical_banks() {
        let spec = SweepSpec {
            supply: SupplySpec::BoostedScheduled {
                level: 3,
                critical_layers: 2,
            },
            ..SweepSpec::toy_default()
        };
        let ctx = spec.energy_context();
        // 5-layer structure: the last two layers are critical; with 18
        // banks no striping collision occurs.
        assert_eq!(ctx.scheduled_levels(5), Some(vec![0, 0, 0, 3, 3]));
        // Non-scheduled supplies yield no plan.
        assert_eq!(
            SweepSpec::toy_default()
                .energy_context()
                .scheduled_levels(5),
            None
        );
        // The assignment puts only critical layers on the boosted rail.
        let vdd = Volt::from_millivolts(400.0);
        let va = ctx.voltage_assignment(vdd, 5);
        assert_eq!(va.inputs, vdd);
        assert_eq!(va.weight_layers[0], vdd);
        assert!(va.weight_layers[4] > vdd);
        assert_eq!(va.weight_layers[3], va.weight_layers[4]);
    }
}
