//! Serializable sweep job specifications.
//!
//! A [`SweepSpec`] captures everything that determines a Monte-Carlo
//! voltage sweep — seed, voltage grid, trial count, sampler, ECC mode, and
//! the network under test — as plain data, so a sweep can be shipped across
//! a process boundary (the `dante-serve` HTTP service), queued, digested
//! for caching, and replayed bit-identically. Because the trial engine is
//! counter-based deterministic, two runs of the same spec produce the same
//! per-trial accuracies on any machine and any thread count; the spec's
//! [`canonical_string`](SweepSpec::canonical_string) is therefore a sound
//! content-address for result caching.

use crate::accuracy::{
    AccuracyEvaluator, AccuracyStats, EccMode, OverlaySampling, VoltageAssignment,
};
use crate::artifacts::trained_mnist_fc;
use dante_circuit::units::Volt;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sim::TrialObserver;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// The network a sweep evaluates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NetworkSpec {
    /// A tiny deterministic 6-12-2 FC net trained in-process on an 80-sample
    /// two-class synthetic set. Milliseconds to build; meant for smoke
    /// tests, service integration tests, and latency-sensitive callers.
    Toy,
    /// The cached MNIST-like FC-DNN from [`crate::artifacts`], with its
    /// procedural held-out test set.
    MnistFc {
        /// Training-set size (cache key component).
        train_n: usize,
        /// Held-out test images evaluated per trial.
        test_n: usize,
        /// Training epochs (cache key component).
        epochs: usize,
    },
}

impl NetworkSpec {
    /// Canonical token used in [`SweepSpec::canonical_string`].
    #[must_use]
    pub fn canonical_token(&self) -> String {
        match self {
            Self::Toy => "toy".to_owned(),
            Self::MnistFc {
                train_n,
                test_n,
                epochs,
            } => format!("mnist_fc({train_n},{test_n},{epochs})"),
        }
    }
}

/// A complete, serializable description of one Monte-Carlo voltage sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SweepSpec {
    /// Root seed; trial `t` of sweep point `i` derives its die from
    /// `(seed, point, trial)` counters, never from shared RNG state.
    pub seed: u64,
    /// Voltage grid in millivolts (kept integral so the canonical encoding
    /// has no float-formatting ambiguity).
    pub voltages_mv: Vec<u32>,
    /// Monte-Carlo fault dies per sweep point.
    pub trials: usize,
    /// Overlay sampler.
    pub sampling: OverlaySampling,
    /// Error-protection mode.
    pub ecc: EccMode,
    /// Network under test.
    pub network: NetworkSpec,
}

impl SweepSpec {
    /// A fast default: the toy network over the cliff region.
    #[must_use]
    pub fn toy_default() -> Self {
        Self {
            seed: 0xDA17E,
            voltages_mv: vec![360, 400, 440, 480, 520, 560],
            trials: 4,
            sampling: OverlaySampling::SparseTail,
            ecc: EccMode::None,
            network: NetworkSpec::Toy,
        }
    }

    /// Validates the spec's bounds, returning a human-readable reason on
    /// rejection. Service entry points call this before queueing so a bad
    /// request fails fast with a 4xx instead of panicking a worker.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.voltages_mv.is_empty() {
            return Err("voltages_mv must be non-empty".to_owned());
        }
        if self.voltages_mv.len() > 256 {
            return Err(format!(
                "voltages_mv has {} points; at most 256 allowed",
                self.voltages_mv.len()
            ));
        }
        for &mv in &self.voltages_mv {
            // SparseOverlay panics below its sampling floor; 310 mV keeps
            // every grid point above the 0.30 V data-retention floor.
            if !(310..=700).contains(&mv) {
                return Err(format!(
                    "voltage {mv} mV outside the supported 310..=700 mV range"
                ));
            }
        }
        if self.trials == 0 {
            return Err("trials must be at least 1".to_owned());
        }
        if self.trials > 100_000 {
            return Err(format!("trials = {} exceeds the 100000 cap", self.trials));
        }
        if let NetworkSpec::MnistFc {
            train_n,
            test_n,
            epochs,
        } = self.network
        {
            if train_n == 0 || train_n > 20_000 {
                return Err(format!("mnist_fc train_n = {train_n} outside 1..=20000"));
            }
            if test_n == 0 || test_n > 10_000 {
                return Err(format!("mnist_fc test_n = {test_n} outside 1..=10000"));
            }
            if epochs == 0 || epochs > 12 {
                return Err(format!("mnist_fc epochs = {epochs} outside 1..=12"));
            }
        }
        Ok(())
    }

    /// The canonical flat encoding of the spec: stable field order, integral
    /// voltages, lowercase tokens. Equal specs — and only equal specs —
    /// produce equal strings, so a digest of this string is a sound
    /// content-address for the sweep's results.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "dante.sweep.v1;seed={};trials={};sampling={};ecc={};net={};mv=",
            self.seed,
            self.trials,
            match self.sampling {
                OverlaySampling::Dense => "dense",
                OverlaySampling::SparseTail => "sparse_tail",
            },
            match self.ecc {
                EccMode::None => "none",
                EccMode::SecDed => "secded",
            },
            self.network.canonical_token(),
        );
        for (i, mv) in self.voltages_mv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{mv}");
        }
        out
    }

    /// Trains/loads the network and materializes the evaluator: everything
    /// heavyweight happens here, once, so the per-point runs that follow
    /// are pure Monte-Carlo.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn prepare(&self) -> PreparedSweep {
        if let Err(why) = self.validate() {
            panic!("invalid sweep spec: {why}");
        }
        let (net, images, labels) = match self.network {
            NetworkSpec::Toy => {
                let (net, images, labels) = toy_net_and_data();
                (net.clone(), images.clone(), labels.clone())
            }
            NetworkSpec::MnistFc {
                train_n,
                test_n,
                epochs,
            } => {
                let (net, test) = trained_mnist_fc(train_n, test_n, epochs);
                (net, test.images().to_vec(), test.labels().to_vec())
            }
        };
        let evaluator = AccuracyEvaluator::new(self.trials)
            .with_sampling(self.sampling)
            .with_ecc(self.ecc);
        let layers = net.weight_layer_indices().len();
        PreparedSweep {
            spec: self.clone(),
            evaluator,
            net,
            images,
            labels,
            layers,
        }
    }
}

/// A sweep with its network trained and its evaluator built, ready to run
/// point by point (the granularity a progress-streaming service needs).
#[derive(Debug)]
pub struct PreparedSweep {
    spec: SweepSpec,
    evaluator: AccuracyEvaluator,
    net: Network,
    images: Vec<f32>,
    labels: Vec<u8>,
    layers: usize,
}

impl PreparedSweep {
    /// The spec this sweep was prepared from.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Number of voltage grid points.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.spec.voltages_mv.len()
    }

    /// Test images evaluated per trial.
    #[must_use]
    pub fn samples_per_trial(&self) -> usize {
        self.labels.len()
    }

    /// Runs grid point `index`, deriving its seed from `(spec.seed, index)`
    /// so points are reproducible in isolation and in any order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run_point(&self, index: usize) -> (Volt, AccuracyStats) {
        self.run_point_observed(index, &dante_sim::NoopObserver)
    }

    /// [`Self::run_point`] with per-trial instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn run_point_observed(
        &self,
        index: usize,
        observer: &dyn TrialObserver,
    ) -> (Volt, AccuracyStats) {
        let mv = self.spec.voltages_mv[index];
        let v = Volt::from_millivolts(f64::from(mv));
        let stats = self.evaluator.evaluate_observed(
            &self.net,
            &VoltageAssignment::uniform(v, self.layers),
            &self.images,
            &self.labels,
            dante_sim::derive_seed(self.spec.seed, dante_sim::site::SWEEP_POINT, index as u64),
            observer,
        );
        (v, stats)
    }

    /// Runs every grid point in order.
    #[must_use]
    pub fn run(&self) -> Vec<(Volt, AccuracyStats)> {
        (0..self.point_count()).map(|i| self.run_point(i)).collect()
    }

    /// [`Self::run`] with per-trial instrumentation shared across points.
    #[must_use]
    pub fn run_observed(&self, observer: &dyn TrialObserver) -> Vec<(Volt, AccuracyStats)> {
        (0..self.point_count())
            .map(|i| self.run_point_observed(i, observer))
            .collect()
    }
}

/// The process-wide toy network and its dataset (trained once, lazily).
fn toy_net_and_data() -> &'static (Network, Vec<f32>, Vec<u8>) {
    static TOY: OnceLock<(Network, Vec<f32>, Vec<u8>)> = OnceLock::new();
    TOY.get_or_init(|| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(6, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 2, &mut rng)),
        ])
        .expect("toy network is well-formed");
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let c = (i % 2) as u8;
            let base = if c == 0 { 0.75 } else { 0.15 };
            for j in 0..6 {
                images.push(base + ((i + j) % 7) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 20,
            batch_size: 8,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_string_distinguishes_specs() {
        let a = SweepSpec::toy_default();
        let mut b = a.clone();
        assert_eq!(a.canonical_string(), b.canonical_string());
        b.seed ^= 1;
        assert_ne!(a.canonical_string(), b.canonical_string());
        let mut c = a.clone();
        c.sampling = OverlaySampling::Dense;
        assert_ne!(a.canonical_string(), c.canonical_string());
        let mut d = a.clone();
        d.voltages_mv.push(600);
        assert_ne!(a.canonical_string(), d.canonical_string());
    }

    #[test]
    fn validation_rejects_out_of_range_specs() {
        let ok = SweepSpec::toy_default();
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.voltages_mv.clear();
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.voltages_mv = vec![200];
        assert!(bad.validate().unwrap_err().contains("200"));
        let mut bad = ok.clone();
        bad.trials = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.network = NetworkSpec::MnistFc {
            train_n: 0,
            test_n: 10,
            epochs: 1,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn prepared_sweep_is_deterministic_and_order_independent() {
        let spec = SweepSpec {
            voltages_mv: vec![400, 520],
            trials: 3,
            ..SweepSpec::toy_default()
        };
        let prep = spec.prepare();
        let full = prep.run();
        assert_eq!(full.len(), 2);
        // Points rerun in isolation reproduce the full-run results.
        let p1 = prep.run_point(1);
        let p0 = prep.run_point(0);
        assert_eq!(full[0], p0);
        assert_eq!(full[1], p1);
        // A fresh preparation agrees bit-for-bit.
        assert_eq!(spec.prepare().run(), full);
        // Accuracy rises with voltage on the toy net.
        assert!(full[1].1.mean() >= full[0].1.mean());
    }

    #[test]
    #[should_panic(expected = "invalid sweep spec")]
    fn prepare_rejects_invalid_specs() {
        let mut spec = SweepSpec::toy_default();
        spec.trials = 0;
        let _ = spec.prepare();
    }
}
