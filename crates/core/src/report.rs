//! Energy reports for simulator runs: bridges the accelerator's measured
//! per-level access counts (its `MemoryStats`) into the paper's energy
//! equations, so a concrete execution — not just an analytic activity
//! model — can be costed under the three supply configurations.

use dante_accel::executor::Dante;
use dante_circuit::units::{Joule, Volt};
use dante_energy::supply::{BoostedGroup, EnergyModel};

/// Dynamic + leakage energy of one simulator run under the three supply
/// configurations (boosted as executed; single/dual at the run's highest
/// rail).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceEnergyReport {
    /// Supply voltage of the run.
    pub vdd: Volt,
    /// The highest rail any access used (the single/dual comparison rail).
    pub comparison_rail: Volt,
    /// Eq. 3 dynamic energy of the run as executed.
    pub boosted_dynamic: Joule,
    /// Eq. 2 dynamic energy with everything at the comparison rail.
    pub single_dynamic: Joule,
    /// Eq. 6 dynamic energy (memory at the rail, logic LDO'd to `vdd`).
    pub dual_dynamic: Joule,
    /// Eq. 4 leakage energy over the run's cycles.
    pub boosted_leakage: Joule,
    /// Dual-supply leakage over the run's cycles (Eq. 7).
    pub dual_leakage: Joule,
    /// Total SRAM accesses observed.
    pub sram_accesses: u64,
    /// MACs executed.
    pub macs: u64,
    /// Approximate cycles.
    pub cycles: u64,
}

impl InferenceEnergyReport {
    /// Builds a report from an accelerator's accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator has executed nothing (no accesses).
    #[must_use]
    pub fn from_run(dante: &Dante, model: &EnergyModel) -> Self {
        let vdd = dante.vdd();
        let weight = dante.weight_stats().accesses_per_level();
        let input = dante.input_stats().accesses_per_level();
        assert!(
            weight.iter().chain(&input).any(|&c| c > 0),
            "no accesses recorded; run a program first"
        );

        let mut groups: Vec<BoostedGroup> = Vec::new();
        let mut max_level = 0usize;
        for (level, count) in weight
            .iter()
            .zip(input.iter().chain(std::iter::repeat(&0)))
            .map(|(w, i)| w + i)
            .enumerate()
        {
            if count > 0 {
                groups.push(BoostedGroup {
                    accesses: count,
                    level,
                });
                max_level = max_level.max(level);
            }
        }
        let accesses: u64 = groups.iter().map(|g| g.accesses).sum();
        let macs = dante.stats().macs;
        let cycles = dante.stats().cycles;
        let rail = model.vddv(vdd, max_level);

        let per_cycle_boost = model.leakage_boosted_per_cycle(vdd);
        let per_cycle_dual = model.leakage_dual_per_cycle(rail, vdd);

        Self {
            vdd,
            comparison_rail: rail,
            boosted_dynamic: model.dynamic_boosted(vdd, &groups, macs),
            single_dynamic: model.dynamic_single(rail, accesses, macs),
            dual_dynamic: model.dynamic_dual(rail, vdd, accesses, macs),
            boosted_leakage: per_cycle_boost * cycles as f64,
            dual_leakage: per_cycle_dual * cycles as f64,
            sram_accesses: accesses,
            macs,
            cycles,
        }
    }

    /// Fractional dynamic savings of boosting vs. the dual-supply baseline.
    #[must_use]
    pub fn savings_vs_dual(&self) -> f64 {
        1.0 - self.boosted_dynamic.joules() / self.dual_dynamic.joules()
    }

    /// Fractional dynamic savings of boosting vs. the single-supply
    /// baseline at the comparison rail.
    #[must_use]
    pub fn savings_vs_single(&self) -> f64 {
        1.0 - self.boosted_dynamic.joules() / self.single_dynamic.joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_accel::chip::ChipConfig;
    use dante_accel::executor::BoostSchedule;
    use dante_accel::program::Program;
    use dante_nn::layers::{Dense, Layer, Relu};
    use dante_nn::network::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(level: usize, input_level: usize) -> Dante {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(16, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 4, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let program = Program::compile(&net, &calib).unwrap();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.40));
        let _ = dante.run(
            &program,
            &BoostSchedule::uniform(level, 2, input_level),
            &calib,
        );
        dante
    }

    #[test]
    fn report_reflects_run_statistics() {
        let dante = run_once(4, 1);
        let model = EnergyModel::dante_chip();
        let report = InferenceEnergyReport::from_run(&dante, &model);
        assert_eq!(report.macs, (16 * 12 + 12 * 4) as u64);
        assert_eq!(
            report.sram_accesses,
            dante.weight_stats().total() + dante.input_stats().total()
        );
        assert!(report.boosted_dynamic > Joule::ZERO);
        // The comparison rail is the level-4 rail at 0.40 V: ~0.60 V.
        assert!((report.comparison_rail.volts() - 0.6).abs() < 0.01);
    }

    #[test]
    fn boost_saves_vs_single_at_level4() {
        let report = InferenceEnergyReport::from_run(&run_once(4, 1), &EnergyModel::dante_chip());
        assert!(
            report.savings_vs_single() > 0.0,
            "got {}",
            report.savings_vs_single()
        );
        assert!(report.boosted_leakage < report.dual_leakage);
    }

    #[test]
    fn level_zero_run_matches_single_supply() {
        let report = InferenceEnergyReport::from_run(&run_once(0, 0), &EnergyModel::dante_chip());
        // With no boosting anywhere the comparison rail is Vdd itself and
        // the boosted energy equals the single-supply energy.
        assert!((report.comparison_rail.volts() - 0.40).abs() < 1e-9);
        let ratio = report.boosted_dynamic.joules() / report.single_dynamic.joules();
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "no accesses recorded")]
    fn empty_run_rejected() {
        let dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.4));
        let _ = InferenceEnergyReport::from_run(&dante, &EnergyModel::dante_chip());
    }
}
