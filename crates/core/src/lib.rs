//! # dante
//!
//! The facade crate of the *Dante* reproduction ("Resilient Low Voltage
//! Accelerators for High Energy Efficiency", HPCA 2019): accuracy and
//! energy experiments over the circuit/SRAM/NN/dataflow/energy/accelerator
//! substrates.
//!
//! * [`accuracy`] — Monte-Carlo fault-injection accuracy evaluation
//!   (Sec. 5.1 methodology).
//! * [`schedule`] — the Table 2 boost configurations and [`BoostPlan`].
//! * [`experiments`] — the Fig. 13 FC-DNN and Fig. 14/15 AlexNet analyses.
//! * [`policy`] — the application-aware boost-policy optimizer.
//! * [`report`] — energy reports for bit-accurate simulator runs.
//! * [`headlines`] — the abstract's headline numbers, recomputed.
//! * [`artifacts`] — disk-cached trained models for the heavy experiments.
//! * [`sweep`] — serializable sweep job specifications ([`sweep::SweepSpec`])
//!   with canonical content-addressing, the unit of work `dante-serve`
//!   queues and caches; every point is a joint (voltage, accuracy, energy)
//!   record under a configurable supply ([`sweep::SupplySpec`]).
//! * [`iso`] — iso-accuracy solves: `V_min` at an accuracy floor plus each
//!   supply configuration's energy there (the `/v1/iso-accuracy` endpoint).
//! * [`fleet`] — fleet-scale V_min/yield sweeps ([`fleet::FleetSpec`]): a
//!   population of dies under any `dante-sram` fault-model spec, reporting
//!   per-voltage yield and V_min distribution quantiles (the `/v1/fleet`
//!   endpoint).
//! * [`retrain`] — fault-aware retraining ([`retrain::RetrainSpec`]):
//!   straight-through-estimator fine-tuning under injected bit errors,
//!   scored by baseline-vs-hardened iso-accuracy solves (the
//!   `/v1/retrain` endpoint).
//!
//! # Examples
//!
//! Recompute the paper's headline savings:
//!
//! ```
//! let h = dante::headlines::compute();
//! assert!(h.alexnet_peak_savings_vs_dual > 0.2); // paper: "up to 26%"
//! assert!(h.booster_leakage_overhead < 0.08);    // paper: "only 6% overhead"
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod artifacts;
pub mod experiments;
pub mod fleet;
pub mod headlines;
pub mod iso;
pub mod policy;
pub mod report;
pub mod retrain;
pub mod schedule;
pub mod sweep;

pub use accuracy::{
    AccuracyEvaluator, AccuracyStats, EccMode, ForwardPath, OverlaySampling, VoltageAssignment,
};
pub use fleet::{DieOutcome, FleetResult, FleetSpec, FLEET_QUANTILES};
pub use headlines::Headlines;
pub use iso::{IsoAccuracyResult, IsoAccuracySpec, IsoConfigPoint};
pub use policy::{OptimizedPlan, PolicyOptimizer};
pub use report::InferenceEnergyReport;
pub use retrain::{EpochReport, HardenedNetwork, ResamplePolicy, RetrainEvent, RetrainSpec};
pub use schedule::{BoostPlan, NamedBoostConfig, INPUT_TARGET};
pub use sweep::{
    shard_ranges, GeometrySpec, NetworkSpec, PointEnergy, PreparedSweep, SupplySpec,
    SweepEnergyContext, SweepPoint, SweepSpec,
};
