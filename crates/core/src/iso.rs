//! Iso-accuracy supply comparison: solve for `V_min` at an accuracy floor
//! and report each supply configuration's energy there.
//!
//! This is the paper's Table-style comparison behind `dante-serve`'s
//! `GET /v1/iso-accuracy` endpoint and the `iso_accuracy` golden record:
//! fix an accuracy floor (a fraction of the network's fault-free accuracy),
//! find the lowest sweep voltage each supply configuration can ride while
//! still meeting the floor, and compare the per-inference energies at those
//! operating points.
//!
//! The three configurations are compared the way the paper does (Figs.
//! 13–14): the *boosted* configuration finds its own `V_min` (logic at
//! `V_min`, SRAM boosted to `Vddv(V_min, level)`), while the *dual-supply*
//! baseline is pinned to the same rails — memory at `V_h = Vddv`, logic at
//! `V_l = V_min` through the LDO — so the only difference is the booster
//! tax versus the LDO tax. Its accuracy is therefore identical to the
//! boosted point's (faults depend only on the memory rail). The
//! *single-supply* baseline finds its own (higher) `V_min` with both rails
//! shared.

use crate::accuracy::{EccMode, OverlaySampling};
use crate::sweep::{NetworkSpec, PointEnergy, SupplySpec, SweepSpec};
use dante_circuit::units::Volt;
use std::fmt::Write as _;

/// A complete, serializable description of one iso-accuracy solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoAccuracySpec {
    /// Root seed (shared by both underlying sweeps; each derives per-point
    /// seeds the same way a plain sweep does).
    pub seed: u64,
    /// Candidate logic-rail grid in millivolts.
    pub voltages_mv: Vec<u32>,
    /// Monte-Carlo fault dies per candidate voltage.
    pub trials: usize,
    /// Required accuracy as a fraction of the clean (fault-free) accuracy,
    /// in `(0, 1]`.
    pub floor: f64,
    /// Boost level of the boosted configuration (1..=4).
    pub level: usize,
    /// Overlay sampler.
    pub sampling: OverlaySampling,
    /// Error-protection mode.
    pub ecc: EccMode,
    /// Network under test.
    pub network: NetworkSpec,
}

impl IsoAccuracySpec {
    /// A fast default: the toy network, level-4 boost, 97% of clean.
    #[must_use]
    pub fn toy_default() -> Self {
        Self {
            seed: 0xDA17E,
            voltages_mv: (340..=600).step_by(20).collect(),
            trials: 4,
            floor: 0.97,
            level: 4,
            sampling: OverlaySampling::SparseTail,
            ecc: EccMode::None,
            network: NetworkSpec::Toy,
        }
    }

    /// The single-supply sweep this solve walks.
    #[must_use]
    pub fn single_sweep(&self) -> SweepSpec {
        self.sweep_with(SupplySpec::Single)
    }

    /// The boosted sweep this solve walks.
    #[must_use]
    pub fn boosted_sweep(&self) -> SweepSpec {
        self.sweep_with(SupplySpec::Boosted { level: self.level })
    }

    fn sweep_with(&self, supply: SupplySpec) -> SweepSpec {
        // Iso-accuracy solves compare supply configurations under the
        // paper's default fault statistics; both walked sweeps keep
        // their historical v1/v2 cache keys.
        self.sweep_with_fault(supply, dante_sram::model::FaultModel::default())
    }

    fn sweep_with_fault(
        &self,
        supply: SupplySpec,
        fault_model: dante_sram::model::FaultModel,
    ) -> SweepSpec {
        SweepSpec {
            seed: self.seed,
            voltages_mv: self.voltages_mv.clone(),
            trials: self.trials,
            sampling: self.sampling,
            ecc: self.ecc,
            network: self.network.clone(),
            supply,
            fault_model,
            geometry: crate::sweep::GeometrySpec::Calibrated,
        }
    }

    /// Validates the solve's bounds (including the underlying sweeps').
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.floor > 0.0 && self.floor <= 1.0) {
            return Err(format!(
                "floor = {} must be a fraction in (0, 1]",
                self.floor
            ));
        }
        if !(1..=4).contains(&self.level) {
            return Err(format!("level = {} outside 1..=4", self.level));
        }
        self.single_sweep().validate()?;
        self.boosted_sweep().validate()
    }

    /// The canonical flat encoding (content-address input for service-side
    /// caching). The floor is encoded by its exact bit pattern so no float
    /// formatting ambiguity can alias two different solves.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "dante.iso.v1;floor_bits={:016x};level={};base={}",
            self.floor.to_bits(),
            self.level,
            self.single_sweep().canonical_string(),
        );
        out
    }

    /// Runs the solve. Heavy: trains/loads the network once, then walks
    /// each configuration's sweep from the highest candidate voltage
    /// downward, stopping at the first point that misses the floor.
    ///
    /// `V_min` is therefore *the voltage below which accuracy first drops
    /// under the floor* — the paper's cliff-edge semantics — rather than
    /// the global minimum of a possibly non-monotonic pass/fail pattern.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn solve(&self) -> IsoAccuracyResult {
        self.solve_with(dante_sram::model::FaultModel::default(), None, None)
    }

    /// [`Self::solve`] under an explicit fault model, (optionally) a
    /// replacement network, and (optionally) an absolute accuracy target:
    /// the retraining subsystem's comparison path.
    ///
    /// The replacement network is evaluated through exactly the sweeps the
    /// spec's own network would walk — same seeds, same per-point dies,
    /// same test set — so a hardened-vs-baseline `V_min` gap measures the
    /// weights alone. `target_override` replaces the usual
    /// `floor * clean_accuracy` bar; the retraining comparison passes the
    /// *baseline* solve's target here so a hardened network cannot "win"
    /// merely by degrading its own clean accuracy (and thereby its floor).
    /// Note this entry point is *not* covered by the `dante.iso.v1` cache
    /// key (the overrides are not encoded there); callers that cache must
    /// build their own key, as `dante.retrain.v1` does.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`] or the replacement
    /// network's shape mismatches the spec's.
    #[must_use]
    pub fn solve_with(
        &self,
        fault_model: dante_sram::model::FaultModel,
        network: Option<&dante_nn::network::Network>,
        target_override: Option<f64>,
    ) -> IsoAccuracyResult {
        if let Err(why) = self.validate() {
            panic!("invalid iso-accuracy spec: {why}");
        }
        // Highest-to-lowest walk order over grid indices.
        let mut order: Vec<usize> = (0..self.voltages_mv.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.voltages_mv[i]));

        let prepare = |supply: SupplySpec| {
            let prep = self.sweep_with_fault(supply, fault_model).prepare();
            match network {
                Some(net) => prep.with_network(net.clone()),
                None => prep,
            }
        };
        let single_prep = prepare(SupplySpec::Single);
        let clean = single_prep.clean_accuracy();
        let target = target_override.unwrap_or(self.floor * clean);

        let solve_config = |prep: &crate::sweep::PreparedSweep| -> Option<IsoConfigPoint> {
            let mut best: Option<IsoConfigPoint> = None;
            for &i in &order {
                let point = prep.run_point(i);
                if point.stats.mean() < target {
                    break;
                }
                best = Some(IsoConfigPoint {
                    v_logic: point.vdd,
                    v_sram: point.v_sram,
                    accuracy_mean: point.stats.mean(),
                    energy: point.energy,
                });
            }
            best
        };

        let single = solve_config(&single_prep);
        let boosted_prep = prepare(SupplySpec::Boosted { level: self.level });
        let boosted = solve_config(&boosted_prep);

        // Dual baseline at the boosted operating point's rails: memory at
        // V_h = Vddv, logic at V_l = V_min through the LDO. Same memory
        // rail, same faults, same accuracy — only the tax differs. Energy
        // comes straight from the supply equations (no sweep needed; the
        // boosted walk already produced the accuracy).
        let dual = boosted.as_ref().map(|b| {
            let model = dante_energy::supply::EnergyModel::dante_chip();
            let activity = self.network.energy_activity();
            let (accesses, macs) = (activity.total_sram_accesses(), activity.total_macs());
            IsoConfigPoint {
                v_logic: b.v_logic,
                v_sram: b.v_sram,
                accuracy_mean: b.accuracy_mean,
                energy: PointEnergy {
                    dynamic: model.breakdown_dual(b.v_sram, b.v_logic, accesses, macs),
                    leakage_per_cycle: model.leakage_dual_per_cycle(b.v_sram, b.v_logic),
                    reference_0v5: model.reference_energy_at_0v5(accesses, macs),
                },
            }
        });

        let ratio = |a: &Option<IsoConfigPoint>, b: &Option<IsoConfigPoint>| match (a, b) {
            (Some(a), Some(b)) => {
                Some(a.energy.dynamic.total().joules() / b.energy.dynamic.total().joules())
            }
            _ => None,
        };
        let boosted_over_single = ratio(&boosted, &single);
        let boosted_over_dual = ratio(&boosted, &dual);

        IsoAccuracyResult {
            clean_accuracy: clean,
            target_accuracy: target,
            single,
            boosted,
            dual,
            boosted_over_single,
            boosted_over_dual,
        }
    }
}

/// One supply configuration's iso-accuracy operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoConfigPoint {
    /// The logic rail at `V_min`.
    pub v_logic: Volt,
    /// The SRAM rail at that operating point.
    pub v_sram: Volt,
    /// Mean Monte-Carlo accuracy there (>= the target by construction).
    pub accuracy_mean: f64,
    /// Per-inference energy attribution there.
    pub energy: PointEnergy,
}

/// The outcome of an iso-accuracy solve. A configuration that cannot meet
/// the floor anywhere on the grid reports `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoAccuracyResult {
    /// Fault-free accuracy of the network on its test set.
    pub clean_accuracy: f64,
    /// `floor * clean_accuracy`, the bar every configuration must clear.
    pub target_accuracy: f64,
    /// Single-supply operating point, if any grid voltage meets the floor.
    pub single: Option<IsoConfigPoint>,
    /// Boosted operating point.
    pub boosted: Option<IsoConfigPoint>,
    /// Dual-supply baseline pinned to the boosted point's rails.
    pub dual: Option<IsoConfigPoint>,
    /// Boosted dynamic energy over single-supply dynamic energy (< 1 means
    /// boosting wins); `None` unless both points exist.
    pub boosted_over_single: Option<f64>,
    /// Boosted dynamic energy over the dual baseline's.
    pub boosted_over_dual: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_solve_finds_lower_vmin_for_boosted() {
        let spec = IsoAccuracySpec {
            trials: 3,
            ..IsoAccuracySpec::toy_default()
        };
        let r = spec.solve();
        assert!(r.clean_accuracy > 0.9, "toy net trains well");
        let single = r.single.expect("single config meets the floor somewhere");
        let boosted = r.boosted.expect("boosted config meets the floor somewhere");
        // Boosting restores SRAM margin, so its logic rail can ride at or
        // below the single-supply V_min.
        assert!(boosted.v_logic <= single.v_logic);
        assert!(single.accuracy_mean >= r.target_accuracy);
        assert!(boosted.accuracy_mean >= r.target_accuracy);
        // The dual baseline shares the boosted memory rail and accuracy.
        let dual = r.dual.expect("dual follows the boosted point");
        assert_eq!(dual.accuracy_mean, boosted.accuracy_mean);
        assert_eq!(dual.v_logic, boosted.v_logic);
        assert!(dual.v_sram >= boosted.v_logic);
        // Ratios exist and the boosted-vs-dual one reflects the LDO tax
        // structure (booster pays per access, LDO per MAC).
        assert!(r.boosted_over_single.unwrap() > 0.0);
        assert!(r.boosted_over_dual.unwrap() > 0.0);
    }

    #[test]
    fn solve_is_deterministic() {
        let spec = IsoAccuracySpec {
            trials: 2,
            voltages_mv: vec![380, 440, 500, 560],
            ..IsoAccuracySpec::toy_default()
        };
        assert_eq!(spec.solve(), spec.solve());
    }

    #[test]
    fn canonical_string_distinguishes_floors_exactly() {
        let a = IsoAccuracySpec::toy_default();
        let mut b = a.clone();
        b.floor = 0.97 + 1e-12;
        assert_ne!(a.canonical_string(), b.canonical_string());
        assert!(a.canonical_string().starts_with("dante.iso.v1;"));
        assert!(a.canonical_string().contains("base=dante.sweep.v1;"));
    }

    #[test]
    fn validation_rejects_bad_floor_and_level() {
        let mut bad = IsoAccuracySpec::toy_default();
        bad.floor = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = IsoAccuracySpec::toy_default();
        bad.floor = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = IsoAccuracySpec::toy_default();
        bad.level = 0;
        assert!(bad.validate().is_err());
        let mut bad = IsoAccuracySpec::toy_default();
        bad.voltages_mv = vec![440, 440];
        assert!(bad.validate().unwrap_err().contains("duplicate"));
    }
}
