//! Fleet-scale V_min and yield sweeps: from single-chip point estimates to
//! die-population distributions.
//!
//! A datacenter operator deploying accelerators by the million cares about
//! the *distribution* of V_min across dies — "what fraction of parts works
//! at 0.55 V?" — not about one simulated chip. A [`FleetSpec`] simulates a
//! population of dies under any [`FaultModel`] spec: each die draws its
//! overlay (and, for chip-variation models, its own `(mu, sigma)` profile)
//! from a counter-derived seed, its V_min is the largest cell V_min on the
//! die, and the population yields the per-voltage yield curve and V_min
//! quantiles.
//!
//! Dies run on the shared [`TrialEngine`], one die per trial, so fleets are
//! bit-identical across thread counts and a progress observer sees each die
//! complete (the NDJSON streaming path of `dante-serve`).

use crate::sweep::GeometrySpec;
use dante_circuit::units::Volt;
use dante_sim::{derive_seed, site, NoopObserver, TrialEngine, TrialObserver};
use dante_sram::model::{CellFaultRate, FaultModel};
use dante_sram::sparse::SparseCell;
use dante_sram::yield_model::array_yield;
use std::fmt::Write as _;

/// Quantile levels every fleet result reports (nearest-rank).
pub const FLEET_QUANTILES: [f64; 7] = [0.01, 0.05, 0.25, 0.50, 0.75, 0.95, 0.99];

/// A complete, serializable description of one fleet-scale V_min/yield
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FleetSpec {
    /// Root seed; die `i` derives everything it samples from
    /// `derive_seed(seed, FLEET_DIE, i)`.
    pub seed: u64,
    /// Number of simulated dies in the population.
    pub dies: usize,
    /// SRAM cells per die.
    pub array_bits: usize,
    /// Voltage grid in millivolts, strictly increasing. The lowest point is
    /// the sampling floor: dies whose V_min falls at or below it are
    /// reported as censored.
    pub voltages_mv: Vec<u32>,
    /// The fault-model spec every die resolves against its own seed.
    pub fault_model: FaultModel,
    /// SRAM macro geometry the die's `array_bits` are organised as. The
    /// `Calibrated` default keeps the legacy `dante.fleet.v1` cache keys;
    /// a structural geometry moves the spec to the `v2` family and
    /// requires `array_bits` to tile the macro exactly.
    pub geometry: GeometrySpec,
}

impl FleetSpec {
    /// A fast default: a thousand 1 Mbit dies of the default Gaussian
    /// process over the yield wall.
    #[must_use]
    pub fn toy_default() -> Self {
        Self {
            seed: 0xF1EE7,
            dies: 1000,
            array_bits: 1 << 20,
            voltages_mv: (500..=640).step_by(10).collect(),
            fault_model: FaultModel::default(),
            geometry: GeometrySpec::Calibrated,
        }
    }

    /// Validates the spec's bounds, returning a human-readable reason on
    /// rejection.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.dies == 0 {
            return Err("dies must be at least 1".to_owned());
        }
        if self.dies > 100_000 {
            return Err(format!("dies = {} exceeds the 100000 cap", self.dies));
        }
        if self.array_bits < 64 {
            return Err(format!(
                "array_bits = {} below the 64-bit floor",
                self.array_bits
            ));
        }
        if self.array_bits > (1 << 28) {
            return Err(format!(
                "array_bits = {} exceeds the 2^28 cap",
                self.array_bits
            ));
        }
        if self.voltages_mv.is_empty() {
            return Err("voltages_mv must be non-empty".to_owned());
        }
        if self.voltages_mv.len() > 256 {
            return Err(format!(
                "voltages_mv has {} points; at most 256 allowed",
                self.voltages_mv.len()
            ));
        }
        for &mv in &self.voltages_mv {
            if !(310..=700).contains(&mv) {
                return Err(format!(
                    "voltage {mv} mV outside the supported 310..=700 mV range"
                ));
            }
        }
        if let Some(w) = self.voltages_mv.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "voltages_mv must be strictly increasing ({} then {})",
                w[0], w[1]
            ));
        }
        if let Err(why) = self.fault_model.validate() {
            return Err(format!("fault_model: {why}"));
        }
        if let Err(why) = self.geometry.validate() {
            return Err(format!("geometry: {why}"));
        }
        if let GeometrySpec::Structural(g) = self.geometry {
            if !self.array_bits.is_multiple_of(g.bits()) {
                return Err(format!(
                    "array_bits = {} does not tile the {}-bit macro geometry",
                    self.array_bits,
                    g.bits()
                ));
            }
        }
        // Bound the total sampling work: every die draws its
        // faulty-at-floor cells, so the expected population cell count is
        // dies * bits * BER(floor).
        let floor = Volt::from_millivolts(f64::from(self.voltages_mv[0]));
        let expected =
            self.dies as f64 * self.array_bits as f64 * self.fault_model.marginal_ber(floor);
        if expected > 2e7 {
            return Err(format!(
                "expected {expected:.2e} faulty cells across the fleet at the \
                 {floor} floor (cap 2e7); raise the lowest grid voltage or \
                 shrink the population"
            ));
        }
        Ok(())
    }

    /// The canonical flat encoding: the `dante.fleet.v1` family, with the
    /// fault-model token always present (the family is new, so there is no
    /// legacy encoding to preserve). A non-default [`GeometrySpec`] bumps
    /// the family to `dante.fleet.v2` and inserts a `geom=` token between
    /// `bits=` and `fault=`, so every pre-existing v1 key stays
    /// byte-identical. Equal specs — and only equal specs — produce equal
    /// strings.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        let version = if self.geometry.is_default() { 1 } else { 2 };
        let mut out = String::new();
        let _ = write!(
            out,
            "dante.fleet.v{version};seed={};dies={};bits={};",
            self.seed, self.dies, self.array_bits,
        );
        if let Some(tok) = self.geometry.canonical_token() {
            let _ = write!(out, "geom={tok};");
        }
        let _ = write!(out, "fault={};mv=", self.fault_model.canonical_token());
        for (i, mv) in self.voltages_mv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{mv}");
        }
        out
    }

    /// The closed-form single-die yield at `v` under this spec's marginal
    /// fault statistics — the analytic cross-check the Monte-Carlo yield
    /// curve is verified against.
    #[must_use]
    pub fn analytic_yield(&self, v: Volt) -> f64 {
        array_yield(&self.fault_model, v, self.array_bits as u64)
    }

    /// Runs the fleet: every die sampled, V_min extracted, population
    /// statistics assembled.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn solve(&self) -> FleetResult {
        self.solve_observed(&NoopObserver)
    }

    /// [`Self::solve`] with instrumentation: the observer sees each die
    /// complete and, via `on_fault_bits`, each die's faulty-at-floor cell
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`].
    #[must_use]
    pub fn solve_observed(&self, observer: &dyn TrialObserver) -> FleetResult {
        let dies = self.solve_die_range_observed(0, self.dies, observer);
        self.assemble(&dies)
    }

    /// Samples only the contiguous **global** die window `[die_offset,
    /// die_offset + die_count)` of the population — the shard unit of work.
    ///
    /// Die `die_offset + d` keeps the seed it has in a full run
    /// (`derive_seed(spec.seed, FLEET_DIE, global index)`), so
    /// concatenating the windows of any ordered partition of `0..dies` and
    /// feeding them to [`Self::assemble`] reproduces [`Self::solve`]
    /// bit-for-bit. The observer sees **local** die indices `0..die_count`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`] or the window is empty
    /// or extends past the population.
    #[must_use]
    pub fn solve_die_range_observed(
        &self,
        die_offset: usize,
        die_count: usize,
        observer: &dyn TrialObserver,
    ) -> Vec<DieOutcome> {
        if let Err(why) = self.validate() {
            panic!("invalid fleet spec: {why}");
        }
        assert!(die_count > 0, "die window must be non-empty");
        assert!(
            die_offset + die_count <= self.dies,
            "die window [{die_offset}, {}) exceeds {} dies",
            die_offset + die_count,
            self.dies
        );
        let floor = Volt::from_millivolts(f64::from(self.voltages_mv[0]));
        let floor_f32 = floor.volts() as f32;
        let engine = TrialEngine::from_env();
        // One die per trial. Reusing the overlay buffers per worker keeps
        // the hot path allocation-free, exactly like the accuracy
        // evaluator; die results are reassembled in die order by the
        // engine regardless of scheduling.
        engine.run_scratch_observed(
            die_count,
            observer,
            || (Vec::<u64>::new(), Vec::<SparseCell>::new()),
            |local_index, (indices, cells)| {
                // Seed by the global die index: the window is positional in
                // the full population.
                let die_index = die_offset + local_index;
                let die_seed = derive_seed(self.seed, site::FLEET_DIE, die_index as u64);
                let die = self.fault_model.resolve_die(die_seed);
                die.sample_cells_into(self.array_bits, floor, die_seed, indices, cells);
                observer.on_fault_bits(local_index, cells.len() as u64);
                // The die's V_min is its worst cell; a die with no faulty
                // cell at the floor is censored (V_min <= floor).
                let v_min = cells
                    .iter()
                    .map(|c| c.vmin)
                    .fold(f32::NEG_INFINITY, f32::max);
                if cells.is_empty() {
                    DieOutcome {
                        v_min: f64::from(floor_f32),
                        censored: true,
                        fault_cells: 0,
                    }
                } else {
                    DieOutcome {
                        v_min: f64::from(v_min),
                        censored: false,
                        fault_cells: cells.len() as u64,
                    }
                }
            },
        )
    }

    /// Assembles population statistics from per-die outcomes (all dies, in
    /// any order — the statistics are order-invariant except for the raw
    /// sort performed here).
    ///
    /// The statistics pipeline is byte-for-byte the single-process one:
    /// sort by `f64::total_cmp`, nearest-rank quantiles, and yield compared
    /// in exact f32 — so shard-merged outcomes reproduce [`Self::solve`]
    /// bit-identically.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `self.dies` outcomes are supplied.
    #[must_use]
    pub fn assemble(&self, dies: &[DieOutcome]) -> FleetResult {
        assert_eq!(
            dies.len(),
            self.dies,
            "assembly needs the entire population"
        );
        let censored_dies = dies.iter().filter(|d| d.censored).count();
        let total_fault_cells: u64 = dies.iter().map(|d| d.fault_cells).sum();
        let mut v_min_volts: Vec<f64> = dies.iter().map(|d| d.v_min).collect();
        v_min_volts.sort_unstable_by(f64::total_cmp);

        let quantiles = FLEET_QUANTILES
            .iter()
            .map(|&q| (q, nearest_rank(&v_min_volts, q)))
            .collect();
        // Yield at v: the fraction of dies whose every cell works at v,
        // i.e. whose V_min (worst cell) does not exceed v. Grid voltages
        // compare in exact f32, the precision V_mins were sampled at.
        let yield_at_voltage = self
            .voltages_mv
            .iter()
            .map(|&mv| {
                let v = Volt::from_millivolts(f64::from(mv)).volts() as f32;
                let working = dies
                    .iter()
                    .filter(|d| d.censored || d.v_min <= f64::from(v))
                    .count();
                (mv, working as f64 / dies.len() as f64)
            })
            .collect();

        FleetResult {
            dies: self.dies,
            censored_dies,
            total_fault_cells,
            v_min_volts,
            quantiles,
            yield_at_voltage,
        }
    }
}

/// One die's raw outcome — the shard-transferable unit a coordinator
/// merges via [`FleetSpec::assemble`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieOutcome {
    /// The die's V_min in volts (its worst cell; exactly the sampling
    /// floor for censored dies).
    pub v_min: f64,
    /// Whether the die had no faulty cell at the floor (V_min at or below
    /// the lowest grid voltage).
    pub censored: bool,
    /// Faulty-at-floor cells on this die.
    pub fault_cells: u64,
}

/// Population statistics of one fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Number of simulated dies.
    pub dies: usize,
    /// Dies with no faulty cell at the sampling floor: their V_min is at or
    /// below the lowest grid voltage and is reported as exactly the floor.
    pub censored_dies: usize,
    /// Total faulty-at-floor cells across the population.
    pub total_fault_cells: u64,
    /// Every die's V_min in volts, ascending (censored dies at the floor).
    pub v_min_volts: Vec<f64>,
    /// Nearest-rank V_min quantiles `(level, volts)` at [`FLEET_QUANTILES`].
    pub quantiles: Vec<(f64, f64)>,
    /// Fraction of working dies at each grid voltage `(millivolts, yield)`.
    pub yield_at_voltage: Vec<(u32, f64)>,
}

impl FleetResult {
    /// The population median V_min.
    ///
    /// # Panics
    ///
    /// Panics if the result holds no quantiles (impossible for solver
    /// output).
    #[must_use]
    pub fn median_v_min(&self) -> f64 {
        self.quantiles
            .iter()
            .find(|(q, _)| (*q - 0.5).abs() < 1e-12)
            .expect("solver always reports the median")
            .1
    }

    /// Yield at the given grid voltage, if it is on the grid.
    #[must_use]
    pub fn yield_at(&self, mv: u32) -> Option<f64> {
        self.yield_at_voltage
            .iter()
            .find(|(g, _)| *g == mv)
            .map(|(_, y)| *y)
    }
}

/// Nearest-rank quantile of an ascending-sorted sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetSpec {
        FleetSpec {
            seed: 0xF1EE7,
            dies: 200,
            array_bits: 1 << 18,
            voltages_mv: (500..=620).step_by(20).collect(),
            fault_model: FaultModel::default(),
            geometry: GeometrySpec::Calibrated,
        }
    }

    #[test]
    fn canonical_string_is_pinned_and_injective_in_every_field() {
        let spec = FleetSpec::toy_default();
        assert_eq!(
            spec.canonical_string(),
            "dante.fleet.v1;seed=990951;dies=1000;bits=1048576;\
             fault=gaussian.v1(mu=352,sigma=40,flip=500000);\
             mv=500,510,520,530,540,550,560,570,580,590,600,610,620,630,640"
        );
        let mut b = spec.clone();
        b.seed ^= 1;
        assert_ne!(spec.canonical_string(), b.canonical_string());
        let mut c = spec.clone();
        c.dies += 1;
        assert_ne!(spec.canonical_string(), c.canonical_string());
        let mut d = spec.clone();
        d.fault_model = FaultModel::chip_variation_default();
        assert_ne!(spec.canonical_string(), d.canonical_string());
    }

    #[test]
    fn structural_geometry_moves_the_key_to_v2_and_must_tile_the_array() {
        use dante_circuit::macro_model::MacroGeometry;
        let spec = FleetSpec {
            geometry: GeometrySpec::Structural(MacroGeometry::bank_64kbit()),
            ..FleetSpec::toy_default()
        };
        assert_eq!(
            spec.canonical_string(),
            "dante.fleet.v2;seed=990951;dies=1000;bits=1048576;\
             geom=struct(r=256,c=128,m=4,b=2);\
             fault=gaussian.v1(mu=352,sigma=40,flip=500000);\
             mv=500,510,520,530,540,550,560,570,580,590,600,610,620,630,640"
        );
        assert!(spec.validate().is_ok(), "1 Mbit tiles 16 x 64 Kbit banks");
        // A geometry that does not tile the array is rejected.
        let bad = FleetSpec {
            array_bits: (1 << 20) + 64,
            ..spec
        };
        assert!(bad.validate().unwrap_err().contains("tile"));
        // The default geometry never emits a geom token.
        assert!(!FleetSpec::toy_default()
            .canonical_string()
            .contains("geom="));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let ok = small_spec();
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.dies = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.voltages_mv = vec![520, 520];
        assert!(bad.validate().unwrap_err().contains("strictly increasing"));
        let mut bad = ok.clone();
        bad.voltages_mv = vec![560, 520];
        assert!(bad.validate().is_err());
        // A floor deep in the fault region blows the sampling-work cap.
        let mut bad = ok.clone();
        bad.dies = 100_000;
        bad.array_bits = 1 << 28;
        bad.voltages_mv = vec![340, 400];
        assert!(bad.validate().unwrap_err().contains("faulty cells"));
        let mut bad = ok;
        bad.fault_model = FaultModel::Gaussian {
            mu_mv: 100,
            sigma_mv: 40,
            flip_ppm: 500_000,
        };
        assert!(bad.validate().unwrap_err().contains("fault_model"));
    }

    #[test]
    fn sharded_die_windows_assemble_bit_identical_to_solve() {
        let spec = small_spec();
        let full = spec.solve();
        for shards in [1usize, 2, 3, 7] {
            let mut outcomes = Vec::new();
            for (offset, count) in crate::sweep::shard_ranges(spec.dies, shards) {
                outcomes.extend(spec.solve_die_range_observed(offset, count, &NoopObserver));
            }
            let merged = spec.assemble(&outcomes);
            let fb: Vec<u64> = full.v_min_volts.iter().map(|v| v.to_bits()).collect();
            let mb: Vec<u64> = merged.v_min_volts.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                fb, mb,
                "V_min distribution bit-identical at {shards} shards"
            );
            assert_eq!(full, merged);
        }
    }

    #[test]
    fn fleet_solve_is_deterministic() {
        let spec = small_spec();
        let a = spec.solve();
        let b = spec.solve();
        assert_eq!(a, b);
        assert_eq!(a.dies, 200);
        assert_eq!(a.v_min_volts.len(), 200);
    }

    #[test]
    fn yield_curve_is_monotone_and_anchored_by_the_vmin_distribution() {
        let r = small_spec().solve();
        for w in r.yield_at_voltage.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "yield must rise with voltage: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for q in r.quantiles.windows(2) {
            assert!(q[1].1 >= q[0].1, "quantiles must be non-decreasing");
        }
        // Yield at the top grid point = fraction of dies with V_min <= it.
        let top = *r.yield_at_voltage.last().unwrap();
        let frac = r
            .v_min_volts
            .iter()
            .filter(|&&v| v <= f64::from(top.0) / 1000.0 + 1e-9)
            .count() as f64
            / r.dies as f64;
        assert!((top.1 - frac).abs() < 1e-12);
    }

    #[test]
    fn gaussian_fleet_tracks_the_analytic_yield_curve() {
        // Monte-Carlo yield vs the closed-form die-survival probability:
        // within a few binomial standard errors at every grid point.
        let spec = FleetSpec {
            dies: 400,
            ..small_spec()
        };
        let r = spec.solve();
        for &(mv, y) in &r.yield_at_voltage {
            let p = spec.analytic_yield(Volt::from_millivolts(f64::from(mv)));
            let se = (p * (1.0 - p) / spec.dies as f64).sqrt();
            assert!(
                (y - p).abs() < 5.0 * se + 0.02,
                "at {mv} mV: empirical {y:.4} vs analytic {p:.4} (se {se:.4})"
            );
        }
    }

    #[test]
    fn chip_variation_widens_the_vmin_distribution() {
        let gauss = small_spec().solve();
        let chip = FleetSpec {
            fault_model: FaultModel::chip_variation_default(),
            ..small_spec()
        }
        .solve();
        let spread = |r: &FleetResult| {
            let hi = r.quantiles.iter().find(|(q, _)| *q == 0.95).unwrap().1;
            let lo = r.quantiles.iter().find(|(q, _)| *q == 0.05).unwrap().1;
            hi - lo
        };
        assert!(
            spread(&chip) > spread(&gauss),
            "die-to-die mu spread must widen the V_min distribution: \
             chip {:.4} vs gauss {:.4}",
            spread(&chip),
            spread(&gauss)
        );
    }

    #[test]
    fn observer_sees_every_die() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counter {
            dies: AtomicUsize,
            cells: AtomicUsize,
        }
        impl TrialObserver for Counter {
            fn on_trial_complete(&self, _i: usize, _e: std::time::Duration) {
                self.dies.fetch_add(1, Ordering::Relaxed);
            }
            fn on_fault_bits(&self, _i: usize, bits: u64) {
                self.cells.fetch_add(bits as usize, Ordering::Relaxed);
            }
        }
        let c = Counter::default();
        let spec = small_spec();
        let r = spec.solve_observed(&c);
        assert_eq!(c.dies.load(Ordering::Relaxed), spec.dies);
        assert_eq!(
            c.cells.load(Ordering::Relaxed) as u64,
            r.total_fault_cells,
            "per-die fault counts stream through the observer"
        );
    }

    #[test]
    fn nearest_rank_matches_the_definition() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&s, 0.5), 2.0);
        assert_eq!(nearest_rank(&s, 0.25), 1.0);
        assert_eq!(nearest_rank(&s, 0.75), 3.0);
        assert_eq!(nearest_rank(&s, 0.01), 1.0);
        assert_eq!(nearest_rank(&s, 0.99), 4.0);
    }

    #[test]
    #[should_panic(expected = "invalid fleet spec")]
    fn solve_rejects_invalid_specs() {
        let mut spec = small_spec();
        spec.dies = 0;
        let _ = spec.solve();
    }
}
