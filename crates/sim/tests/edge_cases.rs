//! Edge cases of the trial engine: environment-driven thread counts,
//! degenerate batch shapes (more workers than trials, zero trials), and the
//! observer-hook ordering contract.

use dante_sim::engine::THREADS_ENV;
use dante_sim::{TrialEngine, TrialObserver};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Everything observable about a batch, in arrival order.
#[derive(Debug, PartialEq, Eq, Clone)]
enum Event {
    Start(usize),
    Trial(usize),
    Done,
}

#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl TrialObserver for Recorder {
    fn on_batch_start(&self, total: usize) {
        self.events.lock().unwrap().push(Event::Start(total));
    }
    fn on_trial_complete(&self, index: usize, _elapsed: Duration) {
        self.events.lock().unwrap().push(Event::Trial(index));
    }
    fn on_batch_complete(&self, _elapsed: Duration) {
        self.events.lock().unwrap().push(Event::Done);
    }
}

/// All `DANTE_THREADS` environment cases live in one test function:
/// integration tests in a binary run concurrently, and `set_var` is
/// process-global, so splitting these up would race.
#[test]
fn threads_env_cases() {
    // Pinned to one worker: the engine reports exactly one and the results
    // still match a multi-threaded run (determinism is thread-count-free).
    std::env::set_var(THREADS_ENV, "1");
    let pinned = TrialEngine::from_env();
    assert_eq!(pinned.threads(), 1);
    let work = |i: usize| dante_sim::derive_seed(7, dante_sim::site::TRIAL, i as u64);
    assert_eq!(
        pinned.run(64, work),
        TrialEngine::with_threads(4).run(64, work)
    );

    // Absurdly large override is taken literally (the engine caps workers
    // at the trial count internally, so this stays cheap).
    std::env::set_var(THREADS_ENV, "10000");
    let wide = TrialEngine::from_env();
    assert_eq!(wide.threads(), 10_000);
    assert_eq!(wide.run(3, |i| i), vec![0, 1, 2]);

    // Invalid values are rejected with an error naming the variable — a
    // mistyped knob should fail loudly, not silently use all cores.
    for bad in ["0", "-4", "1.5", "lots", ""] {
        std::env::set_var(THREADS_ENV, bad);
        let err = TrialEngine::try_from_env().expect_err(&format!("{bad:?} must be rejected"));
        assert!(err.contains(THREADS_ENV), "{bad:?}: {err}");
    }
    std::env::remove_var(THREADS_ENV);
    assert!(TrialEngine::from_env().threads() >= 1);
}

#[test]
fn more_workers_than_trials_runs_each_trial_exactly_once() {
    let engine = TrialEngine::with_threads(64);
    let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
    let out = engine.run(5, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
        i * i
    });
    assert_eq!(out, vec![0, 1, 4, 9, 16]);
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "trial {i} ran more than once");
    }
}

#[test]
fn zero_trials_still_fires_the_batch_hooks() {
    for threads in [1, 8] {
        let obs = Recorder::default();
        let out: Vec<u32> = TrialEngine::with_threads(threads).run_observed(0, &obs, |_| {
            panic!("the trial closure must never run for an empty batch")
        });
        assert!(out.is_empty());
        let events = obs.events.into_inner().unwrap();
        assert_eq!(
            events,
            vec![Event::Start(0), Event::Done],
            "an empty batch still brackets itself for progress reporters"
        );
    }
}

#[test]
fn observer_hooks_are_ordered_and_complete() {
    let trials = 23;
    for threads in [1, 3, 16] {
        let obs = Recorder::default();
        let _ = TrialEngine::with_threads(threads).run_observed(trials, &obs, |i| i);
        let events = obs.events.into_inner().unwrap();
        assert_eq!(events.len(), trials + 2, "{threads} threads");
        assert_eq!(events[0], Event::Start(trials), "Start(n) must come first");
        assert_eq!(*events.last().unwrap(), Event::Done, "Done must come last");
        // The middle is exactly one completion per trial index, in *some*
        // order (worker interleaving is unspecified; coverage is not).
        let mut indices: Vec<usize> = events[1..=trials]
            .iter()
            .map(|e| match e {
                Event::Trial(i) => *i,
                other => panic!("unexpected event between Start and Done: {other:?}"),
            })
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..trials).collect::<Vec<_>>());
    }
}
