//! The parallel trial executor.
//!
//! [`TrialEngine::run`] fans `trials` independent closure invocations out
//! across a scoped worker pool and returns the results in trial order.
//! Because every trial derives its randomness from
//! [`crate::seed::derive_seed`] rather than a shared generator, the output
//! is bit-identical for any thread count — parallelism is purely a
//! wall-clock optimization.

use crate::observer::{NoopObserver, TrialObserver};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "DANTE_THREADS";

/// The trial executor: a thread count plus the fan-out logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialEngine {
    threads: usize,
}

impl Default for TrialEngine {
    fn default() -> Self {
        Self::from_env()
    }
}

impl TrialEngine {
    /// An engine with the environment-configured thread count:
    /// `DANTE_THREADS` if set to a positive integer, else
    /// `available_parallelism`.
    ///
    /// # Panics
    ///
    /// Panics if `DANTE_THREADS` is set to zero or a non-integer — a
    /// mistyped knob silently falling back to "all cores" is the kind of
    /// misconfiguration that only surfaces weeks later as a perf mystery,
    /// so it fails loudly instead. Long-running services should prefer
    /// [`Self::try_from_env`] and surface the error at startup.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(engine) => engine,
            Err(why) => panic!("{why}"),
        }
    }

    /// [`Self::from_env`] returning a descriptive error instead of
    /// panicking when `DANTE_THREADS` is set but invalid.
    ///
    /// # Errors
    ///
    /// Returns a message naming the variable, the rejected value, and the
    /// accepted range when the value is zero, non-numeric, or not unicode.
    pub fn try_from_env() -> Result<Self, String> {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => {
                    return Err(format!(
                        "{THREADS_ENV} must be a positive integer (got \"0\"); \
                         unset it to use all cores"
                    ))
                }
                Ok(n) => n,
                Err(_) => {
                    return Err(format!(
                        "{THREADS_ENV} must be a positive integer (got {raw:?}); \
                         unset it to use all cores"
                    ))
                }
            },
            Err(std::env::VarError::NotPresent) => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Err(std::env::VarError::NotUnicode(_)) => {
                return Err(format!("{THREADS_ENV} is set to a non-unicode value"))
            }
        };
        Ok(Self { threads })
    }

    /// An engine with an explicit thread count (the determinism tests pin
    /// this to compare 1-, 2-, and N-thread runs).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        Self { threads }
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` invocations of `trial` (passing each its trial index)
    /// and returns the results in index order.
    ///
    /// `trial` must be independent per index: it sees no shared mutable
    /// state and derives randomness from the index (via
    /// [`crate::seed::derive_seed`]). The engine guarantees the returned
    /// `Vec` is identical for any thread count.
    pub fn run<T, F>(&self, trials: usize, trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_observed(trials, &NoopObserver, trial)
    }

    /// [`Self::run`] with instrumentation: the observer sees batch
    /// start/end and per-trial completion times (from whichever worker ran
    /// the trial).
    pub fn run_observed<T, F>(
        &self,
        trials: usize,
        observer: &dyn TrialObserver,
        trial: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_scratch_observed(trials, observer, || (), |index, ()| trial(index))
    }

    /// [`Self::run`] with a per-worker scratch arena: `make_scratch` runs
    /// once on each worker thread, and every trial that worker executes
    /// receives `&mut` access to that worker's scratch. Monte-Carlo hot
    /// paths use this to reuse buffers across trials so steady-state
    /// execution allocates nothing; the scratch must not carry state that
    /// changes trial *results* (each trial still derives everything from
    /// its index), or determinism across thread counts is lost.
    pub fn run_scratch<T, S, M, F>(&self, trials: usize, make_scratch: M, trial: F) -> Vec<T>
    where
        T: Send,
        M: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        self.run_scratch_observed(trials, &NoopObserver, make_scratch, trial)
    }

    /// [`Self::run_scratch`] with instrumentation.
    pub fn run_scratch_observed<T, S, M, F>(
        &self,
        trials: usize,
        observer: &dyn TrialObserver,
        make_scratch: M,
        trial: F,
    ) -> Vec<T>
    where
        T: Send,
        M: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        let batch_start = Instant::now();
        observer.on_batch_start(trials);
        let workers = self.threads.min(trials).max(1);
        let mut results: Vec<(usize, T)> = if workers <= 1 {
            let mut scratch = make_scratch();
            (0..trials)
                .map(|index| {
                    let t0 = Instant::now();
                    let out = trial(index, &mut scratch);
                    observer.on_trial_complete(index, t0.elapsed());
                    (index, out)
                })
                .collect()
        } else {
            // Work-stealing by atomic counter: each worker pulls the next
            // unclaimed trial index, so stragglers never idle the pool.
            // The scratch is built *inside* each worker thread, so it
            // needs no `Send` bound and is never shared.
            let next = AtomicUsize::new(0);
            let trial = &trial;
            let make_scratch = &make_scratch;
            let next = &next;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut scratch = make_scratch();
                            let mut mine = Vec::new();
                            loop {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                if index >= trials {
                                    break;
                                }
                                let t0 = Instant::now();
                                let out = trial(index, &mut scratch);
                                observer.on_trial_complete(index, t0.elapsed());
                                mine.push((index, out));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("trial worker panicked"))
                    .collect()
            })
        };
        // Reassemble in trial order: determinism must not depend on which
        // worker finished first.
        results.sort_unstable_by_key(|(index, _)| *index);
        observer.on_batch_complete(batch_start.elapsed());
        results.into_iter().map(|(_, out)| out).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{derive_seed, site};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_trial_order() {
        let engine = TrialEngine::with_threads(4);
        let out = engine.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize| derive_seed(42, site::TRIAL, i as u64);
        let serial = TrialEngine::with_threads(1).run(257, work);
        for threads in [2, 3, 8] {
            let parallel = TrialEngine::with_threads(threads).run(257, work);
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn more_trials_than_threads_and_vice_versa() {
        let engine = TrialEngine::with_threads(8);
        assert_eq!(engine.run(3, |i| i), vec![0, 1, 2]);
        assert_eq!(engine.run(0, |i| i), Vec::<usize>::new());
        let one = TrialEngine::with_threads(1);
        assert_eq!(one.run(5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn observer_sees_every_trial() {
        struct Counter {
            completions: AtomicUsize,
            total: AtomicUsize,
            batches: AtomicUsize,
        }
        impl TrialObserver for Counter {
            fn on_batch_start(&self, total: usize) {
                self.total.store(total, Ordering::Relaxed);
            }
            fn on_trial_complete(&self, _index: usize, _elapsed: Duration) {
                self.completions.fetch_add(1, Ordering::Relaxed);
            }
            fn on_batch_complete(&self, _elapsed: Duration) {
                self.batches.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Counter {
            completions: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
        };
        let engine = TrialEngine::with_threads(3);
        let _ = engine.run_observed(17, &obs, |i| i);
        assert_eq!(obs.completions.load(Ordering::Relaxed), 17);
        assert_eq!(obs.total.load(Ordering::Relaxed), 17);
        assert_eq!(obs.batches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_run_actually_uses_multiple_threads() {
        // Record distinct thread ids; with 4 workers and 64 slow-ish trials
        // at least 2 must participate.
        let engine = TrialEngine::with_threads(4);
        let ids = engine.run(64, |_| {
            std::thread::sleep(Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() >= 2,
            "only {} thread(s) participated",
            distinct.len()
        );
    }

    #[test]
    fn fault_bit_hook_accumulates() {
        struct Bits(AtomicU64);
        impl TrialObserver for Bits {
            fn on_fault_bits(&self, _index: usize, bits: u64) {
                self.0.fetch_add(bits, Ordering::Relaxed);
            }
        }
        let obs = Bits(AtomicU64::new(0));
        let engine = TrialEngine::with_threads(2);
        let _ = engine.run_observed(10, &obs, |i| obs.on_fault_bits(i, i as u64));
        assert_eq!(obs.0.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn from_env_respects_override_and_rejects_garbage() {
        // Serialize env mutation within this test binary: this is the only
        // test that touches DANTE_THREADS.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(TrialEngine::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, " 4 ");
        assert_eq!(TrialEngine::from_env().threads(), 4, "whitespace trimmed");
        // Zero and non-numeric values are configuration errors, not silent
        // fallbacks.
        std::env::set_var(THREADS_ENV, "0");
        let err = TrialEngine::try_from_env().unwrap_err();
        assert!(err.contains(THREADS_ENV) && err.contains("\"0\""), "{err}");
        std::env::set_var(THREADS_ENV, "garbage");
        let err = TrialEngine::try_from_env().unwrap_err();
        assert!(err.contains("garbage"), "{err}");
        let panicked = std::panic::catch_unwind(TrialEngine::from_env).expect_err("must panic");
        let msg = panicked
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains(THREADS_ENV), "panic message was: {msg}");
        std::env::remove_var(THREADS_ENV);
        assert!(TrialEngine::from_env().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = TrialEngine::with_threads(0);
    }

    #[test]
    fn scratch_is_per_worker_and_reused_across_trials() {
        // Each worker's scratch counts the trials it ran; the per-worker
        // counts must sum to the total, and with one worker every trial
        // sees the same (incremented) scratch instance.
        let one = TrialEngine::with_threads(1);
        let counts = one.run_scratch(
            5,
            || 0usize,
            |_, seen| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts, vec![1, 2, 3, 4, 5], "one worker reuses one scratch");

        let makes = AtomicUsize::new(0);
        let four = TrialEngine::with_threads(4);
        let ran = four.run_scratch(
            64,
            || {
                makes.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |_, seen| {
                *seen += 1;
                1usize
            },
        );
        assert_eq!(ran.iter().sum::<usize>(), 64);
        assert!(
            makes.load(Ordering::Relaxed) <= 4,
            "at most one scratch per worker, got {}",
            makes.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn scratch_runs_match_plain_runs_for_pure_trials() {
        let work = |i: usize| derive_seed(7, site::TRIAL, i as u64);
        let plain = TrialEngine::with_threads(3).run(100, work);
        let scratched = TrialEngine::with_threads(3).run_scratch(100, || (), |i, ()| work(i));
        assert_eq!(plain, scratched);
    }
}
