//! # dante-sim
//!
//! The unified Monte-Carlo trial engine all repeated-trial consumers of the
//! Dante reproduction run on (accuracy evaluation, experiment drivers,
//! policy search, bench figure generators).
//!
//! Three pieces:
//!
//! * [`seed`] — counter-based deterministic seed derivation:
//!   `derive_seed(root, site, index)` replaces chained `rng.gen()` seeding,
//!   so any trial is reproducible in isolation and results are identical
//!   regardless of execution order or thread count.
//! * [`engine`] — [`TrialEngine`]: fans independent trials out across a
//!   scoped worker pool (`DANTE_THREADS` env override, default
//!   `available_parallelism`) and reassembles results in trial order.
//! * [`observer`] — [`TrialObserver`]: lightweight instrumentation hooks
//!   (trials completed, per-stage wall time, fault-bit counts) with a no-op
//!   default and a stderr progress reporter for long runs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod observer;
pub mod seed;

pub use engine::TrialEngine;
pub use observer::{EventObserver, NoopObserver, StderrProgress, TrialEvent, TrialObserver};
pub use seed::{derive_seed, site, SeedSequence};
