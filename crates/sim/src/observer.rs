//! Trial instrumentation hooks.
//!
//! The engine reports per-trial progress through a [`TrialObserver`]; the
//! default [`NoopObserver`] compiles away, and [`StderrProgress`] gives the
//! long-running examples and bench binaries a live progress line without
//! touching their stdout data output.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Instrumentation hooks for a batch of Monte-Carlo trials.
///
/// Implementations must be `Sync`: the engine invokes the hooks from worker
/// threads. All methods default to no-ops so observers implement only what
/// they need.
pub trait TrialObserver: Sync {
    /// A batch of `total` trials is starting.
    fn on_batch_start(&self, total: usize) {
        let _ = total;
    }

    /// Trial `index` finished in `elapsed` wall time.
    fn on_trial_complete(&self, index: usize, elapsed: Duration) {
        let _ = (index, elapsed);
    }

    /// A named stage of one trial took `elapsed` (e.g. `"corrupt"` /
    /// `"inference"`).
    fn on_stage(&self, stage: &'static str, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// Trial `index` injected `bits` flipped fault bits.
    fn on_fault_bits(&self, index: usize, bits: u64) {
        let _ = (index, bits);
    }

    /// The whole batch finished in `elapsed` wall time.
    fn on_batch_complete(&self, elapsed: Duration) {
        let _ = elapsed;
    }
}

/// The do-nothing default observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrialObserver for NoopObserver {}

/// A stderr progress reporter: one `\r`-rewritten line with completed/total
/// trials, throughput, and cumulative fault bits.
///
/// Data output stays on stdout, so piping figure tables to a file keeps
/// working while progress renders on the terminal.
#[derive(Debug)]
pub struct StderrProgress {
    label: &'static str,
    completed: AtomicUsize,
    total: AtomicUsize,
    fault_bits: AtomicU64,
    started_at: Instant,
}

impl StderrProgress {
    /// A progress reporter labelled `label` (printed before the counters).
    #[must_use]
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            fault_bits: AtomicU64::new(0),
            started_at: Instant::now(),
        }
    }

    /// Trials completed so far (across batches).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Total fault bits injected so far.
    #[must_use]
    pub fn fault_bits(&self) -> u64 {
        self.fault_bits.load(Ordering::Relaxed)
    }

    fn render(&self) {
        let done = self.completed.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let secs = self.started_at.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let bits = self.fault_bits.load(Ordering::Relaxed);
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{}: {done}/{total} trials ({rate:.1}/s, {bits} fault bits)   ",
            self.label
        );
        let _ = err.flush();
    }
}

impl TrialObserver for StderrProgress {
    fn on_batch_start(&self, total: usize) {
        self.total.fetch_add(total, Ordering::Relaxed);
        self.render();
    }

    fn on_trial_complete(&self, _index: usize, _elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.render();
    }

    fn on_fault_bits(&self, _index: usize, bits: u64) {
        self.fault_bits.fetch_add(bits, Ordering::Relaxed);
    }

    fn on_batch_complete(&self, _elapsed: Duration) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_all_hooks() {
        let obs = NoopObserver;
        obs.on_batch_start(10);
        obs.on_trial_complete(0, Duration::from_millis(1));
        obs.on_stage("corrupt", Duration::from_millis(1));
        obs.on_fault_bits(0, 42);
        obs.on_batch_complete(Duration::from_millis(10));
    }

    #[test]
    fn stderr_progress_counts() {
        let obs = StderrProgress::new("test");
        obs.on_batch_start(3);
        obs.on_trial_complete(0, Duration::ZERO);
        obs.on_trial_complete(1, Duration::ZERO);
        obs.on_fault_bits(0, 100);
        obs.on_fault_bits(1, 50);
        assert_eq!(obs.completed(), 2);
        assert_eq!(obs.fault_bits(), 150);
        obs.on_batch_complete(Duration::ZERO);
    }
}
