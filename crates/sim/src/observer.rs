//! Trial instrumentation hooks.
//!
//! The engine reports per-trial progress through a [`TrialObserver`]; the
//! default [`NoopObserver`] compiles away, [`StderrProgress`] gives the
//! long-running examples and bench binaries a live progress line without
//! touching their stdout data output, and [`EventObserver`] reifies the
//! hook calls as [`TrialEvent`] values for consumers that forward progress
//! across a boundary (`dante-serve` bridges it into HTTP chunked streams).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Instrumentation hooks for a batch of Monte-Carlo trials.
///
/// Implementations must be `Sync`: the engine invokes the hooks from worker
/// threads. All methods default to no-ops so observers implement only what
/// they need.
pub trait TrialObserver: Sync {
    /// A batch of `total` trials is starting.
    fn on_batch_start(&self, total: usize) {
        let _ = total;
    }

    /// Trial `index` finished in `elapsed` wall time.
    fn on_trial_complete(&self, index: usize, elapsed: Duration) {
        let _ = (index, elapsed);
    }

    /// A named stage of one trial took `elapsed` (e.g. `"corrupt"` /
    /// `"inference"`).
    fn on_stage(&self, stage: &'static str, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// Trial `index` injected `bits` flipped fault bits.
    fn on_fault_bits(&self, index: usize, bits: u64) {
        let _ = (index, bits);
    }

    /// The whole batch finished in `elapsed` wall time.
    fn on_batch_complete(&self, elapsed: Duration) {
        let _ = elapsed;
    }

    /// A scalar annotation attached to the batch by the caller — data the
    /// trial engine itself cannot know, such as the per-inference energy a
    /// sweep point attaches after its trials finish (`key` then names the
    /// quantity, e.g. `"dynamic_energy_j"`).
    fn on_annotation(&self, key: &'static str, value: f64) {
        let _ = (key, value);
    }
}

/// The do-nothing default observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrialObserver for NoopObserver {}

/// A stderr progress reporter: one `\r`-rewritten line with completed/total
/// trials, throughput, and cumulative fault bits.
///
/// Data output stays on stdout, so piping figure tables to a file keeps
/// working while progress renders on the terminal.
#[derive(Debug)]
pub struct StderrProgress {
    label: &'static str,
    completed: AtomicUsize,
    total: AtomicUsize,
    fault_bits: AtomicU64,
    started_at: Instant,
}

impl StderrProgress {
    /// A progress reporter labelled `label` (printed before the counters).
    #[must_use]
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            fault_bits: AtomicU64::new(0),
            started_at: Instant::now(),
        }
    }

    /// Trials completed so far (across batches).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Total fault bits injected so far.
    #[must_use]
    pub fn fault_bits(&self) -> u64 {
        self.fault_bits.load(Ordering::Relaxed)
    }

    fn render(&self) {
        let done = self.completed.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let secs = self.started_at.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let bits = self.fault_bits.load(Ordering::Relaxed);
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{}: {done}/{total} trials ({rate:.1}/s, {bits} fault bits)   ",
            self.label
        );
        let _ = err.flush();
    }
}

impl TrialObserver for StderrProgress {
    fn on_batch_start(&self, total: usize) {
        self.total.fetch_add(total, Ordering::Relaxed);
        self.render();
    }

    fn on_trial_complete(&self, _index: usize, _elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.render();
    }

    fn on_fault_bits(&self, _index: usize, bits: u64) {
        self.fault_bits.fetch_add(bits, Ordering::Relaxed);
    }

    fn on_batch_complete(&self, _elapsed: Duration) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
    }
}

/// One trial-engine instrumentation hook call, reified as data so it can
/// cross thread/process boundaries (channels, HTTP streams, logs).
///
/// Durations are carried as integral microseconds: events are meant to be
/// serialized, and microsecond wall-clock resolution is already generous
/// for Monte-Carlo trials. (`PartialEq` only: [`TrialEvent::Annotation`]
/// carries an `f64` payload.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialEvent {
    /// A batch of `total` trials is starting.
    BatchStart {
        /// Trials in the batch.
        total: usize,
    },
    /// Trial `index` finished.
    TrialComplete {
        /// Trial index within the batch.
        index: usize,
        /// Wall time in microseconds.
        micros: u64,
    },
    /// A named per-trial stage finished.
    Stage {
        /// Stage label (e.g. `"corrupt"`, `"inference"`).
        stage: &'static str,
        /// Wall time in microseconds.
        micros: u64,
    },
    /// Trial `index` injected `bits` flipped fault bits.
    FaultBits {
        /// Trial index within the batch.
        index: usize,
        /// Flipped bits that reached the data.
        bits: u64,
    },
    /// The whole batch finished.
    BatchComplete {
        /// Wall time in microseconds.
        micros: u64,
    },
    /// A caller-attached scalar annotation (see
    /// [`TrialObserver::on_annotation`]).
    Annotation {
        /// Name of the annotated quantity.
        key: &'static str,
        /// Its value.
        value: f64,
    },
}

/// Bridges [`TrialObserver`] hook calls into a caller-supplied sink
/// closure, one [`TrialEvent`] per call.
///
/// The closure must be `Sync` (workers invoke it concurrently); a typical
/// sink locks a queue, appends, and notifies a condvar. Construct with a
/// closure over whatever shared state the consumer needs:
///
/// ```
/// use dante_sim::{EventObserver, TrialEngine, TrialEvent};
/// use std::sync::Mutex;
/// let log = Mutex::new(Vec::new());
/// let obs = EventObserver::new(|e: TrialEvent| log.lock().unwrap().push(e));
/// TrialEngine::with_threads(2).run_observed(5, &obs, |i| i);
/// assert_eq!(
///     log.lock()
///         .unwrap()
///         .iter()
///         .filter(|e| matches!(e, TrialEvent::TrialComplete { .. }))
///         .count(),
///     5
/// );
/// ```
pub struct EventObserver<F: Fn(TrialEvent) + Sync> {
    sink: F,
}

impl<F: Fn(TrialEvent) + Sync> EventObserver<F> {
    /// An observer forwarding every hook call to `sink`.
    pub fn new(sink: F) -> Self {
        Self { sink }
    }
}

impl<F: Fn(TrialEvent) + Sync> std::fmt::Debug for EventObserver<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventObserver").finish_non_exhaustive()
    }
}

/// Saturating microsecond conversion (a trial will not run for 584 millennia).
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

impl<F: Fn(TrialEvent) + Sync> TrialObserver for EventObserver<F> {
    fn on_batch_start(&self, total: usize) {
        (self.sink)(TrialEvent::BatchStart { total });
    }

    fn on_trial_complete(&self, index: usize, elapsed: Duration) {
        (self.sink)(TrialEvent::TrialComplete {
            index,
            micros: micros(elapsed),
        });
    }

    fn on_stage(&self, stage: &'static str, elapsed: Duration) {
        (self.sink)(TrialEvent::Stage {
            stage,
            micros: micros(elapsed),
        });
    }

    fn on_fault_bits(&self, index: usize, bits: u64) {
        (self.sink)(TrialEvent::FaultBits { index, bits });
    }

    fn on_batch_complete(&self, elapsed: Duration) {
        (self.sink)(TrialEvent::BatchComplete {
            micros: micros(elapsed),
        });
    }

    fn on_annotation(&self, key: &'static str, value: f64) {
        (self.sink)(TrialEvent::Annotation { key, value });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_all_hooks() {
        let obs = NoopObserver;
        obs.on_batch_start(10);
        obs.on_trial_complete(0, Duration::from_millis(1));
        obs.on_stage("corrupt", Duration::from_millis(1));
        obs.on_fault_bits(0, 42);
        obs.on_batch_complete(Duration::from_millis(10));
    }

    #[test]
    fn event_observer_reifies_every_hook() {
        use std::sync::Mutex;
        let log: Mutex<Vec<TrialEvent>> = Mutex::new(Vec::new());
        let obs = EventObserver::new(|e| log.lock().unwrap().push(e));
        obs.on_batch_start(2);
        obs.on_trial_complete(0, Duration::from_micros(7));
        obs.on_stage("corrupt", Duration::from_micros(3));
        obs.on_fault_bits(0, 11);
        obs.on_batch_complete(Duration::from_micros(20));
        obs.on_annotation("dynamic_energy_j", 1.5e-6);
        assert_eq!(
            *log.lock().unwrap(),
            vec![
                TrialEvent::BatchStart { total: 2 },
                TrialEvent::TrialComplete {
                    index: 0,
                    micros: 7
                },
                TrialEvent::Stage {
                    stage: "corrupt",
                    micros: 3
                },
                TrialEvent::FaultBits { index: 0, bits: 11 },
                TrialEvent::BatchComplete { micros: 20 },
                TrialEvent::Annotation {
                    key: "dynamic_energy_j",
                    value: 1.5e-6
                },
            ]
        );
    }

    #[test]
    fn stderr_progress_counts() {
        let obs = StderrProgress::new("test");
        obs.on_batch_start(3);
        obs.on_trial_complete(0, Duration::ZERO);
        obs.on_trial_complete(1, Duration::ZERO);
        obs.on_fault_bits(0, 100);
        obs.on_fault_bits(1, 50);
        assert_eq!(obs.completed(), 2);
        assert_eq!(obs.fault_bits(), 150);
        obs.on_batch_complete(Duration::ZERO);
    }
}
