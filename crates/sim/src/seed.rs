//! Counter-based deterministic seed derivation.
//!
//! Every Monte-Carlo consumer derives the seed of a sub-task from `(root
//! seed, site, index)` instead of drawing it from a sequentially-chained
//! generator. The derivation is a SplitMix64-style bit mix: statistically
//! independent streams for distinct inputs, and — crucially — no ordering
//! dependence, so trials can run on any thread in any order and still
//! reproduce bit-identically.

/// Well-known derivation sites, so independent consumers never collide on
/// the same sub-stream of a root seed.
pub mod site {
    /// One Monte-Carlo trial (fault die) of an accuracy evaluation.
    pub const TRIAL: u64 = 0x01;
    /// One weight layer's fault overlay within a trial.
    pub const WEIGHT_LAYER: u64 = 0x02;
    /// The input/activation buffer's fault overlay within a trial.
    pub const INPUTS: u64 = 0x03;
    /// One voltage point of a sweep.
    pub const SWEEP_POINT: u64 = 0x04;
    /// One `(voltage, config)` cell of an experiment grid.
    pub const GRID_CELL: u64 = 0x05;
    /// ECC check-bit overlay accompanying a data overlay.
    pub const ECC_CHECK: u64 = 0x06;
    /// A plan-evaluation step of the boost-policy optimizer.
    pub const POLICY_STEP: u64 = 0x07;
    /// One differential accelerator-vs-reference verification trial.
    pub const DIFF_TRIAL: u64 = 0x08;
    /// One simulated die of a fleet-scale V_min/yield sweep.
    pub const FLEET_DIE: u64 = 0x09;
    /// A die's chip-to-chip variation profile (its `(mu, sigma)` draw from
    /// the hyper-distribution).
    pub const CHIP_PROFILE: u64 = 0x0A;
    /// The row/column burst stream of a correlated fault overlay, kept
    /// disjoint from the i.i.d. background stream of the same overlay seed.
    pub const FAULT_BURST: u64 = 0x0B;
    /// One fault-aware retraining epoch's overlay resample (the corruption
    /// die applied to the forward pass of that epoch).
    pub const RETRAIN_EPOCH: u64 = 0x0C;
}

/// SplitMix64 finalizer: a bijective avalanche mix of 64 bits.
#[inline]
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of sub-task `index` at derivation `site` from `root`.
///
/// Properties:
/// * deterministic — a pure function of its three inputs;
/// * order-free — no hidden state, so callers may derive seeds in any
///   order from any thread;
/// * well-mixed — distinct `(site, index)` pairs land in statistically
///   independent streams even for adjacent indices (SplitMix64 avalanche).
#[inline]
#[must_use]
pub fn derive_seed(root: u64, site: u64, index: u64) -> u64 {
    // Weyl-sequence offsets keep (site, index) injective before mixing; the
    // constant tweak moves the all-zero input off the finalizer's fixed
    // point; two mix rounds separate even adjacent counters completely.
    let a = mix(root ^ 0xA076_1D64_78BD_642F ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix(a ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// A root seed plus its derivation helpers — the value experiment code
/// threads around instead of a stateful generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Wraps a root seed.
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The seed of sub-task `index` at derivation `site`.
    #[must_use]
    pub fn derive(&self, site: u64, index: u64) -> u64 {
        derive_seed(self.root, site, index)
    }

    /// A child sequence rooted at `derive(site, index)` — for nested
    /// derivations (e.g. per-trial, then per-layer within the trial).
    #[must_use]
    pub fn child(&self, site: u64, index: u64) -> Self {
        Self {
            root: self.derive(site, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure() {
        assert_eq!(
            derive_seed(1, site::TRIAL, 7),
            derive_seed(1, site::TRIAL, 7)
        );
    }

    #[test]
    fn distinct_inputs_give_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        for root in 0..4u64 {
            for s in [
                site::TRIAL,
                site::WEIGHT_LAYER,
                site::INPUTS,
                site::SWEEP_POINT,
            ] {
                for index in 0..64u64 {
                    assert!(
                        seen.insert(derive_seed(root, s, index)),
                        "collision at root={root} site={s} index={index}"
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_indices_differ_in_many_bits() {
        // Avalanche sanity: consecutive counters should flip ~32 bits.
        let mut total = 0u32;
        let n = 1000u64;
        for i in 0..n {
            total +=
                (derive_seed(9, site::TRIAL, i) ^ derive_seed(9, site::TRIAL, i + 1)).count_ones();
        }
        let avg = f64::from(total) / n as f64;
        assert!((24.0..40.0).contains(&avg), "average flipped bits {avg}");
    }

    #[test]
    fn child_sequences_compose() {
        let seq = SeedSequence::new(123);
        let trial = seq.child(site::TRIAL, 5);
        assert_eq!(trial.root(), seq.derive(site::TRIAL, 5));
        assert_eq!(
            trial.derive(site::WEIGHT_LAYER, 2),
            derive_seed(derive_seed(123, site::TRIAL, 5), site::WEIGHT_LAYER, 2)
        );
    }

    #[test]
    fn zero_root_is_not_degenerate() {
        let a = derive_seed(0, 0, 0);
        let b = derive_seed(0, 0, 1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
