//! Property tests for the NN substrate.

use dante_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
use dante_nn::network::Network;
use dante_nn::quant::{QFormat, ScaledQuantizer};
use dante_nn::tensor::{argmax, softmax_batch, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Matmul distributes over scalar scaling and matches the transpose
    /// identity (A B)^T = B^T A^T.
    #[test]
    fn matmul_transpose_identity(
        a_data in finite_vec(6),
        b_data in finite_vec(8),
    ) {
        let a = Matrix::from_vec(2, 3, a_data);
        let b = Matrix::from_vec(3, 2, b_data.into_iter().take(6).collect());
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    /// Softmax outputs are a probability distribution and order-preserving.
    #[test]
    fn softmax_distribution(logits in finite_vec(12)) {
        let s = softmax_batch(&logits, 3, 4);
        for b in 0..3 {
            let row = &s[b * 4..(b + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let l_row = &logits[b * 4..(b + 1) * 4];
            prop_assert_eq!(argmax(row), argmax(l_row));
        }
    }

    /// ReLU is idempotent and its backward zeroes exactly the clamped lanes.
    #[test]
    fn relu_properties(x in finite_vec(16)) {
        let r = Relu::new(16);
        let y = r.forward(&x);
        prop_assert_eq!(r.forward(&y), y.clone());
        let dy = vec![1.0f32; 16];
        let dx = r.backward(&x, &dy);
        for (i, &xi) in x.iter().enumerate() {
            prop_assert_eq!(dx[i], if xi > 0.0 { 1.0 } else { 0.0 });
        }
    }

    /// Dense forward is linear: f(a x) = a f(x) when bias is zero.
    #[test]
    fn dense_linearity(x in finite_vec(5), scale in 0.1f32..4.0) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(5, 3, &mut rng);
        for b in d.bias_mut() { *b = 0.0; }
        let y1 = d.forward(&x, 1);
        let scaled: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = d.forward(&scaled, 1);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    /// Convolution of a constant image with zero padding=0 is constant.
    #[test]
    fn conv_shift_invariance(value in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::new(Shape3::new(1, 6, 6), 2, 3, 0, &mut rng);
        let x = vec![value; 36];
        let y = conv.forward(&x, 1);
        let out = conv.out_shape();
        for c in 0..out.c {
            let plane = &y[c * out.h * out.w..(c + 1) * out.h * out.w];
            for &p in plane {
                prop_assert!((p - plane[0]).abs() < 1e-4, "interior must be uniform");
            }
        }
    }

    /// Max pooling never invents values: every output equals some input.
    #[test]
    fn pool_selects_inputs(x in finite_vec(16)) {
        let pool = MaxPool2d::new(Shape3::new(1, 4, 4));
        let y = pool.forward(&x, 1);
        for &v in &y {
            prop_assert!(x.contains(&v));
        }
    }

    /// Scaled quantization error is bounded by half a step, and the bound
    /// tightens with more bits.
    #[test]
    fn quant_error_bounds(values in prop::collection::vec(-5.0f32..5.0, 1..64)) {
        let q8 = ScaledQuantizer::new(8, 2).quantize(&values);
        let q16 = ScaledQuantizer::new(16, 2).quantize(&values);
        for ((&v, &b8), &b16) in values
            .iter()
            .zip(&q8.to_f32())
            .zip(&q16.to_f32())
        {
            prop_assert!((v - b8).abs() <= q8.scale() * 0.5 + 1e-6);
            prop_assert!((v - b16).abs() <= q16.scale() * 0.5 + 1e-6);
        }
        prop_assert!(q16.scale() < q8.scale());
    }

    /// Absolute-format quantization saturates instead of wrapping.
    #[test]
    fn qformat_saturation(v in -100.0f32..100.0) {
        let q = QFormat::weight_q2_14();
        let back = q.dequantize(q.quantize(v));
        prop_assert!(back <= q.max_value() + 1e-6);
        prop_assert!(back >= q.min_value() - 1e-6);
    }

    /// Network serialization round-trips arbitrary dense stacks.
    #[test]
    fn network_bytes_roundtrip(seed in 0u64..500, hidden in 1usize..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(7, hidden, &mut rng)),
            Layer::Relu(Relu::new(hidden)),
            Layer::Dense(Dense::new(hidden, 3, &mut rng)),
        ]).expect("valid shapes");
        let back = Network::from_bytes(&net.to_bytes()).expect("roundtrip");
        prop_assert_eq!(net, back);
    }
}
