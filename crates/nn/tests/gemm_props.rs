//! Property wall for the exact GEMM kernels in `dante_nn::gemm`.
//!
//! The trial-batched evaluator's bit-identity claim rests on these kernels
//! being *exact* rewrites: the register-tiled float path must reproduce
//! `Matrix::matmul` bitwise for every shape (including the NR-column and
//! 4/2/1-row remainder tiles), the blocked integer path must reproduce the
//! naive reduction for every blocking, and the requantizing epilogue must
//! round and saturate correctly at `i32`/`i64` extremes. Shapes, blockings,
//! and values are drawn adversarially here rather than enumerated.

use dante_nn::gemm::{
    dense_cols_into, dot_i16, gemm_i32_blocked_into, gemm_i32_naive, matmul_exact_into,
    round_shift_saturate,
};
use dante_nn::tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked i32 GEMM equals the naive reduction for arbitrary shapes and
    /// block sizes — including blocks larger than the matrix and remainder
    /// tiles — even with accumulator wrap-around at i32 extremes.
    #[test]
    fn blocked_gemm_matches_naive_for_any_blocking(
        m in 1usize..=9, k in 1usize..=11, n in 1usize..=10,
        mb in 1usize..=13, kb in 1usize..=13, nb in 1usize..=13,
        a_data in prop::collection::vec(any::<i32>(), 99..=99),
        b_data in prop::collection::vec(any::<i32>(), 110..=110),
    ) {
        let mut a = a_data[..m * k].to_vec();
        let mut b = b_data[..k * n].to_vec();
        // Plant extremes so saturating products and wrap-around paths run.
        a[0] = i32::MAX;
        b[0] = i32::MIN;
        if a.len() > 1 { a[1] = i32::MIN; }
        if b.len() > 1 { b[1] = i32::MAX; }
        let want = gemm_i32_naive(&a, &b, m, k, n);
        let mut got = vec![0i64; m * n];
        gemm_i32_blocked_into(&a, &b, m, k, n, (mb, kb, nb), &mut got);
        prop_assert_eq!(got, want, "m={} k={} n={} blocks=({},{},{})", m, k, n, mb, kb, nb);
    }

    /// The register-tiled float GEMM is a bitwise rewrite of
    /// `Matrix::matmul` for every shape, crossing the NR-column tile
    /// boundary and every row-remainder path.
    #[test]
    fn tiled_float_gemm_matches_matrix_matmul_bitwise(
        m in 1usize..=6, k in 1usize..=18, n in 1usize..=150,
        a_data in prop::collection::vec(-8.0f32..8.0, 108..=108),
        b_data in prop::collection::vec(-8.0f32..8.0, 2700..=2700),
    ) {
        let mut a = a_data[..m * k].to_vec();
        let b = b_data[..k * n].to_vec();
        // Zero activations exercise the remainder rows' skip path, which
        // must stay bit-identical (finite weights: 0.0 * w adds ±0.0).
        for v in a.iter_mut().step_by(3) { *v = 0.0; }
        let want = Matrix::from_vec(m, k, a.clone()).matmul(&Matrix::from_vec(k, n, b.clone()));
        let mut got = vec![0.0f32; m * n];
        matmul_exact_into(&a, &b, m, k, n, &mut got);
        let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(gb, wb, "m={} k={} n={}", m, k, n);
    }

    /// Column-sliced dense recomputation rewrites exactly the selected
    /// columns of the full (matmul + bias) result, bitwise, and touches
    /// nothing else.
    #[test]
    fn dense_cols_rewrite_selected_columns_bitwise(
        m in 1usize..=10, k in 1usize..=12, n in 1usize..=20,
        col_mask in any::<u32>(),
        a_data in prop::collection::vec(-4.0f32..4.0, 120..=120),
        w_data in prop::collection::vec(-4.0f32..4.0, 240..=240),
        bias_data in prop::collection::vec(-2.0f32..2.0, 20..=20),
    ) {
        let a = &a_data[..m * k];
        let w = &w_data[..k * n];
        let bias = &bias_data[..n];
        let cols: Vec<usize> = (0..n).filter(|j| col_mask >> (j % 32) & 1 == 1).collect();

        // The full reference: tiled matmul plus bias rows.
        let mut want = vec![0.0f32; m * n];
        matmul_exact_into(a, w, m, k, n, &mut want);
        for row in want.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bias) { *o += bv; }
        }

        // Clobber the selected columns, then ask the kernel to restore them.
        let mut got = want.clone();
        for row in got.chunks_exact_mut(n) {
            for &j in &cols { row[j] = f32::NAN; }
        }
        let mut col_buf = Vec::new();
        dense_cols_into(a, w, bias, m, k, n, &cols, &mut col_buf, &mut got);
        let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(gb, wb, "m={} k={} n={} cols={:?}", m, k, n, cols);
    }

    /// The lane-split i16 dot product equals the sequential fold exactly
    /// (i64 addition is associative), for every length remainder.
    #[test]
    fn lane_split_dot_matches_sequential_fold(
        len in 0usize..=37,
        acc in -(1i64 << 40)..(1i64 << 40),
        w_data in prop::collection::vec(any::<i16>(), 37..=37),
        x_data in prop::collection::vec(any::<i16>(), 37..=37),
    ) {
        let w = &w_data[..len];
        let x = &x_data[..len];
        let want = w.iter().zip(x).fold(acc, |s, (&wv, &xv)| {
            s + i64::from(wv) * i64::from(xv)
        });
        prop_assert_eq!(dot_i16(acc, w, x), want);
    }

    /// The requantizing epilogue rounds half away from zero and saturates,
    /// verified against an independent magnitude-based formulation across
    /// the full i64 accumulator and i32 multiplier ranges.
    #[test]
    fn round_shift_saturate_matches_wide_reference(
        acc in any::<i64>(),
        multiplier in any::<i32>(),
        shift in 0u32..=62,
    ) {
        let prod = i128::from(acc) * i128::from(multiplier);
        let bias = (1u128 << shift) >> 1;
        #[allow(clippy::cast_possible_truncation)]
        let mag = ((prod.unsigned_abs() + bias) >> shift) as i128;
        let want = if prod < 0 { -mag } else { mag }
            .clamp(i128::from(i16::MIN), i128::from(i16::MAX)) as i16;
        prop_assert_eq!(round_shift_saturate(acc, multiplier, shift), want);
    }
}

#[test]
fn empty_shapes_are_consistent() {
    // Zero-sized dimensions: both integer paths agree on the empty result.
    for (m, k, n) in [(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0)] {
        let a = vec![1i32; m * k];
        let b = vec![1i32; k * n];
        let want = gemm_i32_naive(&a, &b, m, k, n);
        let mut got = vec![0i64; m * n];
        gemm_i32_blocked_into(&a, &b, m, k, n, (4, 4, 4), &mut got);
        assert_eq!(got, want, "({m},{k},{n})");
    }
    assert_eq!(dot_i16(42, &[], &[]), 42);
}

#[test]
fn requantization_saturates_at_the_extremes() {
    assert_eq!(round_shift_saturate(i64::MAX, i32::MAX, 0), i16::MAX);
    assert_eq!(round_shift_saturate(i64::MIN, i32::MAX, 0), i16::MIN);
    assert_eq!(round_shift_saturate(i64::MIN, i32::MIN, 0), i16::MAX);
    assert_eq!(round_shift_saturate(1, 1, 1), 1); // 0.5 rounds away from zero
    assert_eq!(round_shift_saturate(-1, 1, 1), -1);
    assert_eq!(round_shift_saturate(0, i32::MAX, 62), 0);
}
