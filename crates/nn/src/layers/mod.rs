//! Network layers: dense, convolution, pooling, and activation.

pub mod conv;
pub mod dense;

pub use conv::{Conv2d, MaxPool2d, Shape3};
pub use dense::Dense;

use crate::tensor::Matrix;

/// Rectified linear unit over a fixed-length activation vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Relu {
    len: usize,
}

impl Relu {
    /// Creates a ReLU over activations of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "relu length must be positive");
        Self { len }
    }

    /// Activation length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// ReLU is never zero-length; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    /// Backward pass: gradient passes where the *input* was positive.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn backward(&self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), dy.len(), "relu gradient length mismatch");
        x.iter()
            .zip(dy)
            .map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 })
            .collect()
    }
}

/// Per-layer data cached by the training forward pass.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerCache {
    /// No extra state beyond the layer input.
    None,
    /// Max-pool winner indices.
    PoolIndices(Vec<u32>),
}

/// Parameter gradients of one layer (empty for parameter-free layers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamGrads {
    /// Weight gradient, flattened in the layer's own layout.
    pub weights: Vec<f32>,
    /// Bias gradient.
    pub bias: Vec<f32>,
}

/// A network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// Element-wise ReLU.
    Relu(Relu),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// 2x2 max pooling.
    MaxPool2d(MaxPool2d),
}

impl Layer {
    /// Input activation length per sample.
    #[must_use]
    pub fn in_len(&self) -> usize {
        match self {
            Self::Dense(d) => d.in_features(),
            Self::Relu(r) => r.len(),
            Self::Conv2d(c) => c.in_shape().len(),
            Self::MaxPool2d(p) => p.in_shape().len(),
        }
    }

    /// Output activation length per sample.
    #[must_use]
    pub fn out_len(&self) -> usize {
        match self {
            Self::Dense(d) => d.out_features(),
            Self::Relu(r) => r.len(),
            Self::Conv2d(c) => c.out_shape().len(),
            Self::MaxPool2d(p) => p.out_shape().len(),
        }
    }

    /// Whether the layer carries trainable parameters.
    #[must_use]
    pub fn has_parameters(&self) -> bool {
        matches!(self, Self::Dense(_) | Self::Conv2d(_))
    }

    /// Number of weight parameters (0 for parameter-free layers).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        match self {
            Self::Dense(d) => d.in_features() * d.out_features(),
            Self::Conv2d(c) => c.weights().len(),
            _ => 0,
        }
    }

    /// Multiply-accumulate operations per sample (0 for non-compute layers).
    #[must_use]
    pub fn macs_per_sample(&self) -> u64 {
        match self {
            Self::Dense(d) => (d.in_features() * d.out_features()) as u64,
            Self::Conv2d(c) => c.macs_per_sample(),
            _ => 0,
        }
    }

    /// Inference-only forward pass.
    #[must_use]
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        match self {
            Self::Dense(d) => d.forward(x, batch),
            Self::Relu(r) => r.forward(x),
            Self::Conv2d(c) => c.forward(x, batch),
            Self::MaxPool2d(p) => p.forward(x, batch),
        }
    }

    /// Training forward pass, returning the output and any cache the
    /// backward pass needs.
    #[must_use]
    pub fn forward_train(&self, x: &[f32], batch: usize) -> (Vec<f32>, LayerCache) {
        match self {
            Self::MaxPool2d(p) => {
                let (y, idx) = p.forward_with_indices(x, batch);
                (y, LayerCache::PoolIndices(idx))
            }
            other => (other.forward(x, batch), LayerCache::None),
        }
    }

    /// Backward pass: returns the input gradient and, for parameterized
    /// layers, the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not match the layer kind.
    #[must_use]
    pub fn backward(
        &self,
        x: &[f32],
        cache: &LayerCache,
        dy: &[f32],
        batch: usize,
    ) -> (Vec<f32>, Option<ParamGrads>) {
        match self {
            Self::Dense(d) => {
                let (dx, dw, db) = d.backward(x, dy, batch);
                (
                    dx,
                    Some(ParamGrads {
                        weights: dw.into_vec(),
                        bias: db,
                    }),
                )
            }
            Self::Relu(r) => (r.backward(x, dy), None),
            Self::Conv2d(c) => {
                let (dx, dw, db) = c.backward(x, dy, batch);
                (
                    dx,
                    Some(ParamGrads {
                        weights: dw,
                        bias: db,
                    }),
                )
            }
            Self::MaxPool2d(p) => {
                let LayerCache::PoolIndices(idx) = cache else {
                    panic!("max-pool backward requires pool indices in the cache");
                };
                (p.backward(idx, dy, batch), None)
            }
        }
    }

    /// Applies a parameter update (no-op for parameter-free layers).
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes mismatch the layer.
    pub fn apply_update(&mut self, grads: &ParamGrads, lr: f32) {
        match self {
            Self::Dense(d) => {
                let dw = Matrix::from_vec(d.in_features(), d.out_features(), grads.weights.clone());
                d.apply_update(&dw, &grads.bias, lr);
            }
            Self::Conv2d(c) => c.apply_update(&grads.weights, &grads.bias, lr),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_clamps_negatives_and_routes_gradient() {
        let r = Relu::new(4);
        let x = [-1.0, 0.0, 2.0, -0.5];
        assert_eq!(r.forward(&x), vec![0.0, 0.0, 2.0, 0.0]);
        let dx = r.backward(&x, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(dx, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn layer_lengths_chain_consistently() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng));
        let pool = Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8)));
        let dense = Layer::Dense(Dense::new(4 * 16, 10, &mut rng));
        assert_eq!(conv.out_len(), pool.in_len());
        assert_eq!(pool.out_len(), dense.in_len());
        assert_eq!(dense.out_len(), 10);
    }

    #[test]
    fn parameter_introspection() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Layer::Dense(Dense::new(5, 3, &mut rng));
        assert!(d.has_parameters());
        assert_eq!(d.weight_count(), 15);
        assert_eq!(d.macs_per_sample(), 15);
        let r = Layer::Relu(Relu::new(8));
        assert!(!r.has_parameters());
        assert_eq!(r.weight_count(), 0);
    }

    #[test]
    fn forward_train_matches_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Layer::Dense(Dense::new(4, 2, &mut rng));
        let x = [0.5, -0.5, 1.0, 0.0];
        let (y_train, cache) = layer.forward_train(&x, 1);
        assert_eq!(y_train, layer.forward(&x, 1));
        assert_eq!(cache, LayerCache::None);
    }

    #[test]
    #[should_panic(expected = "requires pool indices")]
    fn pool_backward_requires_cache() {
        let pool = Layer::MaxPool2d(MaxPool2d::new(Shape3::new(1, 2, 2)));
        let _ = pool.backward(&[0.0; 4], &LayerCache::None, &[0.0], 1);
    }
}
