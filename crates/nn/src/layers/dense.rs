//! Fully-connected (dense) layer.

use crate::tensor::Matrix;
use rand::Rng;

/// A fully-connected layer: `y = x W + b` with `W` of shape
/// `[in_features x out_features]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dimensions must be positive"
        );
        let scale = (2.0 / in_features as f32).sqrt();
        let data = (0..in_features * out_features)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            weights: Matrix::from_vec(in_features, out_features, data),
            bias: vec![0.0; out_features],
        }
    }

    /// Creates a dense layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.cols()`.
    #[must_use]
    pub fn from_parameters(weights: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(
            bias.len(),
            weights.cols(),
            "bias length must match output width"
        );
        Self { weights, bias }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.weights.rows()
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix (`in x out`).
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable weight matrix (used by quantization/fault overlay).
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector.
    #[must_use]
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Forward pass over a batch (`x` is `batch x in`, returns `batch x out`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `in_features`.
    #[must_use]
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(x.len(), batch * self.in_features(), "input length mismatch");
        let xm = Matrix::from_vec(batch, self.in_features(), x.to_vec());
        let mut y = xm.matmul(&self.weights).into_vec();
        let out = self.out_features();
        for b in 0..batch {
            for (o, &bias) in y[b * out..(b + 1) * out].iter_mut().zip(&self.bias) {
                *o += bias;
            }
        }
        y
    }

    /// Backward pass: given the batch input `x` and upstream gradient `dy`,
    /// returns `(dx, dw, db)`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent lengths.
    #[must_use]
    pub fn backward(&self, x: &[f32], dy: &[f32], batch: usize) -> (Vec<f32>, Matrix, Vec<f32>) {
        let (inf, out) = (self.in_features(), self.out_features());
        assert_eq!(x.len(), batch * inf, "input length mismatch");
        assert_eq!(dy.len(), batch * out, "gradient length mismatch");

        let xm = Matrix::from_vec(batch, inf, x.to_vec());
        let dym = Matrix::from_vec(batch, out, dy.to_vec());

        // dX = dY * W^T (matmul_transposed multiplies by the transpose of
        // its argument, and W is stored [in x out]).
        let dx = dym.matmul_transposed(&self.weights).into_vec();
        // dW = X^T * dY
        let dw = xm.transpose().matmul(&dym);
        // db = column sums of dY
        let mut db = vec![0.0f32; out];
        for b in 0..batch {
            for (d, &g) in db.iter_mut().zip(&dy[b * out..(b + 1) * out]) {
                *d += g;
            }
        }
        (dx, dw, db)
    }

    /// Applies a parameter update: `W -= lr * dw`, `b -= lr * db`.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes mismatch.
    pub fn apply_update(&mut self, dw: &Matrix, db: &[f32], lr: f32) {
        self.weights.add_scaled(dw, -lr);
        assert_eq!(db.len(), self.bias.len(), "bias gradient length mismatch");
        for (b, &g) in self.bias.iter_mut().zip(db) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dense {
        Dense::from_parameters(
            Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 2.0, 1.0]),
            vec![0.1, -0.1, 0.0],
        )
    }

    #[test]
    fn forward_computes_xw_plus_b() {
        let d = tiny();
        let y = d.forward(&[1.0, 2.0], 1);
        // y = [1*1+2*0.5, 1*0+2*2, 1*-1+2*1] + b = [2.0, 4.0, 1.0] + [0.1,-0.1,0]
        assert_eq!(y, vec![2.1, 3.9, 1.0]);
    }

    #[test]
    fn forward_handles_batches_independently() {
        let d = tiny();
        let y = d.forward(&[1.0, 2.0, 0.0, 0.0], 2);
        assert_eq!(&y[..3], &[2.1, 3.9, 1.0]);
        assert_eq!(&y[3..], &[0.1, -0.1, 0.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index perturbs and reads in lockstep
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Dense::new(4, 3, &mut rng);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.3).collect();
        let batch = 2;

        // Loss = sum(y^2)/2 so dy = y.
        let y = d.forward(&x, batch);
        let dy = y.clone();
        let (dx, dw, db) = d.backward(&x, &dy, batch);

        let loss =
            |d: &Dense, x: &[f32]| -> f32 { d.forward(x, batch).iter().map(|v| v * v * 0.5).sum() };
        let eps = 1e-2f32;

        // Check dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&d, &xp) - loss(&d, &xm)) / (2.0 * eps);
            assert!(
                (num - dx[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{i}]: numerical {num} vs analytic {}",
                dx[i]
            );
        }

        // Check a few weight gradients numerically.
        for (r, c) in [(0, 0), (1, 2), (3, 1)] {
            let mut dp = d.clone();
            let w = dp.weights().get(r, c);
            dp.weights_mut().set(r, c, w + eps);
            let lp = loss(&dp, &x);
            dp.weights_mut().set(r, c, w - eps);
            let lm = loss(&dp, &x);
            let num = (lp - lm) / (2.0 * eps);
            let ana = dw.get(r, c);
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dw[{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }

        // Check bias gradient numerically.
        for i in 0..3 {
            let mut dp = d.clone();
            dp.bias_mut()[i] += eps;
            let lp = loss(&dp, &x);
            dp.bias_mut()[i] -= 2.0 * eps;
            let lm = loss(&dp, &x);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - db[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "db[{i}]: numerical {num} vs analytic {}",
                db[i]
            );
        }
    }

    #[test]
    fn apply_update_moves_against_gradient() {
        let mut d = tiny();
        let dw = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let db = vec![1.0; 3];
        let w00 = d.weights().get(0, 0);
        let b0 = d.bias()[0];
        d.apply_update(&dw, &db, 0.1);
        assert!((d.weights().get(0, 0) - (w00 - 0.1)).abs() < 1e-6);
        assert!((d.bias()[0] - (b0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn he_init_scale_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dense::new(100, 50, &mut rng);
        let norm = d.weights().frobenius_norm();
        let expected = (100.0f32 * 50.0 * (2.0 / 100.0) / 3.0).sqrt(); // uniform variance = scale^2/3
        assert!(
            (norm / expected) > 0.7 && (norm / expected) < 1.4,
            "norm {norm} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn forward_validates_input_length() {
        let _ = tiny().forward(&[1.0], 1);
    }
}
