//! 2-D convolution and max-pooling layers.
//!
//! Activations are laid out `[channel][row][col]` per sample, flattened, and
//! batches are concatenated sample-major — the layout an accelerator's
//! input memory would hold.

use rand::Rng;

/// Spatial shape of an activation volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "shape dimensions must be positive");
        Self { c, h, w }
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Shapes are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A 2-D convolution layer (stride 1) with symmetric zero padding.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    in_shape: Shape3,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    /// Weights `[out_c][in_c][kh][kw]`, flattened.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a conv layer with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is zero-sized, larger than the padded input, or
    /// `out_channels == 0`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_shape: Shape3,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(out_channels > 0, "need at least one output channel");
        assert!(kernel > 0, "kernel must be non-empty");
        assert!(
            kernel <= in_shape.h + 2 * padding && kernel <= in_shape.w + 2 * padding,
            "kernel larger than padded input"
        );
        let fan_in = in_shape.c * kernel * kernel;
        let scale = (2.0 / fan_in as f32).sqrt();
        let weights = (0..out_channels * fan_in)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            in_shape,
            out_channels,
            kernel,
            padding,
            weights,
            bias: vec![0.0; out_channels],
        }
    }

    /// Creates a conv layer from explicit parameters (deserialization,
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if the parameter lengths do not match the geometry.
    #[must_use]
    pub fn from_parameters(
        in_shape: Shape3,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            out_channels * in_shape.c * kernel * kernel,
            "weight length does not match geometry"
        );
        assert_eq!(
            bias.len(),
            out_channels,
            "bias length does not match channels"
        );
        assert!(
            kernel > 0 && kernel <= in_shape.h + 2 * padding && kernel <= in_shape.w + 2 * padding,
            "kernel incompatible with padded input"
        );
        Self {
            in_shape,
            out_channels,
            kernel,
            padding,
            weights,
            bias,
        }
    }

    /// Input shape.
    #[must_use]
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// Symmetric zero padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output shape (stride 1).
    #[must_use]
    pub fn out_shape(&self) -> Shape3 {
        Shape3::new(
            self.out_channels,
            self.in_shape.h + 2 * self.padding - self.kernel + 1,
            self.in_shape.w + 2 * self.padding - self.kernel + 1,
        )
    }

    /// Kernel side length.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The flattened weights `[out_c][in_c][kh][kw]`.
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable weights (quantization / fault overlay).
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// The bias vector (one per output channel).
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias.
    #[must_use]
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Number of multiply-accumulate operations per sample.
    #[must_use]
    pub fn macs_per_sample(&self) -> u64 {
        let out = self.out_shape();
        (out.len() * self.in_shape.c * self.kernel * self.kernel) as u64
    }

    fn w_at(&self, oc: usize, ic: usize, kr: usize, kc: usize) -> f32 {
        let k = self.kernel;
        self.weights[((oc * self.in_shape.c + ic) * k + kr) * k + kc]
    }

    /// Forward pass over a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * in_shape.len()`.
    #[must_use]
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        let isz = self.in_shape.len();
        assert_eq!(x.len(), batch * isz, "conv input length mismatch");
        let out = self.out_shape();
        let (ih, iw) = (self.in_shape.h, self.in_shape.w);
        let mut y = vec![0.0f32; batch * out.len()];
        for b in 0..batch {
            let xin = &x[b * isz..(b + 1) * isz];
            let yout = &mut y[b * out.len()..(b + 1) * out.len()];
            for oc in 0..out.c {
                for orow in 0..out.h {
                    for ocol in 0..out.w {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_shape.c {
                            for kr in 0..self.kernel {
                                let ir = orow + kr;
                                if ir < self.padding || ir - self.padding >= ih {
                                    continue;
                                }
                                let ir = ir - self.padding;
                                for kc in 0..self.kernel {
                                    let icw = ocol + kc;
                                    if icw < self.padding || icw - self.padding >= iw {
                                        continue;
                                    }
                                    let icw = icw - self.padding;
                                    acc +=
                                        self.w_at(oc, ic, kr, kc) * xin[(ic * ih + ir) * iw + icw];
                                }
                            }
                        }
                        yout[(oc * out.h + orow) * out.w + ocol] = acc;
                    }
                }
            }
        }
        y
    }

    /// Backward pass: returns `(dx, dw, db)`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent lengths.
    #[must_use]
    pub fn backward(&self, x: &[f32], dy: &[f32], batch: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let isz = self.in_shape.len();
        let out = self.out_shape();
        assert_eq!(x.len(), batch * isz, "conv input length mismatch");
        assert_eq!(dy.len(), batch * out.len(), "conv gradient length mismatch");
        let (ih, iw) = (self.in_shape.h, self.in_shape.w);
        let mut dx = vec![0.0f32; x.len()];
        let mut dw = vec![0.0f32; self.weights.len()];
        let mut db = vec![0.0f32; self.bias.len()];
        let k = self.kernel;
        for b in 0..batch {
            let xin = &x[b * isz..(b + 1) * isz];
            let dxo = &mut dx[b * isz..(b + 1) * isz];
            let dyo = &dy[b * out.len()..(b + 1) * out.len()];
            for oc in 0..out.c {
                for orow in 0..out.h {
                    for ocol in 0..out.w {
                        let g = dyo[(oc * out.h + orow) * out.w + ocol];
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        for ic in 0..self.in_shape.c {
                            for kr in 0..k {
                                let ir = orow + kr;
                                if ir < self.padding || ir - self.padding >= ih {
                                    continue;
                                }
                                let ir = ir - self.padding;
                                for kc in 0..k {
                                    let icw = ocol + kc;
                                    if icw < self.padding || icw - self.padding >= iw {
                                        continue;
                                    }
                                    let icw = icw - self.padding;
                                    let xi = (ic * ih + ir) * iw + icw;
                                    let wi = ((oc * self.in_shape.c + ic) * k + kr) * k + kc;
                                    dw[wi] += g * xin[xi];
                                    dxo[xi] += g * self.weights[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        (dx, dw, db)
    }

    /// Applies a parameter update.
    ///
    /// # Panics
    ///
    /// Panics if gradient lengths mismatch.
    pub fn apply_update(&mut self, dw: &[f32], db: &[f32], lr: f32) {
        assert_eq!(
            dw.len(),
            self.weights.len(),
            "weight gradient length mismatch"
        );
        assert_eq!(db.len(), self.bias.len(), "bias gradient length mismatch");
        for (w, &g) in self.weights.iter_mut().zip(dw) {
            *w -= lr * g;
        }
        for (b, &g) in self.bias.iter_mut().zip(db) {
            *b -= lr * g;
        }
    }
}

/// 2x2 max pooling with stride 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    in_shape: Shape3,
}

impl MaxPool2d {
    /// Creates a 2x2/stride-2 pool over the given input shape.
    ///
    /// # Panics
    ///
    /// Panics if height or width is not even (keeps the model simple; pad
    /// upstream if needed).
    #[must_use]
    pub fn new(in_shape: Shape3) -> Self {
        assert!(
            in_shape.h.is_multiple_of(2) && in_shape.w.is_multiple_of(2),
            "maxpool2d requires even spatial dimensions, got {}x{}",
            in_shape.h,
            in_shape.w
        );
        Self { in_shape }
    }

    /// Input shape.
    #[must_use]
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// Output shape.
    #[must_use]
    pub fn out_shape(&self) -> Shape3 {
        Shape3::new(self.in_shape.c, self.in_shape.h / 2, self.in_shape.w / 2)
    }

    /// Forward pass; also returns the winning input index for each output
    /// element (needed by the backward pass).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * in_shape.len()`.
    #[must_use]
    pub fn forward_with_indices(&self, x: &[f32], batch: usize) -> (Vec<f32>, Vec<u32>) {
        let isz = self.in_shape.len();
        assert_eq!(x.len(), batch * isz, "pool input length mismatch");
        let out = self.out_shape();
        let (ih, iw) = (self.in_shape.h, self.in_shape.w);
        let mut y = vec![0.0f32; batch * out.len()];
        let mut idx = vec![0u32; batch * out.len()];
        for b in 0..batch {
            let xin = &x[b * isz..(b + 1) * isz];
            for c in 0..out.c {
                for orow in 0..out.h {
                    for ocol in 0..out.w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for dr in 0..2 {
                            for dc in 0..2 {
                                let i = (c * ih + orow * 2 + dr) * iw + ocol * 2 + dc;
                                if xin[i] > best {
                                    best = xin[i];
                                    best_i = i;
                                }
                            }
                        }
                        let o = b * out.len() + (c * out.h + orow) * out.w + ocol;
                        y[o] = best;
                        idx[o] = u32::try_from(best_i).expect("pool index fits in u32");
                    }
                }
            }
        }
        (y, idx)
    }

    /// Forward pass discarding indices.
    #[must_use]
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        self.forward_with_indices(x, batch).0
    }

    /// Backward pass using the indices recorded by
    /// [`Self::forward_with_indices`].
    ///
    /// # Panics
    ///
    /// Panics on inconsistent lengths.
    #[must_use]
    pub fn backward(&self, indices: &[u32], dy: &[f32], batch: usize) -> Vec<f32> {
        let out = self.out_shape();
        assert_eq!(dy.len(), batch * out.len(), "pool gradient length mismatch");
        assert_eq!(indices.len(), dy.len(), "pool index length mismatch");
        let isz = self.in_shape.len();
        let mut dx = vec![0.0f32; batch * isz];
        for b in 0..batch {
            for o in 0..out.len() {
                let flat = b * out.len() + o;
                dx[b * isz + indices[flat] as usize] += dy[flat];
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 and zero padding is the identity.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(Shape3::new(1, 3, 3), 1, 1, 0, &mut rng);
        conv.weights_mut()[0] = 1.0;
        conv.bias_mut()[0] = 0.0;
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(conv.forward(&x, 1), x);
    }

    #[test]
    fn conv_known_3x3_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(Shape3::new(1, 4, 4), 1, 3, 0, &mut rng);
        for w in conv.weights_mut() {
            *w = 1.0;
        }
        conv.bias_mut()[0] = 0.0;
        let x = vec![1.0f32; 16];
        let y = conv.forward(&x, 1);
        assert_eq!(conv.out_shape(), Shape3::new(1, 2, 2));
        assert!(y.iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn conv_padding_preserves_spatial_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(Shape3::new(2, 8, 8), 4, 3, 1, &mut rng);
        assert_eq!(conv.out_shape(), Shape3::new(4, 8, 8));
        let x = vec![0.5f32; 2 * 64];
        assert_eq!(conv.forward(&x, 1).len(), 4 * 64);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index perturbs and reads in lockstep
    fn conv_backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new(Shape3::new(2, 4, 4), 3, 3, 1, &mut rng);
        let x: Vec<f32> = (0..32).map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.6).collect();
        let y = conv.forward(&x, 1);
        let dy = y.clone(); // loss = sum(y^2)/2
        let (dx, dw, db) = conv.backward(&x, &dy, 1);

        let loss =
            |c: &Conv2d, x: &[f32]| -> f32 { c.forward(x, 1).iter().map(|v| v * v * 0.5).sum() };
        let eps = 1e-2f32;

        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            assert!(
                (num - dx[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{i}]: {num} vs {}",
                dx[i]
            );
        }
        for i in (0..conv.weights().len()).step_by(11) {
            let mut cp = conv.clone();
            cp.weights_mut()[i] += eps;
            let lp = loss(&cp, &x);
            cp.weights_mut()[i] -= 2.0 * eps;
            let lm = loss(&cp, &x);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dw[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dw[{i}]: {num} vs {}",
                dw[i]
            );
        }
        for i in 0..db.len() {
            let mut cp = conv.clone();
            cp.bias_mut()[i] += eps;
            let lp = loss(&cp, &x);
            cp.bias_mut()[i] -= 2.0 * eps;
            let lm = loss(&cp, &x);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - db[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "db[{i}]: {num} vs {}",
                db[i]
            );
        }
    }

    #[test]
    fn conv_macs_per_sample_counts_kernel_volume() {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::new(Shape3::new(3, 8, 8), 16, 3, 1, &mut rng);
        assert_eq!(conv.macs_per_sample(), (16 * 8 * 8 * 3 * 9) as u64);
    }

    #[test]
    fn maxpool_selects_maximum_and_routes_gradient() {
        let pool = MaxPool2d::new(Shape3::new(1, 2, 2));
        let x = vec![1.0, 5.0, 3.0, 2.0];
        let (y, idx) = pool.forward_with_indices(&x, 1);
        assert_eq!(y, vec![5.0]);
        assert_eq!(idx, vec![1]);
        let dx = pool.backward(&idx, &[2.0], 1);
        assert_eq!(dx, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_halves_spatial_dims() {
        let pool = MaxPool2d::new(Shape3::new(4, 8, 6));
        assert_eq!(pool.out_shape(), Shape3::new(4, 4, 3));
        let x = vec![0.0f32; 4 * 48 * 2];
        assert_eq!(pool.forward(&x, 2).len(), 4 * 12 * 2);
    }

    #[test]
    #[should_panic(expected = "even spatial dimensions")]
    fn maxpool_rejects_odd_dims() {
        let _ = MaxPool2d::new(Shape3::new(1, 3, 4));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn conv_validates_input() {
        let mut rng = StdRng::seed_from_u64(6);
        let conv = Conv2d::new(Shape3::new(1, 4, 4), 1, 3, 0, &mut rng);
        let _ = conv.forward(&[0.0; 15], 1);
    }
}
