//! The two reference models of the paper's evaluation.

use crate::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
use crate::network::Network;
use rand::Rng;

/// The paper's MNIST FC-DNN (Sec. 2): four weight layers
/// 784-256-256-256-10 with ReLU between them.
///
/// The paper lists the sizes as "784x256x256x256x32"; the final 32 is the
/// accelerator's padded output tile (the network it copies from Minerva \[11\]
/// classifies 10 digits). We build the 10-class version; see DESIGN.md.
///
/// # Examples
///
/// ```
/// use dante_nn::models::mnist_fc_dnn;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let net = mnist_fc_dnn(&mut StdRng::seed_from_u64(0));
/// assert_eq!(net.in_len(), 784);
/// assert_eq!(net.out_len(), 10);
/// assert_eq!(net.weight_layer_indices().len(), 4);
/// ```
#[must_use]
pub fn mnist_fc_dnn<R: Rng + ?Sized>(rng: &mut R) -> Network {
    Network::new(vec![
        Layer::Dense(Dense::new(784, 256, rng)),
        Layer::Relu(Relu::new(256)),
        Layer::Dense(Dense::new(256, 256, rng)),
        Layer::Relu(Relu::new(256)),
        Layer::Dense(Dense::new(256, 256, rng)),
        Layer::Relu(Relu::new(256)),
        Layer::Dense(Dense::new(256, 10, rng)),
    ])
    .expect("statically consistent layer shapes")
}

/// A compact convolutional classifier for the CIFAR-like dataset, used as
/// the accuracy proxy for the paper's AlexNet experiments (the *energy*
/// model uses the real AlexNet layer shapes from `dante-dataflow`).
///
/// Architecture: conv3x3(3->12) - ReLU - pool - conv3x3(12->24) - ReLU -
/// pool - dense(1536->10).
#[must_use]
pub fn cifar_cnn<R: Rng + ?Sized>(rng: &mut R) -> Network {
    let c1 = Conv2d::new(Shape3::new(3, 32, 32), 12, 3, 1, rng);
    let p1 = MaxPool2d::new(Shape3::new(12, 32, 32));
    let c2 = Conv2d::new(Shape3::new(12, 16, 16), 24, 3, 1, rng);
    let p2 = MaxPool2d::new(Shape3::new(24, 16, 16));
    let flat = 24 * 8 * 8;
    Network::new(vec![
        Layer::Conv2d(c1),
        Layer::Relu(Relu::new(12 * 32 * 32)),
        Layer::MaxPool2d(p1),
        Layer::Conv2d(c2),
        Layer::Relu(Relu::new(24 * 16 * 16)),
        Layer::MaxPool2d(p2),
        Layer::Dense(Dense::new(flat, 10, rng)),
    ])
    .expect("statically consistent layer shapes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fc_dnn_matches_paper_dimensions() {
        let net = mnist_fc_dnn(&mut StdRng::seed_from_u64(0));
        assert_eq!(net.in_len(), 784);
        assert_eq!(net.out_len(), 10);
        let idx = net.weight_layer_indices();
        assert_eq!(idx.len(), 4);
        // Weight counts per layer: 784*256, 256*256, 256*256, 256*10.
        let counts: Vec<usize> = idx
            .iter()
            .map(|&i| net.layers()[i].weight_count())
            .collect();
        assert_eq!(counts, vec![784 * 256, 256 * 256, 256 * 256, 256 * 10]);
        // MACs per inference ~ total weights for an FC net.
        assert_eq!(net.macs_per_sample() as usize, net.total_weights());
    }

    #[test]
    fn first_layer_dominates_weight_count() {
        // The paper attributes L1's outsized fault impact partly to its
        // weight count; make sure the model reflects that.
        let net = mnist_fc_dnn(&mut StdRng::seed_from_u64(1));
        let idx = net.weight_layer_indices();
        let l1 = net.layers()[idx[0]].weight_count();
        let rest: usize = idx[1..]
            .iter()
            .map(|&i| net.layers()[i].weight_count())
            .sum();
        assert!(l1 as f64 > 1.4 * rest as f64);
    }

    #[test]
    fn cnn_shapes_chain_and_forward_runs() {
        let net = cifar_cnn(&mut StdRng::seed_from_u64(2));
        assert_eq!(net.in_len(), 3 * 32 * 32);
        assert_eq!(net.out_len(), 10);
        let x = vec![0.5f32; net.in_len()];
        assert_eq!(net.forward(&x, 1).len(), 10);
        assert_eq!(net.weight_layer_indices().len(), 3);
    }
}
