//! Sequential networks: validation, inference, and binary serialization.

use crate::layers::{Conv2d, Dense, Layer, LayerCache, MaxPool2d, Relu, Shape3};
use crate::tensor::{argmax, Matrix};

/// A sequential feed-forward network.
///
/// # Examples
///
/// ```
/// use dante_nn::layers::{Dense, Layer, Relu};
/// use dante_nn::network::Network;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = Network::new(vec![
///     Layer::Dense(Dense::new(4, 8, &mut rng)),
///     Layer::Relu(Relu::new(8)),
///     Layer::Dense(Dense::new(8, 3, &mut rng)),
/// ])?;
/// let logits = net.forward(&[0.1, -0.2, 0.3, 0.0], 1);
/// assert_eq!(logits.len(), 3);
/// # Ok::<(), dante_nn::network::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
}

/// Error constructing or deserializing a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The layer list was empty.
    Empty,
    /// Adjacent layers have incompatible activation lengths.
    ShapeMismatch {
        /// Index of the later layer.
        layer: usize,
        /// Output length of the earlier layer.
        produced: usize,
        /// Input length the later layer expects.
        expected: usize,
    },
    /// Serialized bytes were malformed.
    MalformedBytes {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl core::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Empty => write!(f, "network has no layers"),
            Self::ShapeMismatch {
                layer,
                produced,
                expected,
            } => write!(
                f,
                "layer {layer} expects input length {expected} but receives {produced}"
            ),
            Self::MalformedBytes { reason } => write!(f, "malformed network bytes: {reason}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl Network {
    /// Creates a network, validating that layer shapes chain.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Empty`] for an empty layer list and
    /// [`NetworkError::ShapeMismatch`] when adjacent layers disagree.
    pub fn new(layers: Vec<Layer>) -> Result<Self, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        for i in 1..layers.len() {
            let produced = layers[i - 1].out_len();
            let expected = layers[i].in_len();
            if produced != expected {
                return Err(NetworkError::ShapeMismatch {
                    layer: i,
                    produced,
                    expected,
                });
            }
        }
        Ok(Self { layers })
    }

    /// Input activation length per sample.
    #[must_use]
    pub fn in_len(&self) -> usize {
        self.layers[0].in_len()
    }

    /// Output (logit) length per sample.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.layers.last().expect("validated non-empty").out_len()
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (quantization / fault overlay).
    #[must_use]
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Builds a copy of the network with each parameterized layer replaced
    /// by `f(pos, layer)`, where `pos` counts weight layers in depth order
    /// (the paper's "L1" is `pos == 0`); activation layers are copied
    /// unchanged.
    ///
    /// This is the immutable-share path of the Monte-Carlo evaluator: many
    /// threads borrow the clean network and each builds its own corrupted
    /// copy, instead of cloning and then mutating shared state.
    ///
    /// # Panics
    ///
    /// Panics if `f` changes a layer's input or output shape.
    #[must_use]
    pub fn map_weight_layers(&self, mut f: impl FnMut(usize, &Layer) -> Layer) -> Self {
        let mut pos = 0usize;
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                if layer.has_parameters() {
                    let mapped = f(pos, layer);
                    pos += 1;
                    mapped
                } else {
                    layer.clone()
                }
            })
            .collect();
        Self::new(layers).expect("map_weight_layers must preserve layer shapes")
    }

    /// Indices of layers that carry weights, in depth order — "weight layer
    /// L1" of the paper is `weight_layer_indices()[0]`.
    #[must_use]
    pub fn weight_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_parameters())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total weight parameter count.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Total multiply-accumulates per inference sample.
    #[must_use]
    pub fn macs_per_sample(&self) -> u64 {
        self.layers.iter().map(Layer::macs_per_sample).sum()
    }

    /// Inference over a batch: returns the flat logits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * in_len()`.
    #[must_use]
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(x.len(), batch * self.in_len(), "input length mismatch");
        let mut act = x.to_vec();
        for layer in &self.layers {
            act = layer.forward(&act, batch);
        }
        act
    }

    /// Training forward pass: returns every layer input (`activations[i]` is
    /// the input to layer i; the last entry is the network output) plus the
    /// per-layer caches.
    #[must_use]
    pub fn forward_train(&self, x: &[f32], batch: usize) -> (Vec<Vec<f32>>, Vec<LayerCache>) {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut caches = Vec::with_capacity(self.layers.len());
        activations.push(x.to_vec());
        for layer in &self.layers {
            let (y, cache) = layer.forward_train(activations.last().expect("non-empty"), batch);
            activations.push(y);
            caches.push(cache);
        }
        (activations, caches)
    }

    /// Predicted class per sample.
    #[must_use]
    pub fn predict(&self, x: &[f32], batch: usize) -> Vec<usize> {
        let logits = self.forward(x, batch);
        let classes = self.out_len();
        (0..batch)
            .map(|b| argmax(&logits[b * classes..(b + 1) * classes]))
            .collect()
    }

    /// Classification accuracy over a labelled set, evaluated in internal
    /// batches.
    ///
    /// # Panics
    ///
    /// Panics if `images.len()` is not `labels.len() * in_len()`.
    #[must_use]
    pub fn accuracy(&self, images: &[f32], labels: &[u8]) -> f64 {
        let n = labels.len();
        assert_eq!(
            images.len(),
            n * self.in_len(),
            "image buffer length mismatch"
        );
        if n == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        let chunk = 256;
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            let batch = end - start;
            let preds = self.predict(&images[start * self.in_len()..end * self.in_len()], batch);
            correct += preds
                .iter()
                .zip(&labels[start..end])
                .filter(|(p, l)| **p == **l as usize)
                .count();
        }
        correct as f64 / n as f64
    }

    /// Serializes the network to a self-describing little-endian binary
    /// format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DNET");
        out.extend_from_slice(&1u32.to_le_bytes()); // version
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for layer in &self.layers {
            match layer {
                Layer::Dense(d) => {
                    out.push(0);
                    out.extend_from_slice(&(d.in_features() as u32).to_le_bytes());
                    out.extend_from_slice(&(d.out_features() as u32).to_le_bytes());
                    for &w in d.weights().as_slice() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                    for &b in d.bias() {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
                Layer::Relu(r) => {
                    out.push(1);
                    out.extend_from_slice(&(r.len() as u32).to_le_bytes());
                }
                Layer::Conv2d(c) => {
                    out.push(2);
                    let s = c.in_shape();
                    for dim in [s.c, s.h, s.w, c.out_channels(), c.kernel(), c.padding()] {
                        out.extend_from_slice(&(dim as u32).to_le_bytes());
                    }
                    for &w in c.weights() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                    for &b in c.bias() {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
                Layer::MaxPool2d(p) => {
                    out.push(3);
                    let s = p.in_shape();
                    for dim in [s.c, s.h, s.w] {
                        out.extend_from_slice(&(dim as u32).to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Deserializes a network produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::MalformedBytes`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NetworkError> {
        struct Reader<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl<'a> Reader<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], NetworkError> {
                if self.pos + n > self.bytes.len() {
                    return Err(NetworkError::MalformedBytes {
                        reason: "unexpected end of input",
                    });
                }
                let s = &self.bytes[self.pos..self.pos + n];
                self.pos += n;
                Ok(s)
            }
            fn u8(&mut self) -> Result<u8, NetworkError> {
                Ok(self.take(1)?[0])
            }
            fn u32(&mut self) -> Result<u32, NetworkError> {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("4 bytes"),
                ))
            }
            fn f32s(&mut self, n: usize) -> Result<Vec<f32>, NetworkError> {
                let raw = self.take(n * 4)?;
                Ok(raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect())
            }
        }

        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != b"DNET" {
            return Err(NetworkError::MalformedBytes {
                reason: "bad magic",
            });
        }
        if r.u32()? != 1 {
            return Err(NetworkError::MalformedBytes {
                reason: "unsupported version",
            });
        }
        let n_layers = r.u32()? as usize;
        if n_layers == 0 || n_layers > 1024 {
            return Err(NetworkError::MalformedBytes {
                reason: "implausible layer count",
            });
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let tag = r.u8()?;
            let layer = match tag {
                0 => {
                    let inf = r.u32()? as usize;
                    let out = r.u32()? as usize;
                    if inf == 0 || out == 0 {
                        return Err(NetworkError::MalformedBytes {
                            reason: "zero dense dims",
                        });
                    }
                    let w = r.f32s(inf * out)?;
                    let b = r.f32s(out)?;
                    Layer::Dense(Dense::from_parameters(Matrix::from_vec(inf, out, w), b))
                }
                1 => {
                    let len = r.u32()? as usize;
                    if len == 0 {
                        return Err(NetworkError::MalformedBytes {
                            reason: "zero relu length",
                        });
                    }
                    Layer::Relu(Relu::new(len))
                }
                2 => {
                    let c = r.u32()? as usize;
                    let h = r.u32()? as usize;
                    let w = r.u32()? as usize;
                    let oc = r.u32()? as usize;
                    let k = r.u32()? as usize;
                    let p = r.u32()? as usize;
                    if c == 0 || h == 0 || w == 0 || oc == 0 || k == 0 {
                        return Err(NetworkError::MalformedBytes {
                            reason: "zero conv dims",
                        });
                    }
                    let weights = r.f32s(oc * c * k * k)?;
                    let bias = r.f32s(oc)?;
                    Layer::Conv2d(Conv2d::from_parameters(
                        Shape3::new(c, h, w),
                        oc,
                        k,
                        p,
                        weights,
                        bias,
                    ))
                }
                3 => {
                    let c = r.u32()? as usize;
                    let h = r.u32()? as usize;
                    let w = r.u32()? as usize;
                    if c == 0 || h == 0 || w == 0 {
                        return Err(NetworkError::MalformedBytes {
                            reason: "zero pool dims",
                        });
                    }
                    Layer::MaxPool2d(MaxPool2d::new(Shape3::new(c, h, w)))
                }
                _ => {
                    return Err(NetworkError::MalformedBytes {
                        reason: "unknown layer tag",
                    })
                }
            };
            layers.push(layer);
        }
        if r.pos != bytes.len() {
            return Err(NetworkError::MalformedBytes {
                reason: "trailing bytes",
            });
        }
        Self::new(layers).map_err(|_| NetworkError::MalformedBytes {
            reason: "shape mismatch",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(6, 5, &mut rng)),
            Layer::Relu(Relu::new(5)),
            Layer::Dense(Dense::new(5, 3, &mut rng)),
        ])
        .unwrap()
    }

    fn conv_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(4 * 16, 3, &mut rng)),
        ])
        .unwrap()
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let err = Network::new(vec![
            Layer::Dense(Dense::new(4, 5, &mut rng)),
            Layer::Dense(Dense::new(6, 2, &mut rng)),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            NetworkError::ShapeMismatch {
                layer: 1,
                produced: 5,
                expected: 6
            }
        );
        assert!(format!("{err}").contains("layer 1"));
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(Network::new(vec![]).unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn forward_and_predict_have_consistent_shapes() {
        let net = small_net(1);
        let x = vec![0.1f32; 12];
        assert_eq!(net.forward(&x, 2).len(), 6);
        assert_eq!(net.predict(&x, 2).len(), 2);
    }

    #[test]
    fn weight_layer_indices_skip_activations() {
        let net = conv_net(2);
        assert_eq!(net.weight_layer_indices(), vec![0, 3]);
        assert_eq!(net.total_weights(), 4 * 9 + 64 * 3);
        assert!(net.macs_per_sample() > 0);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let net = small_net(3);
        let x = vec![0.3f32; 6 * 4];
        let preds = net.predict(&x, 4);
        let labels: Vec<u8> = preds.iter().map(|&p| p as u8).collect();
        assert!((net.accuracy(&x, &labels) - 1.0).abs() < 1e-12);
        let wrong: Vec<u8> = preds.iter().map(|&p| ((p + 1) % 3) as u8).collect();
        assert!(net.accuracy(&x, &wrong) < 1e-12);
    }

    #[test]
    fn serialization_round_trips_dense_and_conv() {
        for net in [small_net(4), conv_net(5)] {
            let bytes = net.to_bytes();
            let back = Network::from_bytes(&bytes).unwrap();
            assert_eq!(net, back);
            // Behavioural equality too.
            let x = vec![0.25f32; net.in_len()];
            assert_eq!(net.forward(&x, 1), back.forward(&x, 1));
        }
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(Network::from_bytes(b"nope").is_err());
        let mut bytes = small_net(6).to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            Network::from_bytes(&bytes),
            Err(NetworkError::MalformedBytes { .. })
        ));
        let mut extra = small_net(6).to_bytes();
        extra.push(0);
        assert!(Network::from_bytes(&extra).is_err());
    }

    #[test]
    fn map_weight_layers_visits_only_parameterized_layers() {
        let net = conv_net(8);
        let mut visited = Vec::new();
        let doubled = net.map_weight_layers(|pos, layer| {
            visited.push(pos);
            match layer {
                Layer::Dense(d) => {
                    let mut d = d.clone();
                    for w in d.weights_mut().as_mut_slice() {
                        *w *= 2.0;
                    }
                    Layer::Dense(d)
                }
                Layer::Conv2d(c) => {
                    let mut c = c.clone();
                    for w in c.weights_mut() {
                        *w *= 2.0;
                    }
                    Layer::Conv2d(c)
                }
                other => other.clone(),
            }
        });
        assert_eq!(visited, vec![0, 1], "conv net has two weight layers");
        assert_ne!(net, doubled);
        // Identity mapping reproduces the network exactly.
        assert_eq!(net, net.map_weight_layers(|_, l| l.clone()));
    }

    #[test]
    #[should_panic(expected = "preserve layer shapes")]
    fn map_weight_layers_rejects_shape_changes() {
        let net = small_net(9);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = net.map_weight_layers(|_, _| Layer::Dense(Dense::new(2, 2, &mut rng)));
    }

    #[test]
    fn forward_train_tracks_all_activations() {
        let net = conv_net(7);
        let x = vec![0.5f32; 64];
        let (acts, caches) = net.forward_train(&x, 1);
        assert_eq!(acts.len(), net.layers().len() + 1);
        assert_eq!(caches.len(), net.layers().len());
        assert_eq!(acts.last().unwrap().len(), 3);
        // Final activation equals plain forward.
        assert_eq!(*acts.last().unwrap(), net.forward(&x, 1));
    }
}
