//! Blocked/unrolled GEMM kernels for the trial-batched forward pass.
//!
//! Two families live here:
//!
//! * **Bit-exact `f32` kernels** ([`matmul_exact_into`], [`dense_cols_into`])
//!   used by [`crate::batched`]. These are register-tiled rewrites of
//!   [`Matrix::matmul`](crate::tensor::Matrix::matmul) that produce *the same
//!   bits* for every output element, so the trial-batched evaluator can swap
//!   them in under golden-pinned accuracy statistics. Exactness rests on the
//!   per-element contract of `Matrix::matmul`: each `out[i][j]` is a single
//!   `f32` accumulator starting at `+0.0`, folded over `k` in ascending
//!   order, skipping terms whose left operand is `±0.0`. Register tiling
//!   changes which *elements* are in flight together but never the per-element
//!   fold order, and skipping a `±0.0` product is bit-identical to adding it
//!   (the accumulator can never be `-0.0`: it starts at `+0.0` and IEEE-754
//!   addition only produces `-0.0` from `-0.0 + -0.0` or exact negative
//!   cancellation in rounding modes other than round-to-nearest). Weights and
//!   activations are finite throughout the pipeline, which the argument
//!   assumes.
//!
//! * **Integer kernels** ([`dot_i16`], [`gemm_i32_blocked_into`],
//!   [`round_shift_saturate`]) for the fixed-point accelerator paths. `i64`
//!   wrapping accumulation is associative and commutative, so any blocking /
//!   unrolling factor yields results identical to the naive triple loop —
//!   which the property suite in `crates/nn/tests/gemm_props.rs` checks for
//!   arbitrary shapes, block sizes (including remainder tiles), and `i32`
//!   extremes.

/// Column tile width of the `f32` micro-kernel. 128 lanes mean the four-row
/// kernel amortises each broadcast-A load over a long run of B columns; the
/// accumulator arrays no longer fit the register file, but the spilled rows
/// are hot in L1 and the wide fixed-length inner loops autovectorize cleanly
/// under AVX2/AVX-512 (measured fastest among {16, 32, 64, 128, 256} on the
/// benchmark shapes — 256 regresses once the spill traffic dominates).
pub const NR: usize = 128;

/// `out = a * b` for row-major `a` (`m x k`), `b` (`k x n`), bit-identical to
/// [`Matrix::matmul`](crate::tensor::Matrix::matmul) on finite inputs.
///
/// Processes four rows of `a` at a time against [`NR`]-wide column tiles of
/// `b`; remainder tiles (right edge, trailing rows) fall back to narrower
/// variants with the same per-element fold order.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn matmul_exact_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(out.len(), m * n, "out length mismatch");
    // Runtime dispatch: the same per-element fold compiled under wider SIMD
    // feature sets. No variant enables FMA — fusing the multiply-add would
    // change rounding and break bit-identity with `Matrix::matmul`; plain
    // lane-parallel mul+add over independent accumulators cannot.
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature presence just checked.
            return unsafe { matmul_core_avx512(a, b, m, k, n, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked.
            return unsafe { matmul_core_avx2(a, b, m, k, n, out) };
        }
    }
    matmul_core(a, b, m, k, n, out);
}

/// [`matmul_core`] compiled with AVX-512F codegen (identical source, wider
/// autovectorization of the fixed-width accumulator loops).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_core_avx512(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_core(a, b, m, k, n, out);
}

/// [`matmul_core`] compiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_core_avx2(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_core(a, b, m, k, n, out);
}

/// The dispatch body: four rows at a time against [`NR`]-wide tiles,
/// remainder rows and ragged right edges via narrower
/// variants with the same fold order. `inline(always)` (here and in the
/// micro-kernels) so the `target_feature` wrappers recompile the whole loop
/// nest under their feature set.
#[inline(always)]
fn matmul_core(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let mut rows = out;
    let mut lhs = a;
    let mut m_rem = m;
    while m_rem >= 4 {
        let (o0, rest) = rows.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let (o3, rest) = rest.split_at_mut(n);
        rows = rest;
        rows4(
            &lhs[..k],
            &lhs[k..2 * k],
            &lhs[2 * k..3 * k],
            &lhs[3 * k..4 * k],
            b,
            n,
            o0,
            o1,
            o2,
            o3,
        );
        lhs = &lhs[4 * k..];
        m_rem -= 4;
    }
    if m_rem >= 2 {
        let (o0, rest) = rows.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        rows = rest;
        rows2(&lhs[..k], &lhs[k..2 * k], b, n, o0, o1);
        lhs = &lhs[2 * k..];
        m_rem -= 2;
    }
    if m_rem == 1 {
        row1(&lhs[..k], b, n, &mut rows[..n]);
    }
}

/// Four-row micro-kernel: all rows share every loaded B tile, giving four
/// independent accumulator arrays (many parallel add chains per SIMD width)
/// that hide the add latency the two-row kernel stalls on. Unlike the narrow
/// kernels it never skips a `k` term — with four rows in flight an all-zero
/// term is too rare to pay for the branch — and adding the extra `±0.0 * b`
/// terms is bit-identical to skipping them (see module docs).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rows4(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b: &[f32],
    n: usize,
    out0: &mut [f32],
    out1: &mut [f32],
    out2: &mut [f32],
    out3: &mut [f32],
) {
    let mut j = 0;
    while j < n {
        let nb = NR.min(n - j);
        let mut acc0 = [0.0f32; NR];
        let mut acc1 = [0.0f32; NR];
        let mut acc2 = [0.0f32; NR];
        let mut acc3 = [0.0f32; NR];
        if nb == NR {
            for kk in 0..a0.len() {
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                let bs = &b[kk * n + j..kk * n + j + NR];
                for jj in 0..NR {
                    acc0[jj] += x0 * bs[jj];
                    acc1[jj] += x1 * bs[jj];
                    acc2[jj] += x2 * bs[jj];
                    acc3[jj] += x3 * bs[jj];
                }
            }
        } else {
            for kk in 0..a0.len() {
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                let bs = &b[kk * n + j..kk * n + j + nb];
                for jj in 0..nb {
                    acc0[jj] += x0 * bs[jj];
                    acc1[jj] += x1 * bs[jj];
                    acc2[jj] += x2 * bs[jj];
                    acc3[jj] += x3 * bs[jj];
                }
            }
        }
        out0[j..j + nb].copy_from_slice(&acc0[..nb]);
        out1[j..j + nb].copy_from_slice(&acc1[..nb]);
        out2[j..j + nb].copy_from_slice(&acc2[..nb]);
        out3[j..j + nb].copy_from_slice(&acc3[..nb]);
        j += nb;
    }
}

/// Two-row micro-kernel: both rows share every loaded B tile.
#[inline(always)]
fn rows2(a0: &[f32], a1: &[f32], b: &[f32], n: usize, out0: &mut [f32], out1: &mut [f32]) {
    let mut j = 0;
    while j < n {
        let nb = NR.min(n - j);
        let mut acc0 = [0.0f32; NR];
        let mut acc1 = [0.0f32; NR];
        if nb == NR {
            for (kk, (&x0, &x1)) in a0.iter().zip(a1).enumerate() {
                if x0 == 0.0 && x1 == 0.0 {
                    continue;
                }
                let bs = &b[kk * n + j..kk * n + j + NR];
                for jj in 0..NR {
                    acc0[jj] += x0 * bs[jj];
                    acc1[jj] += x1 * bs[jj];
                }
            }
        } else {
            for (kk, (&x0, &x1)) in a0.iter().zip(a1).enumerate() {
                if x0 == 0.0 && x1 == 0.0 {
                    continue;
                }
                let bs = &b[kk * n + j..kk * n + j + nb];
                for jj in 0..nb {
                    acc0[jj] += x0 * bs[jj];
                    acc1[jj] += x1 * bs[jj];
                }
            }
        }
        out0[j..j + nb].copy_from_slice(&acc0[..nb]);
        out1[j..j + nb].copy_from_slice(&acc1[..nb]);
        j += nb;
    }
}

/// Single-row micro-kernel for the odd last row.
#[inline(always)]
fn row1(a0: &[f32], b: &[f32], n: usize, out0: &mut [f32]) {
    let mut j = 0;
    while j < n {
        let nb = NR.min(n - j);
        let mut acc0 = [0.0f32; NR];
        if nb == NR {
            for (kk, &x0) in a0.iter().enumerate() {
                if x0 == 0.0 {
                    continue;
                }
                let bs = &b[kk * n + j..kk * n + j + NR];
                for jj in 0..NR {
                    acc0[jj] += x0 * bs[jj];
                }
            }
        } else {
            for (kk, &x0) in a0.iter().enumerate() {
                if x0 == 0.0 {
                    continue;
                }
                let bs = &b[kk * n + j..kk * n + j + nb];
                for jj in 0..nb {
                    acc0[jj] += x0 * bs[jj];
                }
            }
        }
        out0[j..j + nb].copy_from_slice(&acc0[..nb]);
        j += nb;
    }
}

/// Recomputes only the dirty output columns of a dense layer:
/// `out[i][j] = (sum_k x[i][k] * w[k][j]) + bias[j]` for `j in cols`,
/// bit-identical to the full [`matmul_exact_into`]-plus-bias path.
///
/// `w` is row-major `k x n` (the dense layer's `[in x out]` weights); the
/// dirty column is gathered once into `col_buf` and streamed against every
/// row of `x`. Untouched columns of `out` are left as-is — the caller seeds
/// `out` with the cached clean activations.
///
/// # Panics
///
/// Panics on slice length mismatches or a column index `>= n`.
#[allow(clippy::too_many_arguments)]
pub fn dense_cols_into(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    cols: &[usize],
    col_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(x.len(), m * k, "input length mismatch");
    assert_eq!(w.len(), k * n, "weight length mismatch");
    assert_eq!(bias.len(), n, "bias length mismatch");
    assert_eq!(out.len(), m * n, "out length mismatch");
    for &j in cols {
        assert!(j < n, "column {j} out of range");
        col_buf.clear();
        col_buf.extend((0..k).map(|kk| w[kk * n + j]));
        let bj = bias[j];
        // Eight rows in flight: each element keeps its own ascending-`k`
        // fold (bit-identity preserved, branchlessly — see module docs),
        // while the independent chains hide the add latency a single
        // accumulator serializes on.
        let mut i = 0;
        while i + 8 <= m {
            let rows: [&[f32]; 8] = std::array::from_fn(|r| &x[(i + r) * k..(i + r + 1) * k]);
            let mut acc = [0.0f32; 8];
            for (kk, &wv) in col_buf.iter().enumerate() {
                for (a, row) in acc.iter_mut().zip(&rows) {
                    *a += row[kk] * wv;
                }
            }
            for (r, a) in acc.iter().enumerate() {
                out[(i + r) * n + j] = a + bj;
            }
            i += 8;
        }
        while i < m {
            let xr = &x[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&xv, &wv) in xr.iter().zip(col_buf.iter()) {
                acc += xv * wv;
            }
            out[i * n + j] = acc + bj;
            i += 1;
        }
    }
}

/// 4-way unrolled `i16 x i16 -> i64` dot product:
/// `acc + sum_k w[k] * x[k]`.
///
/// Integer addition is associative, so the unrolled partial sums are exactly
/// the sequential left-fold the scalar executor computes. The accumulator
/// cannot overflow in practice (`2^15 * 2^15 * len` needs `len > 2^33` to
/// reach `i64::MAX`), matching `pe::mac` semantics in dante-accel.
#[must_use]
pub fn dot_i16(acc: i64, w: &[i16], x: &[i16]) -> i64 {
    assert_eq!(w.len(), x.len(), "dot length mismatch");
    let mut s = [0i64; 4];
    let mut wc = w.chunks_exact(4);
    let mut xc = x.chunks_exact(4);
    for (cw, cx) in (&mut wc).zip(&mut xc) {
        s[0] += i64::from(cw[0]) * i64::from(cx[0]);
        s[1] += i64::from(cw[1]) * i64::from(cx[1]);
        s[2] += i64::from(cw[2]) * i64::from(cx[2]);
        s[3] += i64::from(cw[3]) * i64::from(cx[3]);
    }
    let mut tail = 0i64;
    for (&wv, &xv) in wc.remainder().iter().zip(xc.remainder()) {
        tail += i64::from(wv) * i64::from(xv);
    }
    acc + (s[0] + s[1]) + (s[2] + s[3]) + tail
}

/// Naive reference `i32` GEMM with wrapping `i64` accumulation:
/// `out[i][j] = sum_k a[i][k] * b[k][j] (mod 2^64)`.
///
/// # Panics
///
/// Panics on slice length mismatches.
#[must_use]
pub fn gemm_i32_naive(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Vec<i64> {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for kk in 0..k {
                acc = acc.wrapping_add(i64::from(a[i * k + kk]) * i64::from(b[kk * n + j]));
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Blocked `i32` GEMM with wrapping `i64` accumulation, identical to
/// [`gemm_i32_naive`] for **any** block sizes `(mb, kb, nb)` — wrapping
/// addition is associative and commutative, so reordering the `k` loop across
/// cache blocks cannot change the result even at `i32` extremes.
///
/// # Panics
///
/// Panics on slice length mismatches or a zero block size.
pub fn gemm_i32_blocked_into(
    a: &[i32],
    b: &[i32],
    m: usize,
    k: usize,
    n: usize,
    (mb, kb, nb): (usize, usize, usize),
    out: &mut [i64],
) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(out.len(), m * n, "out length mismatch");
    assert!(mb > 0 && kb > 0 && nb > 0, "block sizes must be positive");
    out.fill(0);
    for i0 in (0..m).step_by(mb) {
        let i1 = (i0 + mb).min(m);
        for k0 in (0..k).step_by(kb) {
            let k1 = (k0 + kb).min(k);
            for j0 in (0..n).step_by(nb) {
                let j1 = (j0 + nb).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let av = i64::from(a[i * k + kk]);
                        let brow = &b[kk * n..kk * n + n];
                        let orow = &mut out[i * n..i * n + n];
                        for j in j0..j1 {
                            orow[j] = orow[j].wrapping_add(av * i64::from(brow[j]));
                        }
                    }
                }
            }
        }
    }
}

/// The GEMM epilogue: scales a raw `i64` accumulator by
/// `multiplier / 2^shift` with round-half-away-from-zero and saturates to
/// `i16` — the same fixed-point semantics as `pe::requantize` in dante-accel
/// (cross-checked there against this implementation at the extremes).
///
/// # Panics
///
/// Panics if `shift >= 63`.
#[must_use]
pub fn round_shift_saturate(acc: i64, multiplier: i32, shift: u32) -> i16 {
    assert!(shift < 63, "shift {shift} out of range");
    let prod = i128::from(acc) * i128::from(multiplier);
    let bias = (1i128 << shift) >> 1;
    let rounded = if prod >= 0 {
        (prod + bias) >> shift
    } else {
        -((-prod + bias) >> shift)
    };
    rounded.clamp(i128::from(i16::MIN), i128::from(i16::MAX)) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, zero_frac: f64) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < zero_frac {
                    0.0
                } else {
                    rng.gen::<f32>() * 2.0 - 1.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn exact_kernel_matches_matmul_bitwise_across_shapes() {
        let mut rng = StdRng::seed_from_u64(0x6E44);
        // Shapes chosen to hit: even/odd m (pair + remainder row), n
        // multiples of NR, ragged right edges, n < NR, k = 1.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 16),
            (3, 7, 10),
            (4, 784, 256),
            (5, 16, 33),
            (7, 5, 17),
            (256, 9, 10),
        ] {
            for &zero_frac in &[0.0, 0.5, 0.95] {
                let a = random_matrix(&mut rng, m, k, zero_frac);
                let b = random_matrix(&mut rng, k, n, 0.0);
                let reference = a.matmul(&b);
                let mut out = vec![0.0f32; m * n];
                matmul_exact_into(a.as_slice(), b.as_slice(), m, k, n, &mut out);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "({m},{k},{n}) zero_frac {zero_frac}"
                );
            }
        }
    }

    #[test]
    fn dense_cols_match_full_product_bitwise() {
        let mut rng = StdRng::seed_from_u64(0xC015);
        let (m, k, n) = (5usize, 12usize, 20usize);
        let x = random_matrix(&mut rng, m, k, 0.4);
        let w = random_matrix(&mut rng, k, n, 0.0);
        let bias: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
        // Full reference: matmul + bias (the Dense::forward recipe).
        let mut reference = x.matmul(&w).into_vec();
        for row in reference.chunks_exact_mut(n) {
            for (o, &b) in row.iter_mut().zip(&bias) {
                *o += b;
            }
        }
        // Start from garbage in the dirty columns, clean values elsewhere.
        let mut out = reference.clone();
        let cols = [0usize, 3, 19];
        for row in out.chunks_exact_mut(n) {
            for &c in &cols {
                row[c] = f32::NAN;
            }
        }
        let mut col_buf = Vec::new();
        dense_cols_into(
            x.as_slice(),
            w.as_slice(),
            &bias,
            m,
            k,
            n,
            &cols,
            &mut col_buf,
            &mut out,
        );
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dot_i16_matches_sequential_fold() {
        let mut rng = StdRng::seed_from_u64(0xD071);
        for len in [0usize, 1, 3, 4, 7, 64, 129] {
            let w: Vec<i16> = (0..len).map(|_| rng.gen::<i16>()).collect();
            let x: Vec<i16> = (0..len).map(|_| rng.gen::<i16>()).collect();
            let reference = w
                .iter()
                .zip(&x)
                .fold(7i64, |acc, (&a, &b)| acc + i64::from(a) * i64::from(b));
            assert_eq!(dot_i16(7, &w, &x), reference, "len {len}");
        }
    }

    #[test]
    fn blocked_i32_gemm_matches_naive_on_a_known_case() {
        let a = vec![1i32, 2, 3, 4, 5, 6];
        let b = vec![7i32, 8, 9, 10, 11, 12];
        let naive = gemm_i32_naive(&a, &b, 2, 3, 2);
        assert_eq!(naive, vec![58, 64, 139, 154]);
        let mut blocked = vec![0i64; 4];
        gemm_i32_blocked_into(&a, &b, 2, 3, 2, (1, 2, 1), &mut blocked);
        assert_eq!(blocked, naive);
    }

    #[test]
    fn round_shift_saturate_rounds_half_away_and_clamps() {
        // 3 * 1 / 2^1 = 1.5 -> 2; -3 * 1 / 2^1 = -1.5 -> -2.
        assert_eq!(round_shift_saturate(3, 1, 1), 2);
        assert_eq!(round_shift_saturate(-3, 1, 1), -2);
        // Saturation at both rails.
        assert_eq!(round_shift_saturate(i64::MAX, i32::MAX, 0), i16::MAX);
        assert_eq!(round_shift_saturate(i64::MIN, i32::MAX, 0), i16::MIN);
        // Exact zero shift is the identity on in-range values.
        assert_eq!(round_shift_saturate(-1234, 1, 0), -1234);
    }

    /// Release-mode kernel speed probe (not a correctness test):
    /// `cargo test --release -p dante-nn -- --ignored gemm_speed --nocapture`.
    #[test]
    #[ignore = "manual perf probe; run in release with --nocapture"]
    fn gemm_speed_probe() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let (m, k, n) = (256usize, 784usize, 256usize);
        // ~50% zeros mimics post-ReLU activations.
        let a = random_matrix(&mut rng, m, k, 0.5);
        let b = random_matrix(&mut rng, k, n, 0.0);
        let reps = 20u32;

        let t0 = std::time::Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..reps {
            sink += f64::from(a.matmul(&b).as_slice()[0]);
        }
        let scalar = t0.elapsed().as_secs_f64();

        let mut out = vec![0.0f32; m * n];
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            matmul_exact_into(a.as_slice(), b.as_slice(), m, k, n, &mut out);
            sink += f64::from(out[0]);
        }
        let tiled = t0.elapsed().as_secs_f64();

        let macs = (m * k * n) as f64 * f64::from(reps);
        println!(
            "matmul:      {:>8.1} ms  {:>6.2} GMAC/s",
            scalar * 1e3,
            macs / scalar / 1e9
        );
        println!(
            "tiled exact: {:>8.1} ms  {:>6.2} GMAC/s  ({:.2}x, sink {sink:e})",
            tiled * 1e3,
            macs / tiled / 1e9,
            scalar / tiled
        );
    }
}
