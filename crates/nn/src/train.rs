//! Mini-batch SGD training with momentum and softmax cross-entropy loss.

use crate::network::Network;
use crate::tensor::softmax_batch;
use rand::seq::SliceRandom;
use rand::Rng;

/// Softmax cross-entropy over a batch: returns the mean loss and the logit
/// gradient (`softmax - onehot`, already divided by the batch size).
///
/// # Panics
///
/// Panics on inconsistent lengths or a label outside `0..classes`.
#[must_use]
pub fn softmax_cross_entropy(logits: &[f32], labels: &[u8], classes: usize) -> (f32, Vec<f32>) {
    let batch = labels.len();
    assert_eq!(logits.len(), batch * classes, "logit length mismatch");
    let probs = softmax_batch(logits, batch, classes);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (b, &label) in labels.iter().enumerate() {
        let l = label as usize;
        assert!(l < classes, "label {l} out of range for {classes} classes");
        let p = probs[b * classes + l].max(1e-12);
        loss -= p.ln();
        grad[b * classes + l] -= 1.0;
    }
    let inv = 1.0 / batch as f32;
    for g in &mut grad {
        *g *= inv;
    }
    (loss * inv, grad)
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate at epoch 0.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 64,
            epochs: 10,
            lr_decay: 0.95,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were run.
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Trains `net` on `(images, labels)` with mini-batch SGD + momentum.
///
/// `images` holds `labels.len()` samples of `net.in_len()` floats each.
///
/// # Panics
///
/// Panics on inconsistent buffer lengths, a zero batch size, or zero epochs.
pub fn train<R: Rng + ?Sized>(
    net: &mut Network,
    images: &[f32],
    labels: &[u8],
    config: &SgdConfig,
    rng: &mut R,
) -> TrainReport {
    let n = labels.len();
    let in_len = net.in_len();
    let classes = net.out_len();
    assert_eq!(images.len(), n * in_len, "image buffer length mismatch");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(config.epochs > 0, "epoch count must be positive");
    assert!(n > 0, "training set is empty");

    // Momentum buffers, one per layer (empty for parameter-free layers).
    let mut vel_w: Vec<Vec<f32>> = net
        .layers()
        .iter()
        .map(|l| vec![0.0; l.weight_count()])
        .collect();
    let mut vel_b: Vec<Vec<f32>> = net
        .layers()
        .iter()
        .map(|l| match l {
            crate::layers::Layer::Dense(d) => vec![0.0; d.out_features()],
            crate::layers::Layer::Conv2d(c) => vec![0.0; c.bias().len()],
            _ => Vec::new(),
        })
        .collect();

    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport::default();
    let mut lr = config.learning_rate;

    for _epoch in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;

        for chunk in order.chunks(config.batch_size) {
            let batch = chunk.len();
            let mut x = Vec::with_capacity(batch * in_len);
            let mut y = Vec::with_capacity(batch);
            for &i in chunk {
                x.extend_from_slice(&images[i * in_len..(i + 1) * in_len]);
                y.push(labels[i]);
            }

            let (acts, caches) = net.forward_train(&x, batch);
            let logits = acts.last().expect("non-empty activations");
            let (loss, mut dy) = softmax_cross_entropy(logits, &y, classes);
            epoch_loss += loss;
            batches += 1;

            // Backward through the stack.
            for li in (0..net.layers().len()).rev() {
                let (dx, grads) = net.layers()[li].backward(&acts[li], &caches[li], &dy, batch);
                if let Some(g) = grads {
                    // v = momentum * v + g;  p -= lr * v
                    let vw = &mut vel_w[li];
                    for (v, &gw) in vw.iter_mut().zip(&g.weights) {
                        *v = config.momentum * *v + gw;
                    }
                    let vb = &mut vel_b[li];
                    for (v, &gb) in vb.iter_mut().zip(&g.bias) {
                        *v = config.momentum * *v + gb;
                    }
                    let update = crate::layers::ParamGrads {
                        weights: vw.clone(),
                        bias: vb.clone(),
                    };
                    net.layers_mut()[li].apply_update(&update, lr);
                }
                dy = dx;
            }
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
        lr *= config.lr_decay;
    }
    report
}

/// An epoch-boundary notification delivered by [`train_fault_injected`].
#[derive(Debug)]
pub enum TrainPhase<'a> {
    /// Epoch `epoch` (zero-based) is about to start.
    EpochStart {
        /// Zero-based epoch index.
        epoch: usize,
    },
    /// Epoch `epoch` finished.
    EpochDone {
        /// Zero-based epoch index.
        epoch: usize,
        /// Mean mini-batch loss of the epoch (measured at the corrupted
        /// forward weights, i.e. the loss the hardened network actually
        /// trains against).
        loss: f32,
        /// The clean network after the epoch's updates.
        net: &'a Network,
    },
}

/// [`train`] with a fault-injection hook: straight-through-estimator SGD.
///
/// `corrupt_forward(epoch, net)` is called once per mini-batch with the
/// current clean network and may return a corrupted copy; that batch's
/// forward and backward passes then run through the corrupted weights while
/// the momentum update is applied to the clean float weights (the
/// straight-through estimator — the quantize/pack/corrupt stage is treated
/// as identity on the backward pass). Returning `None` runs the batch
/// clean, so `train_fault_injected(.., |_, _| None, |_| ())` is plain SGD.
///
/// `on_phase` observes epoch boundaries ([`TrainPhase`]), letting callers
/// stream per-epoch telemetry while training runs.
///
/// The loop is single-threaded and consumes `rng` exactly like [`train`]
/// (one shuffle per epoch), so results are bit-identical for a given seed
/// regardless of worker-pool configuration.
///
/// # Panics
///
/// Panics on inconsistent buffer lengths, a zero batch size, zero epochs,
/// or a corrupted copy whose layer structure mismatches the clean network.
pub fn train_fault_injected<R, F, P>(
    net: &mut Network,
    images: &[f32],
    labels: &[u8],
    config: &SgdConfig,
    rng: &mut R,
    mut corrupt_forward: F,
    mut on_phase: P,
) -> TrainReport
where
    R: Rng + ?Sized,
    F: FnMut(usize, &Network) -> Option<Network>,
    P: FnMut(TrainPhase<'_>),
{
    let n = labels.len();
    let in_len = net.in_len();
    let classes = net.out_len();
    assert_eq!(images.len(), n * in_len, "image buffer length mismatch");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(config.epochs > 0, "epoch count must be positive");
    assert!(n > 0, "training set is empty");

    let mut vel_w: Vec<Vec<f32>> = net
        .layers()
        .iter()
        .map(|l| vec![0.0; l.weight_count()])
        .collect();
    let mut vel_b: Vec<Vec<f32>> = net
        .layers()
        .iter()
        .map(|l| match l {
            crate::layers::Layer::Dense(d) => vec![0.0; d.out_features()],
            crate::layers::Layer::Conv2d(c) => vec![0.0; c.bias().len()],
            _ => Vec::new(),
        })
        .collect();

    let layer_count = net.layers().len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport::default();
    let mut lr = config.learning_rate;

    for epoch in 0..config.epochs {
        on_phase(TrainPhase::EpochStart { epoch });
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;

        for chunk in order.chunks(config.batch_size) {
            let batch = chunk.len();
            let mut x = Vec::with_capacity(batch * in_len);
            let mut y = Vec::with_capacity(batch);
            for &i in chunk {
                x.extend_from_slice(&images[i * in_len..(i + 1) * in_len]);
                y.push(labels[i]);
            }

            // Forward/backward run on the corrupted copy when one is
            // supplied; gradients are collected first and applied to the
            // clean network afterwards so the immutable borrow of `net`
            // (the `None` case) ends before the update pass.
            let fwd = corrupt_forward(epoch, net);
            let mut grads_rev = Vec::with_capacity(layer_count);
            let loss = {
                let fwd_net: &Network = match &fwd {
                    Some(f) => {
                        assert_eq!(
                            f.layers().len(),
                            layer_count,
                            "corrupted copy layer count mismatch"
                        );
                        f
                    }
                    None => net,
                };
                let (acts, caches) = fwd_net.forward_train(&x, batch);
                let logits = acts.last().expect("non-empty activations");
                let (loss, mut dy) = softmax_cross_entropy(logits, &y, classes);
                for li in (0..layer_count).rev() {
                    let (dx, g) = fwd_net.layers()[li].backward(&acts[li], &caches[li], &dy, batch);
                    grads_rev.push(g);
                    dy = dx;
                }
                loss
            };
            epoch_loss += loss;
            batches += 1;

            for (li, grads) in grads_rev.into_iter().rev().enumerate() {
                if let Some(g) = grads {
                    let vw = &mut vel_w[li];
                    for (v, &gw) in vw.iter_mut().zip(&g.weights) {
                        *v = config.momentum * *v + gw;
                    }
                    let vb = &mut vel_b[li];
                    for (v, &gb) in vb.iter_mut().zip(&g.bias) {
                        *v = config.momentum * *v + gb;
                    }
                    let update = crate::layers::ParamGrads {
                        weights: vw.clone(),
                        bias: vb.clone(),
                    };
                    net.layers_mut()[li].apply_update(&update, lr);
                }
            }
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        report.epoch_losses.push(mean_loss);
        on_phase(TrainPhase::EpochDone {
            epoch,
            loss: mean_loss,
            net,
        });
        lr *= config.lr_decay;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_classes() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0, 0.0, 0.0], &[2], 4);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient sums to zero per sample.
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-6);
        // True class gradient is negative, others positive.
        assert!(grad[2] < 0.0 && grad[0] > 0.0);
    }

    #[test]
    fn cross_entropy_decreases_when_correct_logit_grows() {
        let (l1, _) = softmax_cross_entropy(&[0.0, 0.0], &[0], 2);
        let (l2, _) = softmax_cross_entropy(&[3.0, 0.0], &[0], 2);
        assert!(l2 < l1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let _ = softmax_cross_entropy(&[0.0, 0.0], &[5], 2);
    }

    /// Two linearly separable blobs in 4-D must be learnable to 100%.
    #[test]
    fn sgd_learns_a_separable_toy_problem() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(4, 16, &mut rng)),
            Layer::Relu(Relu::new(16)),
            Layer::Dense(Dense::new(16, 2, &mut rng)),
        ])
        .unwrap();

        let n = 200;
        let mut images = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 2) as u8;
            let center = if class == 0 { 0.7 } else { -0.7 };
            for _ in 0..4 {
                images.push(center + (rng.gen::<f32>() - 0.5) * 0.4);
            }
            labels.push(class);
        }

        let config = SgdConfig {
            epochs: 30,
            batch_size: 16,
            ..SgdConfig::default()
        };
        let report = train(&mut net, &images, &labels, &config, &mut rng);
        assert_eq!(report.epoch_losses.len(), 30);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss must decrease: {:?}",
            report.epoch_losses
        );
        let acc = net.accuracy(&images, &labels);
        assert!(acc > 0.98, "toy accuracy only {acc}");
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut net = Network::new(vec![Layer::Dense(Dense::new(3, 2, &mut rng))]).unwrap();
            let images = vec![0.1f32; 30];
            let labels = vec![0u8; 10];
            let config = SgdConfig {
                epochs: 2,
                batch_size: 5,
                ..SgdConfig::default()
            };
            train(&mut net, &images, &labels, &config, &mut rng);
            net
        };
        assert_eq!(build(), build());
    }

    /// With no corruption the straight-through loop must be bit-identical
    /// to plain [`train`]: same shuffles, same float-op order per layer.
    #[test]
    fn fault_injected_without_corruption_matches_plain_train() {
        let build = |injected: bool| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut net = Network::new(vec![
                Layer::Dense(Dense::new(4, 8, &mut rng)),
                Layer::Relu(Relu::new(8)),
                Layer::Dense(Dense::new(8, 2, &mut rng)),
            ])
            .unwrap();
            let images: Vec<f32> = (0..40 * 4).map(|i| (i % 13) as f32 * 0.05).collect();
            let labels: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
            let config = SgdConfig {
                epochs: 3,
                batch_size: 8,
                ..SgdConfig::default()
            };
            let report = if injected {
                train_fault_injected(
                    &mut net,
                    &images,
                    &labels,
                    &config,
                    &mut rng,
                    |_, _| None,
                    |_| (),
                )
            } else {
                train(&mut net, &images, &labels, &config, &mut rng)
            };
            (net, report)
        };
        assert_eq!(build(false), build(true));
    }

    /// The corruption hook sees every mini-batch, phases arrive in order,
    /// and gradients flow through the corrupted copy (straight-through).
    #[test]
    fn fault_injected_invokes_hook_and_phases() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::new(vec![Layer::Dense(Dense::new(3, 2, &mut rng))]).unwrap();
        let images = vec![0.25f32; 30 * 3];
        let labels: Vec<u8> = (0..30).map(|i| (i % 2) as u8).collect();
        let config = SgdConfig {
            epochs: 2,
            batch_size: 10,
            ..SgdConfig::default()
        };
        let mut hook_calls = 0usize;
        let mut phases = Vec::new();
        let report = train_fault_injected(
            &mut net,
            &images,
            &labels,
            &config,
            &mut rng,
            |epoch, clean| {
                hook_calls += 1;
                // Perturb one weight: a crude stand-in for a fault overlay.
                let mut c = clean.clone();
                if let Layer::Dense(d) = &mut c.layers_mut()[0] {
                    d.weights_mut().as_mut_slice()[0] += 0.5 + epoch as f32;
                }
                Some(c)
            },
            |p| match p {
                TrainPhase::EpochStart { epoch } => phases.push((false, epoch)),
                TrainPhase::EpochDone { epoch, .. } => phases.push((true, epoch)),
            },
        );
        assert_eq!(hook_calls, 2 * 3, "one hook call per mini-batch");
        assert_eq!(phases, vec![(false, 0), (true, 0), (false, 1), (true, 1)]);
        assert_eq!(report.epoch_losses.len(), 2);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Network::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))]).unwrap();
        let _ = train(&mut net, &[], &[], &SgdConfig::default(), &mut rng);
    }
}
