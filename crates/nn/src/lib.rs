//! # dante-nn
//!
//! A from-scratch neural-network substrate for the *Dante* low-voltage
//! accelerator reproduction:
//!
//! * [`tensor`] — a minimal row-major matrix plus softmax/argmax helpers.
//! * [`gemm`] — blocked/unrolled GEMM kernels: bit-exact `f32` register
//!   tiling for the trial-batched forward pass and wrapping-`i64` integer
//!   GEMM for the fixed-point paths.
//! * [`batched`] — clean-activation caching plus incremental re-evaluation
//!   of corrupted networks (only neurons reachable from flipped weight words
//!   are recomputed), bit-identical to the plain scalar forward.
//! * [`layers`] — dense, 2-D convolution, max-pooling and ReLU layers with
//!   hand-written forward and backward passes.
//! * [`network`] — shape-validated sequential networks with binary
//!   serialization.
//! * [`mod@train`] — mini-batch SGD with momentum and softmax cross-entropy.
//! * [`quant`] — fixed-point quantization (Q2.14 weights, UQ0.8 inputs) with
//!   packing to/from 64-bit SRAM words, the hook for bit-level fault
//!   injection.
//! * [`data`] — procedural MNIST-like and CIFAR-like datasets (the offline
//!   stand-ins; see DESIGN.md).
//! * [`metrics`] — confusion matrices and per-class recall.
//! * [`models`] — the paper's FC-DNN (784-256-256-256-10) and a compact
//!   CNN for the convolutional experiments.
//!
//! # Examples
//!
//! Train the paper's FC-DNN on the procedural digit set:
//!
//! ```no_run
//! use dante_nn::data::generate_mnist_like;
//! use dante_nn::models::mnist_fc_dnn;
//! use dante_nn::train::{train, SgdConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let ds = generate_mnist_like(5000, 1);
//! let mut net = mnist_fc_dnn(&mut rng);
//! train(&mut net, ds.images(), ds.labels(), &SgdConfig::default(), &mut rng);
//! assert!(net.accuracy(ds.images(), ds.labels()) > 0.95);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod data;
pub mod gemm;
pub mod layers;
pub mod metrics;
pub mod models;
pub mod network;
pub mod quant;
pub mod tensor;
pub mod train;

pub use data::Dataset;
pub use layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
pub use metrics::ConfusionMatrix;
pub use network::{Network, NetworkError};
pub use quant::{QFormat, QuantizedTensor, ScaledQuantizer, ScaledTensor};
pub use tensor::Matrix;
pub use train::{train, SgdConfig, TrainReport};
