//! Procedural CIFAR-10 stand-in: 32x32 RGB textures.
//!
//! Each of the 10 classes combines a spatial pattern family (stripes,
//! checker, radial blob, diagonal) with a colour signature; per-sample
//! frequency, phase, amplitude, and noise jitter force a conv net to learn
//! genuine spatial filters rather than memorizing pixels.

use super::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 32;
/// Channels (RGB).
pub const CHANNELS: usize = 3;
/// Flattened image length, channel-major (`[c][y][x]`).
pub const IMAGE_LEN: usize = CHANNELS * SIDE * SIDE;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Base colour per class (R, G, B in `[0, 1]`).
const PALETTE: [(f32, f32, f32); 10] = [
    (0.9, 0.2, 0.2),
    (0.2, 0.9, 0.2),
    (0.2, 0.2, 0.9),
    (0.9, 0.9, 0.2),
    (0.9, 0.2, 0.9),
    (0.2, 0.9, 0.9),
    (0.8, 0.5, 0.2),
    (0.5, 0.2, 0.8),
    (0.6, 0.6, 0.6),
    (0.3, 0.7, 0.4),
];

fn pattern_value(class: usize, x: f32, y: f32, freq: f32, phase: f32) -> f32 {
    match class % 5 {
        0 => (y * freq + phase).sin(), // horizontal stripes
        1 => (x * freq + phase).sin(), // vertical stripes
        2 => (x * freq + phase).sin() * (y * freq + phase).sin(), // checker
        3 => {
            // radial blob centred mid-image
            let r = ((x - 16.0).powi(2) + (y - 16.0).powi(2)).sqrt();
            (r * freq * 0.5 + phase).cos()
        }
        _ => ((x + y) * freq * 0.7 + phase).sin(), // diagonal stripes
    }
}

fn render<R: Rng + ?Sized>(class: usize, rng: &mut R, out: &mut [f32]) {
    debug_assert_eq!(out.len(), IMAGE_LEN);
    let freq = rng.gen_range(0.5f32..0.9);
    let phase = rng.gen_range(0.0f32..core::f32::consts::TAU);
    let amp = rng.gen_range(0.5f32..0.9);
    let (r, g, b) = PALETTE[class];
    let base = [r, g, b];
    for (c, &col) in base.iter().enumerate() {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let p = pattern_value(class, x as f32, y as f32, freq, phase);
                let noise = (rng.gen::<f32>() - 0.5) * 0.15;
                let v = col * (0.5 + 0.5 * amp * p) + noise;
                out[(c * SIDE + y) * SIDE + x] = v.clamp(0.0, 1.0);
            }
        }
    }
}

/// Generates `n` labelled texture images with a deterministic seed, classes
/// balanced round-robin.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn generate_cifar_like(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "cannot generate an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ SEED_SALT);
    let mut images = vec![0.0f32; n * IMAGE_LEN];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % CLASSES;
        render(
            class,
            &mut rng,
            &mut images[i * IMAGE_LEN..(i + 1) * IMAGE_LEN],
        );
        labels.push(class as u8);
    }
    Dataset::new(images, labels, IMAGE_LEN, CLASSES)
}

/// Seed salt so CIFAR-like and MNIST-like sets never share RNG streams.
const SEED_SALT: u64 = 0xC1FA_5EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_balance() {
        let d = generate_cifar_like(50, 2);
        assert_eq!(d.len(), 50);
        assert_eq!(d.sample_len(), IMAGE_LEN);
        assert_eq!(d.labels().iter().filter(|&&l| l == 0).count(), 5);
        assert!(d.images().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_cifar_like(10, 4), generate_cifar_like(10, 4));
        assert_ne!(generate_cifar_like(10, 4), generate_cifar_like(10, 5));
    }

    #[test]
    fn classes_have_distinct_colour_signatures() {
        let d = generate_cifar_like(20, 9);
        let chan_mean = |s: &[f32], c: usize| -> f32 {
            s[c * SIDE * SIDE..(c + 1) * SIDE * SIDE]
                .iter()
                .sum::<f32>()
                / (SIDE * SIDE) as f32
        };
        // Class 0 is red-dominant, class 2 blue-dominant.
        let red = d.sample(0);
        let blue = d.sample(2);
        assert!(chan_mean(red, 0) > chan_mean(red, 2));
        assert!(chan_mean(blue, 2) > chan_mean(blue, 0));
    }

    #[test]
    fn same_class_varies_between_samples() {
        let d = generate_cifar_like(30, 11);
        assert_ne!(d.sample(0), d.sample(10));
    }
}
