//! Procedural MNIST stand-in: 28x28 grayscale digits rendered as jittered
//! seven-segment glyphs with additive noise.
//!
//! Each sample picks a digit class, renders its segment set at a random
//! offset and intensity, smears the strokes slightly, and adds Gaussian
//! pixel noise. The task is easy enough for a small FC-DNN to exceed 95%
//! accuracy (like real MNIST) while still requiring genuine spatial
//! generalization.

use super::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 28;
/// Flattened image length (784, the FC-DNN input width of the paper).
pub const IMAGE_LEN: usize = SIDE * SIDE;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// Seven-segment membership per digit, segments ordered `A B C D E F G`.
const SEGMENTS: [[bool; 7]; 10] = [
    // A      B      C      D      E      F      G
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Segment rectangles `(x0, y0, x1, y1)` inclusive, on the nominal canvas.
const SEGMENT_RECTS: [(usize, usize, usize, usize); 7] = [
    (8, 4, 19, 6),    // A: top bar
    (18, 5, 20, 13),  // B: top-right
    (18, 14, 20, 22), // C: bottom-right
    (8, 21, 19, 23),  // D: bottom bar
    (7, 14, 9, 22),   // E: bottom-left
    (7, 5, 9, 13),    // F: top-left
    (8, 12, 19, 14),  // G: middle bar
];

/// Renders one digit into a 784-float buffer.
fn render_digit<R: Rng + ?Sized>(digit: usize, rng: &mut R, out: &mut [f32]) {
    debug_assert_eq!(out.len(), IMAGE_LEN);
    out.fill(0.0);
    let dx = rng.gen_range(-3i32..=3);
    let dy = rng.gen_range(-2i32..=2);
    let intensity = rng.gen_range(0.7f32..1.0);

    for (seg, &on) in SEGMENTS[digit].iter().enumerate() {
        if !on {
            continue;
        }
        let (x0, y0, x1, y1) = SEGMENT_RECTS[seg];
        for y in y0..=y1 {
            for x in x0..=x1 {
                let xx = x as i32 + dx;
                let yy = y as i32 + dy;
                if (0..SIDE as i32).contains(&xx) && (0..SIDE as i32).contains(&yy) {
                    out[yy as usize * SIDE + xx as usize] = intensity;
                }
            }
        }
    }

    // Stroke smear: average each pixel with its left neighbour (cheap blur).
    for y in 0..SIDE {
        for x in (1..SIDE).rev() {
            let i = y * SIDE + x;
            out[i] = 0.75 * out[i] + 0.25 * out[i - 1];
        }
    }

    // Additive Gaussian-ish noise from the sum of uniforms, clamped.
    for px in out.iter_mut() {
        let noise: f32 = (0..3).map(|_| rng.gen::<f32>() - 0.5).sum::<f32>() * 0.1;
        *px = (*px + noise).clamp(0.0, 1.0);
    }
}

/// Generates `n` labelled digit images with a deterministic seed.
///
/// Classes are balanced round-robin so that even tiny datasets contain every
/// digit.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn generate_mnist_like(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "cannot generate an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = vec![0.0f32; n * IMAGE_LEN];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % CLASSES;
        render_digit(
            digit,
            &mut rng,
            &mut images[i * IMAGE_LEN..(i + 1) * IMAGE_LEN],
        );
        labels.push(digit as u8);
    }
    Dataset::new(images, labels, IMAGE_LEN, CLASSES)
}

/// Average-pools 28x28 images down by an integer `factor` (e.g. factor 4
/// yields 7x7 = 49 features) — handy for building fast small-input models
/// in tests and validation experiments.
///
/// # Panics
///
/// Panics if `factor` does not divide 28 or the buffer length is not a
/// multiple of 784.
#[must_use]
pub fn downsample(images: &[f32], factor: usize) -> Vec<f32> {
    assert!(
        factor > 0 && SIDE.is_multiple_of(factor),
        "factor must divide {SIDE}"
    );
    assert_eq!(images.len() % IMAGE_LEN, 0, "buffer must hold whole images");
    let n = images.len() / IMAGE_LEN;
    let out_side = SIDE / factor;
    let mut out = Vec::with_capacity(n * out_side * out_side);
    for s in 0..n {
        let img = &images[s * IMAGE_LEN..(s + 1) * IMAGE_LEN];
        for by in 0..out_side {
            for bx in 0..out_side {
                let mut acc = 0.0f32;
                for y in 0..factor {
                    for x in 0..factor {
                        acc += img[(by * factor + y) * SIDE + bx * factor + x];
                    }
                }
                out.push(acc / (factor * factor) as f32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_preserves_mass_and_shape() {
        let d = generate_mnist_like(4, 1);
        let small = downsample(d.images(), 4);
        assert_eq!(small.len(), 4 * 49);
        // Mean pixel value is preserved by average pooling.
        let mean_big: f32 = d.images().iter().sum::<f32>() / d.images().len() as f32;
        let mean_small: f32 = small.iter().sum::<f32>() / small.len() as f32;
        assert!((mean_big - mean_small).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "factor must divide")]
    fn downsample_rejects_bad_factor() {
        let d = generate_mnist_like(1, 1);
        let _ = downsample(d.images(), 5);
    }

    #[test]
    fn dataset_has_balanced_classes_and_valid_pixels() {
        let d = generate_mnist_like(100, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.sample_len(), IMAGE_LEN);
        for c in 0..CLASSES {
            assert_eq!(d.labels().iter().filter(|&&l| l as usize == c).count(), 10);
        }
        assert!(d.images().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn images_are_deterministic_per_seed() {
        assert_eq!(generate_mnist_like(20, 7), generate_mnist_like(20, 7));
        assert_ne!(generate_mnist_like(20, 7), generate_mnist_like(20, 8));
    }

    #[test]
    fn same_class_samples_differ_but_correlate() {
        let d = generate_mnist_like(30, 3);
        // Samples 0 and 10 are both digit '0' but jittered differently.
        let a = d.sample(0);
        let b = d.sample(10);
        assert_ne!(a, b);
        // Different digits are less similar than same digits on average:
        let dot = |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(a, b)| a * b).sum() };
        let same = dot(a, b);
        let diff = dot(a, d.sample(1)); // digit '1'
        assert!(
            same > diff,
            "same-class correlation {same} <= cross-class {diff}"
        );
    }

    #[test]
    fn digit_one_is_sparser_than_digit_eight() {
        let d = generate_mnist_like(20, 5);
        let mass = |s: &[f32]| -> f32 { s.iter().sum() };
        // Index 1 is a '1', index 8 is an '8'.
        assert!(mass(d.sample(1)) < mass(d.sample(8)));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn zero_samples_rejected() {
        let _ = generate_mnist_like(0, 0);
    }
}
