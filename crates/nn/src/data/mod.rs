//! Procedural datasets.
//!
//! The paper evaluates on MNIST and CIFAR-10; this offline reproduction
//! generates *procedural stand-ins* with the properties the experiments
//! need: 10 visually structured classes, enough intra-class variation that a
//! classifier must genuinely generalize, and high (>95%) achievable clean
//! accuracy that degrades when weights are corrupted (see DESIGN.md for the
//! substitution rationale).

pub mod synth_cifar;
pub mod synth_mnist;

pub use synth_cifar::generate_cifar_like;
pub use synth_mnist::generate_mnist_like;

/// A labelled image dataset, flattened sample-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<u8>,
    sample_len: usize,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are inconsistent, `sample_len` is zero,
    /// or any label is out of range.
    #[must_use]
    pub fn new(images: Vec<f32>, labels: Vec<u8>, sample_len: usize, classes: usize) -> Self {
        assert!(sample_len > 0, "sample length must be positive");
        assert!(classes > 0, "class count must be positive");
        assert_eq!(
            images.len(),
            labels.len() * sample_len,
            "image buffer length mismatch"
        );
        assert!(
            labels.iter().all(|&l| (l as usize) < classes),
            "label out of range"
        );
        Self {
            images,
            labels,
            sample_len,
            classes,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has zero samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Flattened images.
    #[must_use]
    pub fn images(&self) -> &[f32] {
        &self.images
    }

    /// Labels.
    #[must_use]
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Per-sample feature count.
    #[must_use]
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// One sample's features.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        assert!(i < self.len(), "sample {i} out of range");
        &self.images[i * self.sample_len..(i + 1) * self.sample_len]
    }

    /// The first `n` samples as a new dataset (cheap experiment scaling).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset size.
    #[must_use]
    pub fn take(&self, n: usize) -> Self {
        assert!(n > 0 && n <= self.len(), "take({n}) out of range");
        Self {
            images: self.images[..n * self.sample_len].to_vec(),
            labels: self.labels[..n].to_vec(),
            sample_len: self.sample_len,
            classes: self.classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accessors_are_consistent() {
        let d = Dataset::new(vec![0.0; 12], vec![0, 1, 2], 4, 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sample_len(), 4);
        assert_eq!(d.sample(2), &[0.0; 4]);
        assert_eq!(d.classes(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn take_truncates() {
        let d = Dataset::new((0..12).map(|i| i as f32).collect(), vec![0, 1, 2], 4, 3);
        let t = d.take(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.images().len(), 8);
        assert_eq!(t.labels(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_validated() {
        let _ = Dataset::new(vec![0.0; 4], vec![7], 4, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn buffer_lengths_validated() {
        let _ = Dataset::new(vec![0.0; 5], vec![0], 4, 3);
    }
}
