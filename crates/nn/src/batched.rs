//! Trial-batched forward evaluation with incremental re-evaluation.
//!
//! Monte-Carlo fault-injection trials at a fixed voltage share the clean
//! quantized activations: only the handful of weight words (and, at very low
//! voltages, input words) flipped by the overlay differ between trials. This
//! module exploits that by computing the clean forward pass **once** per
//! evaluation ([`CleanForward`]) and then, per trial, recomputing only what a
//! corrupted network can actually change:
//!
//! * images whose *input* words were flipped are re-run from layer 0;
//! * for weight corruption, everything upstream of the first dirty layer is
//!   reused from the cache, and when the first dirty layer's damage is
//!   confined to a few output columns (dense) or channels (conv), only those
//!   are recomputed before resuming the full pass downstream
//!   ([`LayerWork::DenseColumns`] / [`LayerWork::ConvChannels`]);
//! * trials that touch nothing return the cached clean correct-count for
//!   free.
//!
//! Everything is **bit-identical** to the scalar
//! [`Network::accuracy`] path: the dense kernels are the exact register-tiled
//! rewrites from [`crate::gemm`], per-image results are independent of batch
//! grouping (every layer computes each output element from a single sample),
//! and the correct-count is an integer. The differential wall in
//! dante-verify and `tests/differential.rs` holds this equivalence under
//! random fault overlays, shrinking any mismatch to a 1-minimal set.

use crate::gemm;
use crate::layers::{Conv2d, Layer};
use crate::network::Network;
use crate::tensor::argmax;

/// Mirror of the scalar path's internal evaluation chunk
/// ([`Network::accuracy`] batches 256 images at a time). Equality of results
/// does not depend on this (per-image bits are grouping-independent), but
/// matching it keeps cache behaviour comparable.
const CHUNK: usize = 256;

/// Default activation-cache budget in `f32` elements (256 MiB). Workloads
/// whose per-layer activations over the full test set exceed this (e.g. the
/// AlexNet conv prefix) drop to a light cache — clean predictions only —
/// and trials recompute every image; results are unchanged, only the
/// incremental shortcuts are lost.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Clean-network activations and predictions over a full test set.
#[derive(Debug, Clone)]
pub struct CleanForward {
    n: usize,
    /// `acts[l]` = input to layer `l` for every image, row-major
    /// (`n x in_len(l)`); `acts[layers.len()]` = the logits. `acts[0]` is
    /// left empty — trial inputs always come from the caller's buffer.
    /// `None` when the budget forced a light cache.
    acts: Option<Vec<Vec<f32>>>,
    correct: Vec<bool>,
    correct_count: usize,
}

impl CleanForward {
    /// Runs the clean forward pass over `inputs` and caches per-layer
    /// activations (subject to [`DEFAULT_CACHE_BUDGET`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != labels.len() * net.in_len()`.
    #[must_use]
    pub fn build(net: &Network, inputs: &[f32], labels: &[u8]) -> Self {
        Self::with_cache_budget(net, inputs, labels, DEFAULT_CACHE_BUDGET)
    }

    /// [`Self::build`] with an explicit activation budget in `f32` elements.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != labels.len() * net.in_len()`.
    #[must_use]
    pub fn with_cache_budget(
        net: &Network,
        inputs: &[f32],
        labels: &[u8],
        max_floats: usize,
    ) -> Self {
        let n = labels.len();
        assert_eq!(
            inputs.len(),
            n * net.in_len(),
            "image buffer length mismatch"
        );
        let layers = net.layers();
        let cache_floats: usize = layers.iter().map(|l| n * l.out_len()).sum();
        let mut correct = Vec::with_capacity(n);
        let classes = net.out_len();

        let acts = if cache_floats <= max_floats {
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(layers.len() + 1);
            acts.push(Vec::new());
            // First layer reads straight from `inputs`; later layers from the
            // previous cache entry. Chunked so conv fallbacks allocate small.
            for (l, layer) in layers.iter().enumerate() {
                let mut y = vec![0.0f32; n * layer.out_len()];
                for start in (0..n).step_by(CHUNK) {
                    let end = (start + CHUNK).min(n);
                    let b = end - start;
                    let (in_l, out_l) = (layer.in_len(), layer.out_len());
                    let x = if l == 0 {
                        &inputs[start * in_l..end * in_l]
                    } else {
                        &acts[l][start * in_l..end * in_l]
                    };
                    let yo = &mut y[start * out_l..end * out_l];
                    forward_layer_into(layer, x, b, yo);
                }
                acts.push(y);
            }
            let logits = acts.last().expect("non-empty network");
            for (i, &label) in labels.iter().enumerate() {
                correct.push(argmax(&logits[i * classes..(i + 1) * classes]) == usize::from(label));
            }
            Some(acts)
        } else {
            // Light cache: clean predictions only, via the same exact kernels.
            let mut ping = Vec::new();
            let mut pong = Vec::new();
            for start in (0..n).step_by(CHUNK) {
                let end = (start + CHUNK).min(n);
                let b = end - start;
                ping.clear();
                ping.extend_from_slice(&inputs[start * net.in_len()..end * net.in_len()]);
                forward_from(net, 0, b, &mut ping, &mut pong);
                for (slot, &label) in labels[start..end].iter().enumerate() {
                    correct.push(
                        argmax(&ping[slot * classes..(slot + 1) * classes]) == usize::from(label),
                    );
                }
            }
            None
        };

        let correct_count = correct.iter().filter(|&&c| c).count();
        Self {
            n,
            acts,
            correct,
            correct_count,
        }
    }

    /// Number of cached images.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Correct predictions of the clean network.
    #[must_use]
    pub fn correct_count(&self) -> usize {
        self.correct_count
    }

    /// Clean accuracy, identical to [`Network::accuracy`] (0.0 for an empty
    /// set).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.correct_count as f64 / self.n as f64
        }
    }

    /// Whether per-layer activations were cached (false = light cache; every
    /// trial recomputes all images).
    #[must_use]
    pub fn has_activations(&self) -> bool {
        self.acts.is_some()
    }
}

/// What the first corrupted layer needs recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerWork<'a> {
    /// Recompute the layer's full output (damage too spread out, or the
    /// caller did not localize it).
    Full,
    /// Only these output columns of a dense layer changed (sorted, deduped).
    DenseColumns(&'a [usize]),
    /// Only these output channels of a conv layer changed (sorted, deduped).
    ConvChannels(&'a [usize]),
}

/// Reusable buffers for [`trial_correct_count`]; steady-state trials on
/// dense networks allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct BatchedScratch {
    clean_idx: Vec<usize>,
    ping: Vec<f32>,
    pong: Vec<f32>,
    col_buf: Vec<f32>,
}

impl BatchedScratch {
    /// Creates an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Correct-prediction count of a corrupted `net` over the test set,
/// bit-identical to `(net.accuracy(inputs, labels) * n)` on the scalar path.
///
/// Contract (the caller derives all of this from the overlay's sorted
/// touched-word list):
///
/// * `inputs` is the full image buffer for this trial; rows **not** in
///   `dirty_images` must equal the clean images the cache was built from.
/// * `dirty_images` is sorted and deduped.
/// * `first_dirty = Some((l, work))` names the first layer whose parameters
///   differ from the clean network; all earlier layers must be clean.
///   `None` means all weights are clean (input corruption only).
/// * [`LayerWork::DenseColumns`] / [`LayerWork::ConvChannels`] additionally
///   promise the damage at that layer is confined to those columns/channels.
///
/// # Panics
///
/// Panics on length mismatches, an out-of-range layer index, or a
/// [`LayerWork`] variant that does not match the layer's kind.
pub fn trial_correct_count(
    net: &Network,
    cache: &CleanForward,
    labels: &[u8],
    inputs: &[f32],
    dirty_images: &[usize],
    first_dirty: Option<(usize, LayerWork<'_>)>,
    scratch: &mut BatchedScratch,
) -> usize {
    let n = cache.n;
    assert_eq!(labels.len(), n, "label count mismatch");
    assert_eq!(
        inputs.len(),
        n * net.in_len(),
        "image buffer length mismatch"
    );
    let classes = net.out_len();

    let Some((l0, work)) = first_dirty else {
        // Clean weights: only dirty images can change their prediction.
        let mut count = cache.correct_count;
        for chunk in dirty_images.chunks(CHUNK) {
            let b = chunk.len();
            gather(inputs, net.in_len(), chunk, &mut scratch.ping);
            forward_from(net, 0, b, &mut scratch.ping, &mut scratch.pong);
            for (slot, &img) in chunk.iter().enumerate() {
                let now = argmax(&scratch.ping[slot * classes..(slot + 1) * classes])
                    == usize::from(labels[img]);
                count = count - usize::from(cache.correct[img]) + usize::from(now);
            }
        }
        return count;
    };

    assert!(l0 < net.layers().len(), "dirty layer index out of range");

    let Some(acts) = &cache.acts else {
        // Light cache: no activations to resume from; recompute everything.
        let mut count = 0usize;
        for start in (0..n).step_by(CHUNK) {
            let end = (start + CHUNK).min(n);
            let b = end - start;
            scratch.ping.clear();
            scratch
                .ping
                .extend_from_slice(&inputs[start * net.in_len()..end * net.in_len()]);
            forward_from(net, 0, b, &mut scratch.ping, &mut scratch.pong);
            for (slot, &label) in labels[start..end].iter().enumerate() {
                count += usize::from(
                    argmax(&scratch.ping[slot * classes..(slot + 1) * classes])
                        == usize::from(label),
                );
            }
        }
        return count;
    };

    let mut count = 0usize;

    // Dirty images run the corrupted net from layer 0.
    for chunk in dirty_images.chunks(CHUNK) {
        let b = chunk.len();
        gather(inputs, net.in_len(), chunk, &mut scratch.ping);
        forward_from(net, 0, b, &mut scratch.ping, &mut scratch.pong);
        for (slot, &img) in chunk.iter().enumerate() {
            count += usize::from(
                argmax(&scratch.ping[slot * classes..(slot + 1) * classes])
                    == usize::from(labels[img]),
            );
        }
    }

    // Clean images resume from the cached input to the first dirty layer.
    scratch.clean_idx.clear();
    {
        let mut dirty_it = dirty_images.iter().peekable();
        for img in 0..n {
            if dirty_it.peek() == Some(&&img) {
                dirty_it.next();
            } else {
                scratch.clean_idx.push(img);
            }
        }
    }
    let layer = &net.layers()[l0];
    let (in_l, out_l) = (layer.in_len(), layer.out_len());
    // `clean_idx` is iterated while the other scratch buffers mutate; take
    // it out and put it back rather than fight the borrow checker.
    let clean_idx = std::mem::take(&mut scratch.clean_idx);
    // acts[0] is never cached: layer 0 reads the caller's image buffer
    // (identical to the clean images for every clean-index row).
    let l0_input: &[f32] = if l0 == 0 { inputs } else { &acts[l0] };
    for chunk in clean_idx.chunks(CHUNK) {
        let b = chunk.len();
        gather(l0_input, in_l, chunk, &mut scratch.ping);
        match work {
            LayerWork::Full => {
                scratch.pong.resize(b * out_l, 0.0);
                let (x, y) = (&scratch.ping[..b * in_l], &mut scratch.pong[..b * out_l]);
                forward_layer_into(layer, x, b, y);
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
            LayerWork::DenseColumns(cols) => {
                let Layer::Dense(d) = layer else {
                    panic!("DenseColumns on a non-dense layer");
                };
                // Seed with the cached clean outputs, then redo dirty cols.
                gather(&acts[l0 + 1], out_l, chunk, &mut scratch.pong);
                gemm::dense_cols_into(
                    &scratch.ping[..b * in_l],
                    d.weights().as_slice(),
                    d.bias(),
                    b,
                    in_l,
                    out_l,
                    cols,
                    &mut scratch.col_buf,
                    &mut scratch.pong[..b * out_l],
                );
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
            LayerWork::ConvChannels(channels) => {
                let Layer::Conv2d(conv) = layer else {
                    panic!("ConvChannels on a non-conv layer");
                };
                gather(&acts[l0 + 1], out_l, chunk, &mut scratch.pong);
                conv_channels_into(
                    conv,
                    &scratch.ping[..b * in_l],
                    b,
                    channels,
                    &mut scratch.pong[..b * out_l],
                );
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
        }
        forward_from(net, l0 + 1, b, &mut scratch.ping, &mut scratch.pong);
        for (slot, &img) in chunk.iter().enumerate() {
            count += usize::from(
                argmax(&scratch.ping[slot * classes..(slot + 1) * classes])
                    == usize::from(labels[img]),
            );
        }
    }
    scratch.clean_idx = clean_idx;
    count
}

/// Gathers `rows` of width `width` from `src` into `dst` (resized).
fn gather(src: &[f32], width: usize, rows: &[usize], dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(rows.len() * width);
    for &r in rows {
        dst.extend_from_slice(&src[r * width..(r + 1) * width]);
    }
}

/// Runs layers `start..` over a batch held in `cur` (ping-pong with `tmp`);
/// on return `cur` holds the logits. Dense and ReLU are allocation-free;
/// conv/pool fall back to the layer's own forward.
fn forward_from(net: &Network, start: usize, b: usize, cur: &mut Vec<f32>, tmp: &mut Vec<f32>) {
    for layer in &net.layers()[start..] {
        let (in_l, out_l) = (layer.in_len(), layer.out_len());
        match layer {
            Layer::Dense(d) => {
                tmp.resize(b * out_l, 0.0);
                gemm::matmul_exact_into(
                    &cur[..b * in_l],
                    d.weights().as_slice(),
                    b,
                    in_l,
                    out_l,
                    &mut tmp[..b * out_l],
                );
                for row in tmp.chunks_exact_mut(out_l) {
                    for (o, &bias) in row.iter_mut().zip(d.bias()) {
                        *o += bias;
                    }
                }
                std::mem::swap(cur, tmp);
            }
            Layer::Relu(_) => {
                for v in &mut cur[..b * out_l] {
                    *v = v.max(0.0);
                }
            }
            other => {
                let y = other.forward(&cur[..b * in_l], b);
                cur.clear();
                cur.extend_from_slice(&y);
            }
        }
    }
}

/// One layer's forward into a preallocated output slice, using the exact
/// kernels where available.
fn forward_layer_into(layer: &Layer, x: &[f32], b: usize, y: &mut [f32]) {
    let (in_l, out_l) = (layer.in_len(), layer.out_len());
    debug_assert_eq!(x.len(), b * in_l);
    debug_assert_eq!(y.len(), b * out_l);
    match layer {
        Layer::Dense(d) => {
            gemm::matmul_exact_into(x, d.weights().as_slice(), b, in_l, out_l, y);
            for row in y.chunks_exact_mut(out_l) {
                for (o, &bias) in row.iter_mut().zip(d.bias()) {
                    *o += bias;
                }
            }
        }
        Layer::Relu(_) => {
            for (o, &v) in y.iter_mut().zip(x) {
                *o = v.max(0.0);
            }
        }
        other => {
            y.copy_from_slice(&other.forward(x, b));
        }
    }
}

/// Recomputes only the given output channels of a conv layer, bit-identical
/// to [`Conv2d::forward`] for those channels; other channels of `y` are left
/// untouched.
fn conv_channels_into(conv: &Conv2d, x: &[f32], batch: usize, channels: &[usize], y: &mut [f32]) {
    let isz = conv.in_shape().len();
    let out = conv.out_shape();
    assert_eq!(x.len(), batch * isz, "conv input length mismatch");
    assert_eq!(y.len(), batch * out.len(), "conv output length mismatch");
    let (ih, iw) = (conv.in_shape().h, conv.in_shape().w);
    let (in_c, k, p) = (conv.in_shape().c, conv.kernel(), conv.padding());
    let weights = conv.weights();
    let bias = conv.bias();
    for b in 0..batch {
        let xin = &x[b * isz..(b + 1) * isz];
        let yout = &mut y[b * out.len()..(b + 1) * out.len()];
        for &oc in channels {
            assert!(oc < out.c, "channel {oc} out of range");
            for orow in 0..out.h {
                for ocol in 0..out.w {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for kr in 0..k {
                            let ir = orow + kr;
                            if ir < p || ir - p >= ih {
                                continue;
                            }
                            let ir = ir - p;
                            for kc in 0..k {
                                let icw = ocol + kc;
                                if icw < p || icw - p >= iw {
                                    continue;
                                }
                                let icw = icw - p;
                                acc += weights[((oc * in_c + ic) * k + kr) * k + kc]
                                    * xin[(ic * ih + ir) * iw + icw];
                            }
                        }
                    }
                    yout[(oc * out.h + orow) * out.w + ocol] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, MaxPool2d, Relu, Shape3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fc_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(12, 9, &mut rng)),
            Layer::Relu(Relu::new(9)),
            Layer::Dense(Dense::new(9, 7, &mut rng)),
            Layer::Relu(Relu::new(7)),
            Layer::Dense(Dense::new(7, 4, &mut rng)),
        ])
        .expect("valid net")
    }

    fn conv_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(4 * 16, 3, &mut rng)),
        ])
        .expect("valid net")
    }

    fn dataset(rng: &mut StdRng, n: usize, in_len: usize, classes: u8) -> (Vec<f32>, Vec<u8>) {
        let inputs = (0..n * in_len).map(|_| rng.gen::<f32>()).collect();
        let labels = (0..n).map(|_| rng.gen::<u8>() % classes).collect();
        (inputs, labels)
    }

    fn scalar_count(net: &Network, inputs: &[f32], labels: &[u8]) -> usize {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let c = (net.accuracy(inputs, labels) * labels.len() as f64).round() as usize;
        c
    }

    #[test]
    fn clean_cache_matches_scalar_accuracy_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = fc_net(10);
        let (inputs, labels) = dataset(&mut rng, 300, 12, 4);
        let cache = CleanForward::build(&net, &inputs, &labels);
        assert!(cache.has_activations());
        assert!(cache.accuracy().to_bits() == net.accuracy(&inputs, &labels).to_bits());

        let mut scratch = BatchedScratch::new();
        let count = trial_correct_count(&net, &cache, &labels, &inputs, &[], None, &mut scratch);
        assert_eq!(count, cache.correct_count());
    }

    #[test]
    fn corrupted_weights_match_scalar_under_all_work_variants() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = fc_net(11);
        let (inputs, labels) = dataset(&mut rng, 130, 12, 4);
        let cache = CleanForward::build(&net, &inputs, &labels);
        let mut scratch = BatchedScratch::new();

        // Corrupt two columns of the middle dense layer (index 2).
        let mut corrupted = net.clone();
        let cols = [1usize, 5];
        if let Layer::Dense(d) = &mut corrupted.layers_mut()[2] {
            for r in 0..9 {
                for &c in &cols {
                    let v = d.weights().get(r, c);
                    d.weights_mut().set(r, c, v * -3.0 + 0.7);
                }
            }
        } else {
            panic!("layer 2 should be dense");
        }
        let want = scalar_count(&corrupted, &inputs, &labels);

        for work in [LayerWork::Full, LayerWork::DenseColumns(&cols)] {
            let got = trial_correct_count(
                &corrupted,
                &cache,
                &labels,
                &inputs,
                &[],
                Some((2, work)),
                &mut scratch,
            );
            assert_eq!(got, want, "work variant {work:?}");
        }
    }

    #[test]
    fn dirty_images_match_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = fc_net(12);
        let (inputs, labels) = dataset(&mut rng, 64, 12, 4);
        let cache = CleanForward::build(&net, &inputs, &labels);
        let mut scratch = BatchedScratch::new();

        let mut corrupted_inputs = inputs.clone();
        let dirty = [3usize, 17, 63];
        for &img in &dirty {
            for v in &mut corrupted_inputs[img * 12..(img + 1) * 12] {
                *v = 1.0 - *v;
            }
        }
        let want = scalar_count(&net, &corrupted_inputs, &labels);
        let got = trial_correct_count(
            &net,
            &cache,
            &labels,
            &corrupted_inputs,
            &dirty,
            None,
            &mut scratch,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn conv_channel_work_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = conv_net(13);
        let in_len = net.in_len();
        let (inputs, labels) = dataset(&mut rng, 40, in_len, 3);
        let cache = CleanForward::build(&net, &inputs, &labels);
        let mut scratch = BatchedScratch::new();

        let mut corrupted = net.clone();
        let channels = [2usize];
        if let Layer::Conv2d(conv) = &mut corrupted.layers_mut()[0] {
            let per_ch = conv.weights().len() / 4;
            for w in &mut conv.weights_mut()[2 * per_ch..3 * per_ch] {
                *w = -*w * 2.0;
            }
        } else {
            panic!("layer 0 should be conv");
        }
        let want = scalar_count(&corrupted, &inputs, &labels);
        for work in [LayerWork::Full, LayerWork::ConvChannels(&channels)] {
            let got = trial_correct_count(
                &corrupted,
                &cache,
                &labels,
                &inputs,
                &[],
                Some((0, work)),
                &mut scratch,
            );
            assert_eq!(got, want, "work variant {work:?}");
        }
    }

    #[test]
    fn light_cache_still_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = fc_net(14);
        let (inputs, labels) = dataset(&mut rng, 80, 12, 4);
        // Budget 0 forces the light cache.
        let cache = CleanForward::with_cache_budget(&net, &inputs, &labels, 0);
        assert!(!cache.has_activations());
        assert_eq!(
            cache.accuracy().to_bits(),
            net.accuracy(&inputs, &labels).to_bits()
        );
        let mut scratch = BatchedScratch::new();

        let mut corrupted = net.clone();
        if let Layer::Dense(d) = &mut corrupted.layers_mut()[0] {
            let v = d.weights().get(0, 0);
            d.weights_mut().set(0, 0, v + 5.0);
        }
        let want = scalar_count(&corrupted, &inputs, &labels);
        let got = trial_correct_count(
            &corrupted,
            &cache,
            &labels,
            &inputs,
            &[],
            Some((0, LayerWork::Full)),
            &mut scratch,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn combined_weight_and_input_corruption_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = fc_net(15);
        let (inputs, labels) = dataset(&mut rng, 300, 12, 4);
        let cache = CleanForward::build(&net, &inputs, &labels);
        let mut scratch = BatchedScratch::new();

        let mut corrupted = net.clone();
        let cols = [0usize];
        if let Layer::Dense(d) = &mut corrupted.layers_mut()[4] {
            for r in 0..7 {
                let v = d.weights().get(r, 0);
                d.weights_mut().set(r, 0, v - 2.5);
            }
        }
        let mut corrupted_inputs = inputs.clone();
        let dirty: Vec<usize> = (0..300).step_by(7).collect();
        for &img in &dirty {
            for v in &mut corrupted_inputs[img * 12..(img + 1) * 12] {
                *v *= -0.5;
            }
        }
        let want = scalar_count(&corrupted, &corrupted_inputs, &labels);
        let got = trial_correct_count(
            &corrupted,
            &cache,
            &labels,
            &corrupted_inputs,
            &dirty,
            Some((4, LayerWork::DenseColumns(&cols))),
            &mut scratch,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn empty_test_set_reports_zero() {
        let net = fc_net(16);
        let cache = CleanForward::build(&net, &[], &[]);
        assert_eq!(cache.accuracy(), 0.0);
        let mut scratch = BatchedScratch::new();
        assert_eq!(
            trial_correct_count(&net, &cache, &[], &[], &[], None, &mut scratch),
            0
        );
    }
}
