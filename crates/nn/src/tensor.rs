//! A minimal dense matrix type for the NN substrate.
//!
//! The network layers operate on batches laid out as row-major matrices
//! (`rows = batch`, `cols = features`). Only the operations the layers need
//! are provided; this is deliberately not a general linear-algebra library.

use core::fmt;

/// A row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use dante_nn::tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.dims(), (2, 2));
/// assert_eq!(c.get(0, 0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length does not match dimensions"
        );
        Self { rows, cols, data }
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs^T` (avoids materializing the transpose).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    #[must_use]
    pub fn matmul_transposed(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) {
        assert_eq!(self.dims(), other.dims(), "add_scaled dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Frobenius norm of the matrix.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

/// Numerically stable softmax over the last axis of a batch.
///
/// `logits` is `batch` rows of `classes` values, flattened row-major; the
/// result has the same layout with every row summing to 1.
///
/// # Panics
///
/// Panics if the lengths are inconsistent or `classes == 0`.
#[must_use]
pub fn softmax_batch(logits: &[f32], batch: usize, classes: usize) -> Vec<f32> {
    assert!(classes > 0, "softmax needs at least one class");
    assert_eq!(logits.len(), batch * classes, "logit length mismatch");
    let mut out = vec![0.0f32; logits.len()];
    for b in 0..batch {
        let row = &logits[b * classes..(b + 1) * classes];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for (o, &x) in out[b * classes..(b + 1) * classes].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        for o in &mut out[b * classes..(b + 1) * classes] {
            *o /= sum;
        }
    }
    out
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if `xs` is empty.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 3.0, 1.0, -1.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.25).collect());
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transposed(&b);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_is_preserved() {
        let logits = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let s = softmax_batch(&logits, 2, 3);
        for b in 0..2 {
            let row = &s[b * 3..(b + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row[2] > row[1] && row[1] > row[0]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let s = softmax_batch(&[1000.0, 1001.0], 1, 2);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!((s[0] + s[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[0.1, 0.9, 0.9, 0.2]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_checks_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let _ = Matrix::zeros(1, 1).get(0, 1);
    }
}
