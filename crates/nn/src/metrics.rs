//! Classification metrics beyond plain accuracy: confusion matrices and
//! per-class accuracy, used by the fault studies to see *which* classes a
//! corrupted network loses first.

use crate::network::Network;

/// A `classes x classes` confusion matrix (`rows = true label`,
/// `cols = prediction`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix by running `net` over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent buffer lengths or a label outside the
    /// network's output range.
    #[must_use]
    pub fn from_network(net: &Network, images: &[f32], labels: &[u8]) -> Self {
        let classes = net.out_len();
        assert_eq!(
            images.len(),
            labels.len() * net.in_len(),
            "image buffer length mismatch"
        );
        let mut counts = vec![0u64; classes * classes];
        let in_len = net.in_len();
        let chunk = 256;
        for start in (0..labels.len()).step_by(chunk) {
            let end = (start + chunk).min(labels.len());
            let preds = net.predict(&images[start * in_len..end * in_len], end - start);
            for (p, &l) in preds.iter().zip(&labels[start..end]) {
                let l = usize::from(l);
                assert!(l < classes, "label {l} out of range for {classes} classes");
                counts[l * classes + p] += 1;
            }
        }
        Self { classes, counts }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true label `truth` predicted as `pred`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        assert!(
            truth < self.classes && pred < self.classes,
            "index out of range"
        );
        self.counts[truth * self.classes + pred]
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace over total).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class recall (`None` for classes absent from the test set).
    #[must_use]
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|c| {
                let row: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
                (row > 0).then(|| self.count(c, c) as f64 / row as f64)
            })
            .collect()
    }

    /// The most confused (true, predicted) off-diagonal pair, if any
    /// misclassification occurred.
    #[must_use]
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t != p {
                    let c = self.count(t, p);
                    if c > 0 && best.is_none_or(|(_, _, b)| c > b) {
                        best = Some((t, p, c));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_toy() -> (Network, Vec<f32>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(6, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 3, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let c = (i % 3) as u8;
            for j in 0..6 {
                let on = j % 3 == usize::from(c);
                images.push(if on { 0.9 } else { 0.1 } + ((i + j) % 4) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = crate::train::SgdConfig {
            epochs: 25,
            batch_size: 10,
            ..Default::default()
        };
        crate::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        (net, images, labels)
    }

    #[test]
    fn matrix_totals_and_accuracy_agree_with_network_accuracy() {
        let (net, images, labels) = trained_toy();
        let cm = ConfusionMatrix::from_network(&net, &images, &labels);
        assert_eq!(cm.total(), 90);
        assert!((cm.accuracy() - net.accuracy(&images, &labels)).abs() < 1e-12);
        assert_eq!(cm.classes(), 3);
    }

    #[test]
    fn perfect_classifier_has_diagonal_matrix() {
        let (net, images, labels) = trained_toy();
        let cm = ConfusionMatrix::from_network(&net, &images, &labels);
        if (cm.accuracy() - 1.0).abs() < 1e-12 {
            assert_eq!(cm.worst_confusion(), None);
            for r in cm.per_class_recall() {
                assert_eq!(r, Some(1.0));
            }
        }
    }

    #[test]
    fn recall_handles_absent_classes() {
        let (net, images, labels) = trained_toy();
        // Keep only class-0 samples.
        let mut imgs = Vec::new();
        let mut labs = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if l == 0 {
                imgs.extend_from_slice(&images[i * 6..(i + 1) * 6]);
                labs.push(l);
            }
        }
        let cm = ConfusionMatrix::from_network(&net, &imgs, &labs);
        let recall = cm.per_class_recall();
        assert!(recall[0].is_some());
        assert_eq!(recall[1], None);
        assert_eq!(recall[2], None);
    }

    #[test]
    fn worst_confusion_finds_the_biggest_off_diagonal() {
        // Hand-build a matrix via a constant classifier: predict argmax of
        // untrained logits for identical inputs -> everything lands in one
        // column, so the worst confusion involves that column.
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(vec![Layer::Dense(Dense::new(4, 3, &mut rng))]).unwrap();
        let images = vec![0.5f32; 4 * 30];
        let labels: Vec<u8> = (0..30).map(|i| (i % 3) as u8).collect();
        let cm = ConfusionMatrix::from_network(&net, &images, &labels);
        let (_, pred, count) = cm
            .worst_confusion()
            .expect("a constant classifier confuses");
        // All samples predicted the same class; 20 of 30 are wrong, split
        // into two off-diagonal cells of 10.
        assert_eq!(count, 10);
        let col_total: u64 = (0..3).map(|t| cm.count(t, pred)).sum();
        assert_eq!(col_total, 30);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn buffer_lengths_validated() {
        let (net, images, _) = trained_toy();
        let _ = ConfusionMatrix::from_network(&net, &images, &[0u8; 3]);
    }
}
