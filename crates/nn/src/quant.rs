//! Fixed-point quantization — the data format weights and inputs take inside
//! the accelerator's SRAM.
//!
//! The taped-out chip stores 16-bit fixed-point values, four to a 64-bit SRAM
//! word. Quantization matters to the fault study because *which bit flips*
//! determines the damage: an MSB flip in a Q2.14 weight changes it by 2.0,
//! an LSB flip by 6e-5. [`QuantizedTensor`] round-trips between `f32`
//! tensors and packed 64-bit SRAM words so a
//! `FaultOverlay`-style (see `dante-sram`) bit corruption
//! can be applied to the exact bit image the hardware would hold.

use core::fmt;

/// A fixed-point number format.
///
/// Only 8- and 16-bit containers are supported (they pack evenly into the
/// chip's 64-bit SRAM words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    bits: u8,
    frac_bits: u8,
    signed: bool,
}

impl QFormat {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 8 or 16, and `frac_bits` fits inside the
    /// container (leaving a sign bit when `signed`).
    #[must_use]
    pub fn new(bits: u8, frac_bits: u8, signed: bool) -> Self {
        assert!(bits == 8 || bits == 16, "container must be 8 or 16 bits");
        let max_frac = if signed { bits - 1 } else { bits };
        assert!(
            frac_bits <= max_frac,
            "frac_bits {frac_bits} too large for {bits}-bit format"
        );
        Self {
            bits,
            frac_bits,
            signed,
        }
    }

    /// Q2.14: signed 16-bit with 14 fraction bits, range `[-2, 2)` — the
    /// chip's weight format.
    #[must_use]
    pub fn weight_q2_14() -> Self {
        Self::new(16, 14, true)
    }

    /// UQ0.8: unsigned 8-bit with 8 fraction bits, range `[0, 1)` — the
    /// chip's input-pixel format.
    #[must_use]
    pub fn input_uq0_8() -> Self {
        Self::new(8, 8, false)
    }

    /// Container width in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Fraction bit count.
    #[must_use]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Whether the format is signed (two's complement).
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Quantization step (value of one LSB).
    #[must_use]
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-i32::from(self.frac_bits))
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> f32 {
        let max_code = if self.signed {
            (1i32 << (self.bits - 1)) - 1
        } else {
            (1i32 << self.bits) - 1
        };
        max_code as f32 * self.step()
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min_value(&self) -> f32 {
        if self.signed {
            -((1i64 << (self.bits - 1)) as f32) * self.step()
        } else {
            0.0
        }
    }

    /// Quantizes a value to its raw bit pattern (saturating, round to
    /// nearest).
    #[must_use]
    pub fn quantize(&self, value: f32) -> u16 {
        let scaled =
            (f64::from(value) * f64::from((2.0f32).powi(i32::from(self.frac_bits)))).round();
        if self.signed {
            let lo = -(1i64 << (self.bits - 1));
            let hi = (1i64 << (self.bits - 1)) - 1;
            let code = (scaled as i64).clamp(lo, hi);
            (code as u16) & self.mask()
        } else {
            let hi = (1i64 << self.bits) - 1;
            let code = (scaled as i64).clamp(0, hi);
            code as u16
        }
    }

    /// Reconstructs the value of a raw bit pattern.
    #[must_use]
    pub fn dequantize(&self, raw: u16) -> f32 {
        let raw = raw & self.mask();
        let code = if self.signed {
            // Sign-extend from `bits` wide.
            let shift = 16 - self.bits;
            (((raw << shift) as i16) >> shift) as i32
        } else {
            i32::from(raw)
        };
        code as f32 * self.step()
    }

    fn mask(&self) -> u16 {
        if self.bits == 16 {
            u16::MAX
        } else {
            (1u16 << self.bits) - 1
        }
    }

    /// Lanes per 64-bit SRAM word.
    #[must_use]
    pub fn lanes_per_word(&self) -> usize {
        64 / usize::from(self.bits)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.signed { "Q" } else { "UQ" };
        write!(
            f,
            "{}{}.{}",
            sign,
            self.bits - self.frac_bits - u8::from(self.signed),
            self.frac_bits
        )
    }
}

/// A tensor quantized to a fixed-point format, addressable both as values
/// and as packed SRAM words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedTensor {
    codes: Vec<u16>,
    format: QFormat,
}

impl QuantizedTensor {
    /// Quantizes a float tensor.
    #[must_use]
    pub fn from_f32(values: &[f32], format: QFormat) -> Self {
        Self {
            codes: values.iter().map(|&v| format.quantize(v)).collect(),
            format,
        }
    }

    /// The format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Total bits of SRAM this tensor occupies.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.codes.len() * usize::from(self.format.bits())
    }

    /// Raw codes.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Dequantizes back to floats.
    #[must_use]
    pub fn to_f32(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.format.dequantize(c))
            .collect()
    }

    /// Packs the codes into 64-bit SRAM words (lane 0 in the low bits), as
    /// the chip's memory would hold them. The final word is zero-padded.
    #[must_use]
    pub fn to_packed_words(&self) -> Vec<u64> {
        let lanes = self.format.lanes_per_word();
        let bits = u32::from(self.format.bits());
        let mut words = vec![0u64; self.codes.len().div_ceil(lanes)];
        for (i, &code) in self.codes.iter().enumerate() {
            words[i / lanes] |= u64::from(code) << (bits * (i % lanes) as u32);
        }
        words
    }

    /// Replaces the codes from packed words (the inverse of
    /// [`Self::to_packed_words`]), e.g. after a fault overlay corrupted the
    /// bit image.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than this tensor requires.
    pub fn load_packed_words(&mut self, words: &[u64]) {
        let lanes = self.format.lanes_per_word();
        let bits = u32::from(self.format.bits());
        let needed = self.codes.len().div_ceil(lanes);
        assert!(
            words.len() >= needed,
            "need {needed} words, got {}",
            words.len()
        );
        let mask = u64::from(self.format.bits() == 16) * u64::from(u16::MAX)
            + u64::from(self.format.bits() == 8) * 0xFF;
        for (i, code) in self.codes.iter_mut().enumerate() {
            let w = words[i / lanes];
            *code = ((w >> (bits * (i % lanes) as u32)) & mask) as u16;
        }
    }

    /// Mean absolute quantization error against the original values.
    ///
    /// # Panics
    ///
    /// Panics if `original.len() != self.len()`.
    #[must_use]
    pub fn mean_abs_error(&self, original: &[f32]) -> f32 {
        assert_eq!(original.len(), self.len(), "length mismatch");
        if original.is_empty() {
            return 0.0;
        }
        let sum: f32 = self
            .to_f32()
            .iter()
            .zip(original)
            .map(|(q, o)| (q - o).abs())
            .sum();
        sum / original.len() as f32
    }
}

/// Per-tensor scaled fixed-point quantizer — the format the accelerator's
/// weight memory uses.
///
/// Each tensor is quantized against its own scale
/// `s = max|w| * 2^guard_bits / qmax`, i.e. the representable range covers
/// `2^guard_bits` times the tensor's actual magnitude. The guard bits are
/// the accumulation headroom a fixed-point MAC datapath reserves; they also
/// set the *severity* of an MSB flip (`2^guard_bits * max|w|`), which is the
/// knob that calibrates the accuracy-vs-voltage cliff of paper Fig. 2
/// (DESIGN.md Sec. 4). The default is 16-bit with 2 guard bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaledQuantizer {
    bits: u8,
    guard_bits: u8,
}

impl ScaledQuantizer {
    /// Creates a scaled quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 8 or 16 and `guard_bits < bits - 1`.
    #[must_use]
    pub fn new(bits: u8, guard_bits: u8) -> Self {
        assert!(bits == 8 || bits == 16, "container must be 8 or 16 bits");
        assert!(guard_bits < bits - 1, "guard bits leave no value bits");
        Self { bits, guard_bits }
    }

    /// The chip's weight format: 16-bit, 2 guard bits.
    #[must_use]
    pub fn weight_default() -> Self {
        Self::new(16, 2)
    }

    /// Container width in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Guard (headroom) bit count.
    #[must_use]
    pub fn guard_bits(&self) -> u8 {
        self.guard_bits
    }

    /// Quantizes a tensor with its own scale.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn quantize(&self, values: &[f32]) -> ScaledTensor {
        assert!(!values.is_empty(), "cannot quantize an empty tensor");
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-9);
        let qmax = ((1i32 << (self.bits - 1)) - 1) as f32;
        let scale = max_abs * (1u32 << self.guard_bits) as f32 / qmax;
        let mask = if self.bits == 16 { u16::MAX } else { 0xFF };
        let codes = values
            .iter()
            .map(|&v| {
                let code = (f64::from(v) / f64::from(scale)).round() as i64;
                let code = code.clamp(-(i64::from(qmax as i32)) - 1, i64::from(qmax as i32));
                (code as u16) & mask
            })
            .collect();
        ScaledTensor {
            codes,
            scale,
            bits: self.bits,
        }
    }
}

impl Default for ScaledQuantizer {
    fn default() -> Self {
        Self::weight_default()
    }
}

/// A tensor quantized with a per-tensor scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledTensor {
    codes: Vec<u16>,
    scale: f32,
    bits: u8,
}

impl ScaledTensor {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The per-tensor scale (value of one LSB).
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw code bit patterns.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Overwrites the raw bit pattern of element `index` — targeted fault
    /// injection for validation harnesses. `raw` is masked to the container
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_code(&mut self, index: usize, raw: u16) {
        let mask = if self.bits == 16 {
            u16::MAX
        } else {
            (1u16 << self.bits) - 1
        };
        self.codes[index] = raw & mask;
    }

    /// Container width in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Total SRAM bits occupied.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.codes.len() * usize::from(self.bits)
    }

    /// Dequantizes back to floats.
    #[must_use]
    pub fn to_f32(&self) -> Vec<f32> {
        let shift = 16 - self.bits;
        self.codes
            .iter()
            .map(|&raw| {
                let code = (((raw << shift) as i16) >> shift) as i32;
                code as f32 * self.scale
            })
            .collect()
    }

    /// Packs the codes into 64-bit SRAM words (lane 0 in the low bits).
    #[must_use]
    pub fn to_packed_words(&self) -> Vec<u64> {
        let lanes = 64 / usize::from(self.bits);
        let bits = u32::from(self.bits);
        let mut words = vec![0u64; self.codes.len().div_ceil(lanes)];
        for (i, &code) in self.codes.iter().enumerate() {
            words[i / lanes] |= u64::from(code) << (bits * (i % lanes) as u32);
        }
        words
    }

    /// Reloads codes from packed words (after a fault overlay).
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than this tensor requires.
    pub fn load_packed_words(&mut self, words: &[u64]) {
        let lanes = 64 / usize::from(self.bits);
        let bits = u32::from(self.bits);
        let needed = self.codes.len().div_ceil(lanes);
        assert!(
            words.len() >= needed,
            "need {needed} words, got {}",
            words.len()
        );
        let mask = if self.bits == 16 { 0xFFFFu64 } else { 0xFFu64 };
        for (i, code) in self.codes.iter_mut().enumerate() {
            *code = ((words[i / lanes] >> (bits * (i % lanes) as u32)) & mask) as u16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_format_bounds() {
        let q = QFormat::weight_q2_14();
        assert!((q.max_value() - (2.0 - q.step())).abs() < 1e-9);
        assert!((q.min_value() + 2.0).abs() < 1e-9);
        assert_eq!(q.lanes_per_word(), 4);
        assert_eq!(format!("{q}"), "Q1.14");
    }

    #[test]
    fn quantize_round_trips_within_half_step() {
        let q = QFormat::weight_q2_14();
        for &v in &[0.0f32, 0.5, -0.5, 1.999, -2.0, 0.123_456, -1.987_654] {
            let back = q.dequantize(q.quantize(v));
            let clamped = v.clamp(q.min_value(), q.max_value());
            assert!(
                (back - clamped).abs() <= q.step() * 0.5 + 1e-6,
                "v={v} back={back}"
            );
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::weight_q2_14();
        assert!((q.dequantize(q.quantize(10.0)) - q.max_value()).abs() < 1e-6);
        assert!((q.dequantize(q.quantize(-10.0)) - q.min_value()).abs() < 1e-6);
        let u = QFormat::input_uq0_8();
        assert!((u.dequantize(u.quantize(-3.0)) - 0.0).abs() < 1e-9);
        assert!((u.dequantize(u.quantize(7.0)) - u.max_value()).abs() < 1e-6);
    }

    #[test]
    fn msb_flip_is_catastrophic_lsb_flip_is_benign() {
        // This is the mechanism behind the paper's accuracy cliffs.
        let q = QFormat::weight_q2_14();
        let raw = q.quantize(0.5);
        let msb_flipped = q.dequantize(raw ^ 0x8000);
        let lsb_flipped = q.dequantize(raw ^ 0x0001);
        assert!(
            (msb_flipped - (0.5 - 2.0)).abs() < 1e-4,
            "msb flip: {msb_flipped}"
        );
        assert!((lsb_flipped - 0.5).abs() < 1e-3, "lsb flip: {lsb_flipped}");
    }

    #[test]
    fn packing_round_trips() {
        let q = QFormat::weight_q2_14();
        let values: Vec<f32> = (0..13).map(|i| (i as f32 - 6.0) * 0.3).collect();
        let t = QuantizedTensor::from_f32(&values, q);
        let words = t.to_packed_words();
        assert_eq!(words.len(), 4); // ceil(13/4)
        let mut t2 = t.clone();
        t2.load_packed_words(&words);
        assert_eq!(t, t2);
    }

    #[test]
    fn packing_respects_lane_layout() {
        let q = QFormat::input_uq0_8();
        let t = QuantizedTensor::from_f32(&[0.0, 0.25, 0.5, 0.75, 0.996], q);
        let w = t.to_packed_words()[0];
        assert_eq!(w & 0xFF, 0); // 0.0 -> code 0, lane 0
        assert_eq!((w >> 8) & 0xFF, 64); // 0.25 -> code 64, lane 1
        assert_eq!((w >> 16) & 0xFF, 128);
        assert_eq!((w >> 24) & 0xFF, 192);
        assert_eq!((w >> 32) & 0xFF, 255);
    }

    #[test]
    fn corrupted_words_change_values() {
        let q = QFormat::weight_q2_14();
        let t = QuantizedTensor::from_f32(&[1.0, -1.0, 0.25, 0.0], q);
        let mut words = t.to_packed_words();
        words[0] ^= 1 << 31; // MSB of lane 1 (the -1.0)
        let mut t2 = t.clone();
        t2.load_packed_words(&words);
        let vals = t2.to_f32();
        assert!((vals[0] - 1.0).abs() < 1e-6);
        assert!(
            (vals[1] - 1.0).abs() < 1e-4,
            "two's complement MSB flip: -1 -> +1, got {}",
            vals[1]
        );
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let q = QFormat::weight_q2_14();
        let values: Vec<f32> = (0..1000)
            .map(|i| ((i * 37) % 400) as f32 * 0.01 - 2.0)
            .collect();
        let t = QuantizedTensor::from_f32(&values, q);
        assert!(t.mean_abs_error(&values) <= q.step() * 0.5 + 1e-6);
    }

    #[test]
    fn bit_len_counts_container_bits() {
        let t = QuantizedTensor::from_f32(&[0.0; 10], QFormat::weight_q2_14());
        assert_eq!(t.bit_len(), 160);
        let t8 = QuantizedTensor::from_f32(&[0.0; 10], QFormat::input_uq0_8());
        assert_eq!(t8.bit_len(), 80);
    }

    #[test]
    #[should_panic(expected = "container must be 8 or 16 bits")]
    fn odd_container_rejected() {
        let _ = QFormat::new(12, 8, true);
    }

    #[test]
    fn scaled_quantizer_round_trips_within_half_step() {
        let q = ScaledQuantizer::weight_default();
        let vals: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.007).collect();
        let t = q.quantize(&vals);
        let back = t.to_f32();
        for (&v, &b) in vals.iter().zip(&back) {
            assert!((v - b).abs() <= t.scale() * 0.5 + 1e-7, "v={v} b={b}");
        }
    }

    #[test]
    fn scaled_quantizer_uses_guard_headroom() {
        let q = ScaledQuantizer::new(16, 2);
        let vals = vec![0.5f32, -0.25, 0.1];
        let t = q.quantize(&vals);
        // Range covers 4 * max|w| = 2.0, so one MSB flip injects ~2.0.
        let full_range = t.scale() * 32767.0;
        assert!((full_range - 2.0).abs() < 1e-3, "range {full_range}");
    }

    #[test]
    fn scaled_msb_flip_injects_guarded_magnitude() {
        let q = ScaledQuantizer::new(16, 2);
        let t = q.quantize(&[0.5f32, 0.1]);
        let mut words = t.to_packed_words();
        words[0] ^= 1 << 15; // MSB of lane 0
        let mut t2 = t.clone();
        t2.load_packed_words(&words);
        let vals = t2.to_f32();
        // Two's-complement MSB flip of a positive code subtracts 2^15 codes
        // = half the full range = 2 * max|w| = 2.0.
        assert!((vals[0] - (0.5 - 2.0)).abs() < 1e-3, "got {}", vals[0]);
    }

    #[test]
    fn scaled_packing_round_trips() {
        let q = ScaledQuantizer::new(8, 1);
        let vals: Vec<f32> = (0..13).map(|i| (i as f32 - 6.0) * 0.05).collect();
        let t = q.quantize(&vals);
        assert_eq!(t.bit_len(), 13 * 8);
        let words = t.to_packed_words();
        let mut t2 = t.clone();
        t2.load_packed_words(&words);
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "empty tensor")]
    fn scaled_empty_rejected() {
        let _ = ScaledQuantizer::weight_default().quantize(&[]);
    }

    #[test]
    #[should_panic(expected = "guard bits")]
    fn scaled_excess_guard_rejected() {
        let _ = ScaledQuantizer::new(8, 7);
    }
}
