//! Property tests for the circuit models.

use dante_circuit::bic::{BoostConfig, BoostInputControl, ChipEnable, ClockPhase};
use dante_circuit::booster::{BoostLoad, BoosterBank, BoosterCell, MimCapacitor};
use dante_circuit::device::DeviceModel;
use dante_circuit::ldo::Ldo;
use dante_circuit::units::{Farad, Joule, Second, Volt, Watt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 1 algebra: the boost fraction is C_b / (C_b + C_load), always in
    /// (0, 1), increasing in C_b and decreasing in load.
    #[test]
    fn eq1_fraction_bounds(
        inverters in 1usize..4096,
        mim_pf in 0.1f64..100.0,
        cmem_pf in 1.0f64..200.0,
        mv in 300u32..800,
    ) {
        let cell = BoosterCell::new(inverters, Some(MimCapacitor::from_picofarads(mim_pf)));
        let load = BoostLoad::new(Farad::from_picofarads(cmem_pf), Farad::ZERO);
        let bank = BoosterBank::new(vec![cell], load);
        let vdd = Volt::from_millivolts(f64::from(mv));
        let vb = bank.boost_amount(vdd, 1);
        prop_assert!(vb > Volt::ZERO);
        prop_assert!(vb < vdd, "boost cannot exceed Vdd under Eq. 1");
        // More load, less boost.
        let heavier = BoosterBank::new(
            vec![BoosterCell::new(inverters, Some(MimCapacitor::from_picofarads(mim_pf)))],
            BoostLoad::new(Farad::from_picofarads(cmem_pf * 2.0), Farad::ZERO),
        );
        prop_assert!(heavier.boost_amount(vdd, 1) < vb);
    }

    /// Boost voltage scales exactly linearly with Vdd (Eq. 1).
    #[test]
    fn eq1_linear_in_vdd(mv in 300u32..700, scale in 1.05f64..2.0) {
        let bank = BoosterBank::standard();
        let v1 = Volt::from_millivolts(f64::from(mv));
        let v2 = v1 * scale;
        let b1 = bank.boost_amount(v1, 4);
        let b2 = bank.boost_amount(v2, 4);
        prop_assert!((b2.volts() / b1.volts() - scale).abs() < 1e-9);
    }

    /// The BIC never boosts a disabled cell and never boosts while idle.
    #[test]
    fn bic_gating(mask in 0u32..16) {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_mask(mask, 4));
        prop_assert_eq!(bic.boosting_count(ChipEnable::Idle, ClockPhase::High), 0);
        prop_assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::Low), 0);
        prop_assert_eq!(
            bic.boosting_count(ChipEnable::Active, ClockPhase::High),
            mask.count_ones() as usize
        );
    }

    /// Delay is strictly decreasing in voltage above threshold.
    #[test]
    fn delay_monotone(mv in 300u32..780) {
        let dev = DeviceModel::default_14nm();
        let v = Volt::from_millivolts(f64::from(mv));
        let hv = Volt::from_millivolts(f64::from(mv + 20));
        prop_assert!(dev.relative_delay(hv) < dev.relative_delay(v));
    }

    /// Leakage power is strictly increasing in voltage and linear in the
    /// nominal power.
    #[test]
    fn leakage_monotone(mv in 300u32..780, p_uw in 1.0f64..1000.0) {
        let dev = DeviceModel::default_14nm();
        let v = Volt::from_millivolts(f64::from(mv));
        let hv = Volt::from_millivolts(f64::from(mv + 20));
        let p = Watt::from_microwatts(p_uw);
        prop_assert!(dev.leakage_power(hv, p) > dev.leakage_power(v, p));
        let doubled = dev.leakage_power(v, p * 2.0);
        prop_assert!((doubled.watts() / dev.leakage_power(v, p).watts() - 2.0).abs() < 1e-9);
    }

    /// LDO input energy always covers the output energy.
    #[test]
    fn ldo_conservation(out_pj in 0.1f64..1000.0, lo_mv in 300u32..600, drop_mv in 0u32..200) {
        let ldo = Ldo::new();
        let v_l = Volt::from_millivolts(f64::from(lo_mv));
        let v_h = Volt::from_millivolts(f64::from(lo_mv + drop_mv));
        let out = Joule::from_picojoules(out_pj);
        prop_assert!(ldo.input_energy(out, v_l, v_h) >= out);
    }

    /// Unit arithmetic: switching energy is bilinear in C and quadratic in V.
    #[test]
    fn switching_energy_scaling(c_ff in 0.1f64..10_000.0, mv in 100u32..1000) {
        let c = Farad::from_femtofarads(c_ff);
        let v = Volt::from_millivolts(f64::from(mv));
        let e = c.switching_energy(v);
        let e2 = (c * 2.0).switching_energy(v);
        let ev2 = c.switching_energy(v * 2.0);
        prop_assert!((e2.joules() / e.joules() - 2.0).abs() < 1e-9);
        prop_assert!((ev2.joules() / e.joules() - 4.0).abs() < 1e-9);
    }

    /// Frequency/period round-trip.
    #[test]
    fn frequency_period_roundtrip(mhz in 0.1f64..2000.0) {
        let f = dante_circuit::units::Hertz::from_megahertz(mhz);
        let t = f.period();
        prop_assert!((Second::new(1.0 / f.hertz()).seconds() - t.seconds()).abs() < 1e-18);
    }
}
