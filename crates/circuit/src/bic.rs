//! Boost Input Control (BIC) block — paper Sec. 3.2.1.
//!
//! For `N` banks and `P` booster cells per bank, `BIC(n,p)` generates the
//! `Boost_in(n,p)` signal controlling the `p`-th booster cell of bank `n`
//! from three inputs:
//!
//! * the application-programmable configuration bits `Boost_config`
//!   (written by the accelerator's `set_boost_config` instruction),
//! * the active-low bank read/write enable `CEN`, and
//! * the `Boost_clk` phase.
//!
//! A cell whose config bit is `1` holds its pFET on (supplying the rail at
//! `Vdd`) while idle and fires a boost pulse during the high phase of
//! `Boost_clk` of an active access. A cell whose config bit is `0` keeps its
//! nFET on and never boosts.

use core::fmt;

/// Active-low chip-enable of an SRAM bank (`CEN` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipEnable {
    /// `CEN` low: a read or write access is in flight this cycle.
    Active,
    /// `CEN` high: the bank is idle.
    Idle,
}

/// Phase of the dedicated `Boost_clk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockPhase {
    /// High phase: enabled cells couple charge onto the rail.
    High,
    /// Low phase: the rail returns to `Vdd`.
    Low,
}

/// What one booster cell is doing in a given (config, CEN, clk) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellDrive {
    /// Config bit set, access active, `Boost_clk` high: the cell couples
    /// charge onto the rail (`Boost_in` swings low→high).
    Boost,
    /// Config bit set but no boost pulse this instant: the pFET supplies the
    /// rail at `Vdd`.
    Hold,
    /// Config bit clear: the nFET is on and the cell's output sits slightly
    /// below `Vdd`; it only loads the rail.
    Off,
}

/// The per-bank boost configuration register: one bit per booster cell.
///
/// Level-style configurations (`'1111'`, `'0011'`, ... in the paper's
/// notation) enable the lowest `k` cells; arbitrary masks are also legal.
///
/// # Examples
///
/// ```
/// use dante_circuit::bic::BoostConfig;
///
/// let cfg = BoostConfig::from_level(3, 4);
/// assert_eq!(cfg.enabled_count(), 3);
/// assert_eq!(format!("{cfg}"), "0111");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BoostConfig {
    mask: u32,
    width: u8,
}

impl BoostConfig {
    /// Maximum number of booster cells one BIC can control.
    pub const MAX_WIDTH: u8 = 32;

    /// Creates a configuration from a raw bitmask over `width` cells.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`Self::MAX_WIDTH`] or if `mask` has bits
    /// set beyond `width`.
    #[must_use]
    pub fn from_mask(mask: u32, width: u8) -> Self {
        assert!(width <= Self::MAX_WIDTH, "config width {width} too large");
        assert!(
            width == 32 || mask < (1 << width),
            "mask {mask:#b} has bits beyond width {width}"
        );
        Self { mask, width }
    }

    /// Creates the level-`k` configuration (lowest `k` bits set) over
    /// `width` cells — the encoding used by the chip's boost levels.
    ///
    /// # Panics
    ///
    /// Panics if `level > width`.
    #[must_use]
    pub fn from_level(level: usize, width: u8) -> Self {
        assert!(
            level <= width as usize,
            "level {level} exceeds width {width}"
        );
        let mask = if level == 0 { 0 } else { (1u32 << level) - 1 };
        Self::from_mask(mask, width)
    }

    /// The all-off configuration (`'0000'`).
    #[must_use]
    pub fn off(width: u8) -> Self {
        Self::from_level(0, width)
    }

    /// Number of cells this register controls.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Raw bitmask.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether cell `p` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `p >= width`.
    #[must_use]
    pub fn is_enabled(&self, p: usize) -> bool {
        assert!(p < self.width as usize, "cell index {p} out of range");
        self.mask & (1 << p) != 0
    }

    /// Number of enabled cells — the *effective boost level* for a bank of
    /// identical booster cells.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.mask.count_ones() as usize
    }
}

impl fmt::Display for BoostConfig {
    /// Renders in the paper's `'1111'` bit-string notation, MSB first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in (0..self.width).rev() {
            let bit = if self.mask & (1 << p) != 0 { '1' } else { '0' };
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

/// One bank's Boost Input Control block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostInputControl {
    config: BoostConfig,
}

impl BoostInputControl {
    /// Creates a BIC for a bank with `width` booster cells, initially all
    /// disabled (reset state: no boosting until the application programs it).
    #[must_use]
    pub fn new(width: u8) -> Self {
        Self {
            config: BoostConfig::off(width),
        }
    }

    /// Current configuration register contents.
    #[must_use]
    pub fn config(&self) -> BoostConfig {
        self.config
    }

    /// Writes the configuration register — the hardware side of the
    /// `set_boost_config` instruction. The new value applies to all
    /// subsequent accesses until re-written (paper Sec. 3.2.1).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration's width differs from this BIC's.
    pub fn set_config(&mut self, config: BoostConfig) {
        assert_eq!(
            config.width(),
            self.config.width(),
            "config width mismatch on set_boost_config"
        );
        self.config = config;
    }

    /// The drive state of cell `p` under the given enable and clock phase.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn cell_drive(&self, p: usize, cen: ChipEnable, clk: ClockPhase) -> CellDrive {
        if !self.config.is_enabled(p) {
            CellDrive::Off
        } else if cen == ChipEnable::Active && clk == ClockPhase::High {
            CellDrive::Boost
        } else {
            CellDrive::Hold
        }
    }

    /// Drive states of every cell.
    #[must_use]
    pub fn drives(&self, cen: ChipEnable, clk: ClockPhase) -> Vec<CellDrive> {
        (0..self.config.width() as usize)
            .map(|p| self.cell_drive(p, cen, clk))
            .collect()
    }

    /// Number of cells actively boosting under the given state (the level
    /// fed to [`crate::booster::BoosterBank::boost_amount`]).
    #[must_use]
    pub fn boosting_count(&self, cen: ChipEnable, clk: ClockPhase) -> usize {
        self.drives(cen, clk)
            .iter()
            .filter(|d| **d == CellDrive::Boost)
            .count()
    }
}

/// A per-bank boost *scheduler*: the paper's static `set_boost_config`
/// instruction made adaptive. Instead of boosting every bank at one global
/// level, the scheduler marks the layers whose weights are fault-critical
/// (typically the late layers, whose errors the network cannot absorb) and
/// programs a boost configuration only into the BICs of the banks that hold
/// them; all other banks stay at `Vdd` and pay no boost energy.
///
/// Layers are striped across banks round-robin (`bank = layer mod N`), the
/// same static placement the energy model's bank accounting assumes.
///
/// # Examples
///
/// ```
/// use dante_circuit::bic::BoostScheduler;
///
/// let mut sched = BoostScheduler::new(18, 4, 2);
/// sched.mark_critical_layer(3);
/// assert!(sched.is_layer_boosted(3));
/// assert!(!sched.is_layer_boosted(0));
/// assert_eq!(sched.layer_levels(4), vec![0, 0, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoostScheduler {
    critical_banks: Vec<bool>,
    width: u8,
    level: usize,
}

impl BoostScheduler {
    /// Creates a scheduler over `banks` SRAM banks whose BICs control
    /// `width` booster cells each; critical banks are boosted at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`, if `width` exceeds
    /// [`BoostConfig::MAX_WIDTH`], or if `level > width`.
    #[must_use]
    pub fn new(banks: usize, width: u8, level: usize) -> Self {
        assert!(banks > 0, "a scheduler needs at least one bank");
        assert!(
            width <= BoostConfig::MAX_WIDTH,
            "config width {width} too large"
        );
        assert!(
            level <= width as usize,
            "level {level} exceeds width {width}"
        );
        Self {
            critical_banks: vec![false; banks],
            width,
            level,
        }
    }

    /// Number of banks under management.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.critical_banks.len()
    }

    /// The boost level programmed into critical banks.
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The bank holding `layer`'s weights under round-robin striping.
    #[must_use]
    pub fn bank_of_layer(&self, layer: usize) -> usize {
        layer % self.critical_banks.len()
    }

    /// Marks `layer` fault-critical: its bank (and therefore every layer
    /// striped onto that bank) will be boosted.
    pub fn mark_critical_layer(&mut self, layer: usize) {
        let bank = self.bank_of_layer(layer);
        self.critical_banks[bank] = true;
    }

    /// Whether `bank` holds at least one critical layer.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn is_bank_boosted(&self, bank: usize) -> bool {
        assert!(bank < self.critical_banks.len(), "bank {bank} out of range");
        self.critical_banks[bank]
    }

    /// Whether `layer`'s accesses run on a boosted bank.
    #[must_use]
    pub fn is_layer_boosted(&self, layer: usize) -> bool {
        self.critical_banks[self.bank_of_layer(layer)]
    }

    /// Number of boosted banks.
    #[must_use]
    pub fn boosted_bank_count(&self) -> usize {
        self.critical_banks.iter().filter(|b| **b).count()
    }

    /// Per-layer boost levels for an `n`-layer network: `level` for layers
    /// on critical banks, 0 elsewhere — the shape consumed by the energy
    /// model's per-group boost accounting.
    #[must_use]
    pub fn layer_levels(&self, n: usize) -> Vec<usize> {
        (0..n)
            .map(|l| {
                if self.is_layer_boosted(l) {
                    self.level
                } else {
                    0
                }
            })
            .collect()
    }

    /// The configuration register value for every bank's BIC: level-`k`
    /// bits for boosted banks, all-off for the rest.
    #[must_use]
    pub fn configs(&self) -> Vec<BoostConfig> {
        self.critical_banks
            .iter()
            .map(|&c| {
                if c {
                    BoostConfig::from_level(self.level, self.width)
                } else {
                    BoostConfig::off(self.width)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_encoding_matches_paper_notation() {
        assert_eq!(format!("{}", BoostConfig::from_level(4, 4)), "1111");
        assert_eq!(format!("{}", BoostConfig::from_level(0, 4)), "0000");
        assert_eq!(format!("{}", BoostConfig::from_level(2, 4)), "0011");
    }

    #[test]
    fn truth_table_matches_section_3_2_1() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_mask(0b0101, 4));

        // Enabled cell, active access, clk high => boost.
        assert_eq!(
            bic.cell_drive(0, ChipEnable::Active, ClockPhase::High),
            CellDrive::Boost
        );
        // Enabled cell, active access, clk low => hold at Vdd.
        assert_eq!(
            bic.cell_drive(0, ChipEnable::Active, ClockPhase::Low),
            CellDrive::Hold
        );
        // Enabled cell, idle bank => hold regardless of clock ("when there is
        // no memory activity the output is not boosted and fixed at Vdd").
        assert_eq!(
            bic.cell_drive(2, ChipEnable::Idle, ClockPhase::High),
            CellDrive::Hold
        );
        // Disabled cell => off in every state.
        for cen in [ChipEnable::Active, ChipEnable::Idle] {
            for clk in [ClockPhase::High, ClockPhase::Low] {
                assert_eq!(bic.cell_drive(1, cen, clk), CellDrive::Off);
            }
        }
    }

    #[test]
    fn boosting_count_counts_only_firing_cells() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_mask(0b1101, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::Low), 0);
        assert_eq!(bic.boosting_count(ChipEnable::Idle, ClockPhase::High), 0);
    }

    #[test]
    fn reset_state_is_all_off() {
        let bic = BoostInputControl::new(4);
        assert_eq!(bic.config().enabled_count(), 0);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 0);
    }

    #[test]
    fn set_config_persists_until_rewritten() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_level(3, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        bic.set_config(BoostConfig::from_level(1, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_level(1, 8));
    }

    #[test]
    #[should_panic(expected = "bits beyond width")]
    fn oversized_mask_rejected() {
        let _ = BoostConfig::from_mask(0b10000, 4);
    }

    #[test]
    fn enabled_count_matches_popcount() {
        let cfg = BoostConfig::from_mask(0b1011, 4);
        assert_eq!(cfg.enabled_count(), 3);
        assert!(cfg.is_enabled(0) && cfg.is_enabled(1) && !cfg.is_enabled(2) && cfg.is_enabled(3));
    }

    #[test]
    fn scheduler_boosts_only_banks_holding_critical_layers() {
        let mut sched = BoostScheduler::new(18, 4, 3);
        sched.mark_critical_layer(2);
        sched.mark_critical_layer(5);
        assert_eq!(sched.boosted_bank_count(), 2);
        assert!(sched.is_bank_boosted(2) && sched.is_bank_boosted(5));
        assert!(!sched.is_bank_boosted(0));
        let configs = sched.configs();
        assert_eq!(configs.len(), 18);
        assert_eq!(format!("{}", configs[2]), "0111");
        assert_eq!(format!("{}", configs[0]), "0000");
    }

    #[test]
    fn scheduler_striping_wraps_layers_onto_banks() {
        let mut sched = BoostScheduler::new(4, 4, 2);
        sched.mark_critical_layer(6); // bank 2
                                      // Layer 2 shares bank 2 under round-robin striping, so it rides
                                      // along; layers on other banks do not.
        assert!(sched.is_layer_boosted(2));
        assert!(sched.is_layer_boosted(6));
        assert!(!sched.is_layer_boosted(3));
        assert_eq!(sched.layer_levels(8), vec![0, 0, 2, 0, 0, 0, 2, 0]);
    }

    #[test]
    fn scheduler_with_no_critical_layers_boosts_nothing() {
        let sched = BoostScheduler::new(18, 4, 4);
        assert_eq!(sched.boosted_bank_count(), 0);
        assert_eq!(sched.layer_levels(5), vec![0; 5]);
        assert!(sched.configs().iter().all(|c| c.enabled_count() == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn scheduler_rejects_level_beyond_width() {
        let _ = BoostScheduler::new(18, 4, 5);
    }
}
