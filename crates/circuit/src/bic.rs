//! Boost Input Control (BIC) block — paper Sec. 3.2.1.
//!
//! For `N` banks and `P` booster cells per bank, `BIC(n,p)` generates the
//! `Boost_in(n,p)` signal controlling the `p`-th booster cell of bank `n`
//! from three inputs:
//!
//! * the application-programmable configuration bits `Boost_config`
//!   (written by the accelerator's `set_boost_config` instruction),
//! * the active-low bank read/write enable `CEN`, and
//! * the `Boost_clk` phase.
//!
//! A cell whose config bit is `1` holds its pFET on (supplying the rail at
//! `Vdd`) while idle and fires a boost pulse during the high phase of
//! `Boost_clk` of an active access. A cell whose config bit is `0` keeps its
//! nFET on and never boosts.

use core::fmt;

/// Active-low chip-enable of an SRAM bank (`CEN` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipEnable {
    /// `CEN` low: a read or write access is in flight this cycle.
    Active,
    /// `CEN` high: the bank is idle.
    Idle,
}

/// Phase of the dedicated `Boost_clk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockPhase {
    /// High phase: enabled cells couple charge onto the rail.
    High,
    /// Low phase: the rail returns to `Vdd`.
    Low,
}

/// What one booster cell is doing in a given (config, CEN, clk) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellDrive {
    /// Config bit set, access active, `Boost_clk` high: the cell couples
    /// charge onto the rail (`Boost_in` swings low→high).
    Boost,
    /// Config bit set but no boost pulse this instant: the pFET supplies the
    /// rail at `Vdd`.
    Hold,
    /// Config bit clear: the nFET is on and the cell's output sits slightly
    /// below `Vdd`; it only loads the rail.
    Off,
}

/// The per-bank boost configuration register: one bit per booster cell.
///
/// Level-style configurations (`'1111'`, `'0011'`, ... in the paper's
/// notation) enable the lowest `k` cells; arbitrary masks are also legal.
///
/// # Examples
///
/// ```
/// use dante_circuit::bic::BoostConfig;
///
/// let cfg = BoostConfig::from_level(3, 4);
/// assert_eq!(cfg.enabled_count(), 3);
/// assert_eq!(format!("{cfg}"), "0111");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BoostConfig {
    mask: u32,
    width: u8,
}

impl BoostConfig {
    /// Maximum number of booster cells one BIC can control.
    pub const MAX_WIDTH: u8 = 32;

    /// Creates a configuration from a raw bitmask over `width` cells.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`Self::MAX_WIDTH`] or if `mask` has bits
    /// set beyond `width`.
    #[must_use]
    pub fn from_mask(mask: u32, width: u8) -> Self {
        assert!(width <= Self::MAX_WIDTH, "config width {width} too large");
        assert!(
            width == 32 || mask < (1 << width),
            "mask {mask:#b} has bits beyond width {width}"
        );
        Self { mask, width }
    }

    /// Creates the level-`k` configuration (lowest `k` bits set) over
    /// `width` cells — the encoding used by the chip's boost levels.
    ///
    /// # Panics
    ///
    /// Panics if `level > width`.
    #[must_use]
    pub fn from_level(level: usize, width: u8) -> Self {
        assert!(
            level <= width as usize,
            "level {level} exceeds width {width}"
        );
        let mask = if level == 0 { 0 } else { (1u32 << level) - 1 };
        Self::from_mask(mask, width)
    }

    /// The all-off configuration (`'0000'`).
    #[must_use]
    pub fn off(width: u8) -> Self {
        Self::from_level(0, width)
    }

    /// Number of cells this register controls.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Raw bitmask.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether cell `p` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `p >= width`.
    #[must_use]
    pub fn is_enabled(&self, p: usize) -> bool {
        assert!(p < self.width as usize, "cell index {p} out of range");
        self.mask & (1 << p) != 0
    }

    /// Number of enabled cells — the *effective boost level* for a bank of
    /// identical booster cells.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.mask.count_ones() as usize
    }
}

impl fmt::Display for BoostConfig {
    /// Renders in the paper's `'1111'` bit-string notation, MSB first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in (0..self.width).rev() {
            let bit = if self.mask & (1 << p) != 0 { '1' } else { '0' };
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

/// One bank's Boost Input Control block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoostInputControl {
    config: BoostConfig,
}

impl BoostInputControl {
    /// Creates a BIC for a bank with `width` booster cells, initially all
    /// disabled (reset state: no boosting until the application programs it).
    #[must_use]
    pub fn new(width: u8) -> Self {
        Self {
            config: BoostConfig::off(width),
        }
    }

    /// Current configuration register contents.
    #[must_use]
    pub fn config(&self) -> BoostConfig {
        self.config
    }

    /// Writes the configuration register — the hardware side of the
    /// `set_boost_config` instruction. The new value applies to all
    /// subsequent accesses until re-written (paper Sec. 3.2.1).
    ///
    /// # Panics
    ///
    /// Panics if the new configuration's width differs from this BIC's.
    pub fn set_config(&mut self, config: BoostConfig) {
        assert_eq!(
            config.width(),
            self.config.width(),
            "config width mismatch on set_boost_config"
        );
        self.config = config;
    }

    /// The drive state of cell `p` under the given enable and clock phase.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn cell_drive(&self, p: usize, cen: ChipEnable, clk: ClockPhase) -> CellDrive {
        if !self.config.is_enabled(p) {
            CellDrive::Off
        } else if cen == ChipEnable::Active && clk == ClockPhase::High {
            CellDrive::Boost
        } else {
            CellDrive::Hold
        }
    }

    /// Drive states of every cell.
    #[must_use]
    pub fn drives(&self, cen: ChipEnable, clk: ClockPhase) -> Vec<CellDrive> {
        (0..self.config.width() as usize)
            .map(|p| self.cell_drive(p, cen, clk))
            .collect()
    }

    /// Number of cells actively boosting under the given state (the level
    /// fed to [`crate::booster::BoosterBank::boost_amount`]).
    #[must_use]
    pub fn boosting_count(&self, cen: ChipEnable, clk: ClockPhase) -> usize {
        self.drives(cen, clk)
            .iter()
            .filter(|d| **d == CellDrive::Boost)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_encoding_matches_paper_notation() {
        assert_eq!(format!("{}", BoostConfig::from_level(4, 4)), "1111");
        assert_eq!(format!("{}", BoostConfig::from_level(0, 4)), "0000");
        assert_eq!(format!("{}", BoostConfig::from_level(2, 4)), "0011");
    }

    #[test]
    fn truth_table_matches_section_3_2_1() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_mask(0b0101, 4));

        // Enabled cell, active access, clk high => boost.
        assert_eq!(
            bic.cell_drive(0, ChipEnable::Active, ClockPhase::High),
            CellDrive::Boost
        );
        // Enabled cell, active access, clk low => hold at Vdd.
        assert_eq!(
            bic.cell_drive(0, ChipEnable::Active, ClockPhase::Low),
            CellDrive::Hold
        );
        // Enabled cell, idle bank => hold regardless of clock ("when there is
        // no memory activity the output is not boosted and fixed at Vdd").
        assert_eq!(
            bic.cell_drive(2, ChipEnable::Idle, ClockPhase::High),
            CellDrive::Hold
        );
        // Disabled cell => off in every state.
        for cen in [ChipEnable::Active, ChipEnable::Idle] {
            for clk in [ClockPhase::High, ClockPhase::Low] {
                assert_eq!(bic.cell_drive(1, cen, clk), CellDrive::Off);
            }
        }
    }

    #[test]
    fn boosting_count_counts_only_firing_cells() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_mask(0b1101, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::Low), 0);
        assert_eq!(bic.boosting_count(ChipEnable::Idle, ClockPhase::High), 0);
    }

    #[test]
    fn reset_state_is_all_off() {
        let bic = BoostInputControl::new(4);
        assert_eq!(bic.config().enabled_count(), 0);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 0);
    }

    #[test]
    fn set_config_persists_until_rewritten() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_level(3, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 3);
        bic.set_config(BoostConfig::from_level(1, 4));
        assert_eq!(bic.boosting_count(ChipEnable::Active, ClockPhase::High), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let mut bic = BoostInputControl::new(4);
        bic.set_config(BoostConfig::from_level(1, 8));
    }

    #[test]
    #[should_panic(expected = "bits beyond width")]
    fn oversized_mask_rejected() {
        let _ = BoostConfig::from_mask(0b10000, 4);
    }

    #[test]
    fn enabled_count_matches_popcount() {
        let cfg = BoostConfig::from_mask(0b1011, 4);
        assert_eq!(cfg.enabled_count(), 3);
        assert!(cfg.is_enabled(0) && cfg.is_enabled(1) && !cfg.is_enabled(2) && cfg.is_enabled(3));
    }
}
