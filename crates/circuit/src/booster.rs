//! Programmable SRAM supply-voltage booster (paper Sec. 3).
//!
//! The basic unit is the *boost inverter*: a standard-cell inverter with both
//! transistor sources tied to `Vdd` and the drains shorted to form the
//! boosted rail `Vddv`. When the boost input swings low→high, capacitive
//! coupling between gate and drain kicks `Vddv` above `Vdd` by
//!
//! ```text
//! V_b = Vdd * C_b / (C_b + C_mem + C_p)            (paper Eq. 1)
//! ```
//!
//! where `C_b` is the enabled boost capacitance, `C_mem` the SRAM power-grid
//! capacitance, and `C_p` parasitics. A [`BoosterCell`] groups a column of
//! boost inverters with an optional Metal-Insulator-Metal capacitor
//! ([`MimCapacitor`]) that multiplies the boost capacitance at near-zero area
//! cost (the MIM lives in upper metal layers above the macro). A
//! [`BoosterBank`] is the per-SRAM-bank collection of `P` cells whose outputs
//! are shorted: enabling `k` of `P` cells selects boost level `k`, because
//! the *disabled* cells' capacitance loads the boosted node instead of
//! driving it.
//!
//! Two second-order effects are modelled explicitly so the MIM-vs-no-MIM
//! comparison of Fig. 6 reproduces (DESIGN.md Sec. 4):
//!
//! * **Coupling efficiency** of large inverter arrays degrades as
//!   `1 / (1 + N/N0)` — the buffer tree needed to drive thousands of boost
//!   inputs cannot slew them ideally within the access window.
//! * **Drive energy overhead** of an inverter array grows as `1 + N/N0`
//!   (tree of intermediate buffers), while a MIM capacitor is driven by one
//!   large dedicated buffer with a fixed 20% overhead.

use crate::units::{Farad, Joule, SquareMicron, Volt};

/// Effective gate–drain coupling capacitance contributed by one boost
/// inverter (~80-fin standard cell in 14nm).
pub const INVERTER_COUPLING: Farad = Farad::const_new(1.5e-15);

/// Input (gate) capacitance that must be driven to toggle one boost inverter.
pub const INVERTER_INPUT_CAP: Farad = Farad::const_new(3.0e-15);

/// Buffer-tree scale constant `N0`: arrays much smaller than this behave
/// ideally, arrays comparable to it lose coupling efficiency and pay drive
/// overhead.
pub const TREE_SCALE_N0: f64 = 4096.0;

/// Fraction of the MIM coupling energy dissipated per boost event.
///
/// The MIM capacitor's charge is *recovered* on the complementary clock
/// phase (the mechanism Joshi et al. \[7\] push to the limit with resonant
/// boosting); only resistive losses and incomplete recovery are paid per
/// event. Plain boost-inverter arrays get no such recovery — their gate
/// charge is dissipated in the buffer tree every cycle, which is exactly why
/// the MIM design wins the Fig. 6 energy comparison.
pub const MIM_RECOVERY_LOSS: f64 = 0.01;

/// Layout area of one boost inverter including its share of local buffering,
/// in square microns (calibrated so the standard per-macro booster of
/// Table 1 occupies 0.0039 mm^2).
pub const INVERTER_AREA: SquareMicron = SquareMicron::const_new(3.809);

/// Area of the dedicated MIM driver: a fixed base plus a per-picofarad term
/// (the MIM plates themselves occupy upper metal above the SRAM and add no
/// footprint, per paper Sec. 3.2.2).
pub const MIM_BUFFER_AREA_BASE: SquareMicron = SquareMicron::const_new(182.8);
/// Per-picofarad component of the MIM driver area.
pub const MIM_BUFFER_AREA_PER_PF: SquareMicron = SquareMicron::const_new(68.6);

/// A Metal-Insulator-Metal capacitor placed in upper metal layers above the
/// SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MimCapacitor {
    capacitance: Farad,
}

impl MimCapacitor {
    /// Creates a MIM capacitor of the given capacitance.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is not strictly positive and finite (an
    /// infinite capacitance would silently zero every boost ratio
    /// downstream).
    #[must_use]
    pub fn new(capacitance: Farad) -> Self {
        assert!(
            capacitance.is_finite() && capacitance.farads() > 0.0,
            "MIM capacitance must be positive and finite"
        );
        Self { capacitance }
    }

    /// Convenience constructor from picofarads.
    #[must_use]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::new(Farad::from_picofarads(pf))
    }

    /// The capacitance of the MIM stack.
    #[must_use]
    pub fn capacitance(self) -> Farad {
        self.capacitance
    }

    /// Area of the driver needed for this MIM (the plates are free).
    #[must_use]
    pub fn driver_area(&self) -> SquareMicron {
        MIM_BUFFER_AREA_BASE + MIM_BUFFER_AREA_PER_PF * self.capacitance.picofarads()
    }
}

/// One booster cell: a column of boost inverters with an optional MIM
/// capacitor in parallel (the "BC" of paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoosterCell {
    inverters: usize,
    mim: Option<MimCapacitor>,
}

impl BoosterCell {
    /// Creates a booster cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is completely empty (no inverters and no MIM): an
    /// empty cell can neither boost nor load the rail and indicates a
    /// configuration bug.
    #[must_use]
    pub fn new(inverters: usize, mim: Option<MimCapacitor>) -> Self {
        assert!(
            inverters > 0 || mim.is_some(),
            "a booster cell needs at least one inverter or a MIM capacitor"
        );
        Self { inverters, mim }
    }

    /// The standard cell of the taped-out chip: 64 boost inverters plus a
    /// 10 pF MIM capacitor (paper Sec. 3.2.1).
    #[must_use]
    pub fn standard() -> Self {
        Self::new(64, Some(MimCapacitor::from_picofarads(10.0)))
    }

    /// Number of boost inverters in the cell.
    #[must_use]
    pub fn inverters(&self) -> usize {
        self.inverters
    }

    /// The MIM capacitor, if present.
    #[must_use]
    pub fn mim(&self) -> Option<MimCapacitor> {
        self.mim
    }

    /// Coupling efficiency of the inverter array: `1 / (1 + N/N0)`.
    #[must_use]
    pub fn coupling_efficiency(&self) -> f64 {
        1.0 / (1.0 + self.inverters as f64 / TREE_SCALE_N0)
    }

    /// Effective boost capacitance this cell contributes when *enabled*.
    #[must_use]
    pub fn boost_capacitance(&self) -> Farad {
        let inv = INVERTER_COUPLING * (self.inverters as f64 * self.coupling_efficiency());
        let mim = self.mim.map_or(Farad::ZERO, MimCapacitor::capacitance);
        inv + mim
    }

    /// Capacitive load this cell puts on the boosted rail when *disabled*
    /// (its nFETs hold the inputs high, so its coupling caps hang off the
    /// rail as dead weight).
    #[must_use]
    pub fn load_when_disabled(&self) -> Farad {
        self.boost_capacitance()
    }

    /// Energy drawn from `Vdd` to fire one boost event in this cell: the
    /// drive energy of all boost-inverter inputs (with buffer-tree overhead,
    /// fully dissipated) plus the small non-recovered fraction of the MIM
    /// coupling energy (see [`MIM_RECOVERY_LOSS`]).
    #[must_use]
    pub fn boost_event_energy(&self, vdd: Volt) -> Joule {
        let n = self.inverters as f64;
        let tree_overhead = 1.0 + n / TREE_SCALE_N0;
        let inv_energy = (INVERTER_INPUT_CAP * (n * tree_overhead)).switching_energy(vdd);
        let mim_energy = self.mim.map_or(Joule::ZERO, |m| {
            (m.capacitance() * MIM_RECOVERY_LOSS).switching_energy(vdd)
        });
        inv_energy + mim_energy
    }

    /// Layout area of the cell (inverters + buffers + MIM driver; the MIM
    /// plates themselves are free).
    #[must_use]
    pub fn area(&self) -> SquareMicron {
        let inv = INVERTER_AREA * self.inverters as f64;
        let mim = self.mim.map_or(SquareMicron::ZERO, |m| m.driver_area());
        inv + mim
    }
}

/// Capacitive load seen by the boosted rail: the SRAM power grid plus fixed
/// parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostLoad {
    c_mem: Farad,
    c_parasitic: Farad,
}

impl BoostLoad {
    /// Creates a load from an SRAM grid capacitance and parasitics.
    ///
    /// # Panics
    ///
    /// Panics if either capacitance is negative or non-finite (an infinite
    /// load poisons Eq. 1 into a silent zero boost).
    #[must_use]
    pub fn new(c_mem: Farad, c_parasitic: Farad) -> Self {
        assert!(
            c_mem.is_finite() && c_mem.farads() >= 0.0,
            "SRAM grid capacitance must be non-negative and finite"
        );
        assert!(
            c_parasitic.is_finite() && c_parasitic.farads() >= 0.0,
            "parasitic capacitance must be non-negative and finite"
        );
        Self { c_mem, c_parasitic }
    }

    /// Power-grid capacitance of one 4 KB (32 Kbit) SRAM macro, the unit the
    /// taped-out chip boosts (40 pF, DESIGN.md Sec. 4).
    #[must_use]
    pub fn macro_4kb() -> Self {
        Self::new(Farad::from_picofarads(40.0), Farad::from_picofarads(0.5))
    }

    /// Load of a 64 Kbit bank (two macros ganged on one boosted rail).
    #[must_use]
    pub fn bank_64kbit() -> Self {
        Self::new(Farad::from_picofarads(80.0), Farad::from_picofarads(1.0))
    }

    /// Additional load of the macro's peripheral logic (decoders, sense
    /// amps); connected only under *macro-level* boosting (paper Sec. 3.3.2).
    #[must_use]
    pub fn peripheral_extra() -> Farad {
        Farad::from_picofarads(14.0)
    }

    /// SRAM grid capacitance.
    #[must_use]
    pub fn c_mem(&self) -> Farad {
        self.c_mem
    }

    /// Parasitic capacitance on the boosted node.
    #[must_use]
    pub fn c_parasitic(&self) -> Farad {
        self.c_parasitic
    }

    /// Total rail load.
    #[must_use]
    pub fn total(&self) -> Farad {
        self.c_mem + self.c_parasitic
    }

    /// Returns this load with the peripheral capacitance added (macro-level
    /// boosting).
    #[must_use]
    pub fn with_peripherals(self) -> Self {
        Self::new(self.c_mem + Self::peripheral_extra(), self.c_parasitic)
    }
}

/// The scope of the boosted rail: only the bitcell array, or the whole macro
/// including peripheral logic (paper Sec. 3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoostScope {
    /// Only the array power grid is boosted; peripherals stay at `Vdd`.
    #[default]
    Array,
    /// Array and peripheral logic share the boosted rail (larger load,
    /// smaller boost, lower latency).
    Macro,
}

/// A programmable booster bank: `P` booster cells with shorted outputs
/// driving one SRAM bank's power grid.
///
/// # Examples
///
/// ```
/// use dante_circuit::booster::BoosterBank;
/// use dante_circuit::units::Volt;
///
/// let bank = BoosterBank::standard();
/// let vdd = Volt::new(0.4);
/// // Level 4 boosts 0.4 V to ~0.6 V (the Fig. 12 scenario).
/// let vddv = bank.boosted_voltage(vdd, 4);
/// assert!((vddv.volts() - 0.6).abs() < 0.01);
/// // Level 0 means no boost.
/// assert_eq!(bank.boosted_voltage(vdd, 0), vdd);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoosterBank {
    cells: Vec<BoosterCell>,
    load: BoostLoad,
    scope: BoostScope,
}

impl BoosterBank {
    /// Creates a bank from explicit cells and a rail load.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    #[must_use]
    pub fn new(cells: Vec<BoosterCell>, load: BoostLoad) -> Self {
        assert!(!cells.is_empty(), "a booster bank needs at least one cell");
        Self {
            cells,
            load,
            scope: BoostScope::Array,
        }
    }

    /// The *standard configuration* of the taped-out chip: 4 booster cells,
    /// each with 64 boost inverters and a 10 pF MIM, driving one 4 KB macro
    /// (paper Sec. 3.2.1 and Table 1).
    #[must_use]
    pub fn standard() -> Self {
        Self::with_levels(4)
    }

    /// A standard-style bank with `p` programmable levels. The total boost
    /// hardware (256 inverters, 40 pF MIM) is kept constant and split across
    /// `p` cells, so finer granularity costs nothing extra — the ablation the
    /// paper suggests in Sec. 6.3 ("> 4 boost levels").
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or if `p` does not divide the 256-inverter budget.
    #[must_use]
    pub fn with_levels(p: usize) -> Self {
        assert!(p > 0, "need at least one boost level");
        assert!(
            256 % p == 0,
            "level count must divide the 256-inverter budget"
        );
        let cell = BoosterCell::new(
            256 / p,
            Some(MimCapacitor::from_picofarads(40.0 / p as f64)),
        );
        Self::new(vec![cell; p], BoostLoad::macro_4kb())
    }

    /// A *binary-weighted* bank: `bits` cells whose boost capacitances form
    /// a 1:2:4:... ladder over the same total hardware budget (256
    /// inverters, 40 pF MIM), giving `2^bits - 1` distinct boost amounts
    /// from `bits` configuration bits — the natural endpoint of the paper's
    /// "much finer granularity with more boost levels" remark, at zero
    /// extra area. Use [`Self::boost_amount_masked`] to select levels.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is in `1..=6` (beyond that the LSB cell would
    /// round below one inverter).
    #[must_use]
    pub fn binary_weighted(bits: usize) -> Self {
        assert!(
            (1..=6).contains(&bits),
            "binary-weighted banks support 1..=6 bits"
        );
        let denom = (1usize << bits) - 1;
        let cells = (0..bits)
            .map(|i| {
                let weight = 1usize << i;
                let inverters = (256 * weight).div_ceil(denom);
                let mim_pf = 40.0 * weight as f64 / denom as f64;
                BoosterCell::new(inverters, Some(MimCapacitor::from_picofarads(mim_pf)))
            })
            .collect();
        Self::new(cells, BoostLoad::macro_4kb())
    }

    /// Changes the boost scope (array-only vs whole-macro).
    #[must_use]
    pub fn with_scope(mut self, scope: BoostScope) -> Self {
        self.scope = scope;
        self
    }

    /// Number of programmable boost levels `P`.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.cells.len()
    }

    /// The booster cells.
    #[must_use]
    pub fn cells(&self) -> &[BoosterCell] {
        &self.cells
    }

    /// The rail load (before any peripheral extra).
    #[must_use]
    pub fn load(&self) -> BoostLoad {
        self.load
    }

    /// The configured boost scope.
    #[must_use]
    pub fn scope(&self) -> BoostScope {
        self.scope
    }

    fn effective_load(&self) -> BoostLoad {
        self.effective_load_for(self.scope)
    }

    fn effective_load_for(&self, scope: BoostScope) -> BoostLoad {
        match scope {
            BoostScope::Array => self.load,
            BoostScope::Macro => self.load.with_peripherals(),
        }
    }

    /// Enabled boost capacitance at `level` (the first `level` cells).
    ///
    /// # Panics
    ///
    /// Panics if `level > self.levels()`.
    #[must_use]
    pub fn enabled_capacitance(&self, level: usize) -> Farad {
        assert!(
            level <= self.levels(),
            "boost level {level} exceeds {}",
            self.levels()
        );
        self.cells[..level]
            .iter()
            .map(BoosterCell::boost_capacitance)
            .sum()
    }

    fn disabled_load(&self, level: usize) -> Farad {
        self.cells[level..]
            .iter()
            .map(BoosterCell::load_when_disabled)
            .sum()
    }

    /// The boost amount `V_b = Vddv - Vdd` at the given level (paper Eq. 1,
    /// with disabled cells counted as load).
    ///
    /// # Panics
    ///
    /// Panics if `level > self.levels()`.
    #[must_use]
    pub fn boost_amount(&self, vdd: Volt, level: usize) -> Volt {
        self.boost_amount_scoped(vdd, level, self.scope)
    }

    /// [`Self::boost_amount`] evaluated under an explicit scope, without
    /// mutating or cloning the bank. Hot loops (sweeps, design-space scans,
    /// boosted-latency queries) use this instead of
    /// `bank.clone().with_scope(..).boost_amount(..)`.
    ///
    /// # Panics
    ///
    /// Panics if `level > self.levels()`.
    #[must_use]
    pub fn boost_amount_scoped(&self, vdd: Volt, level: usize, scope: BoostScope) -> Volt {
        let cb = self.enabled_capacitance(level);
        let cload = self.effective_load_for(scope).total() + self.disabled_load(level);
        let denom = cb + cload;
        if denom.farads() == 0.0 {
            return Volt::ZERO;
        }
        vdd * (cb / denom)
    }

    /// Boost amount for an arbitrary configuration mask (any subset of
    /// cells enabled) — required for heterogeneous banks such as
    /// [`Self::binary_weighted`], where *which* cells fire matters, not
    /// just how many.
    ///
    /// # Panics
    ///
    /// Panics if the mask's width differs from the bank's cell count.
    #[must_use]
    pub fn boost_amount_masked(&self, vdd: Volt, config: &crate::bic::BoostConfig) -> Volt {
        assert_eq!(
            usize::from(config.width()),
            self.cells.len(),
            "config width mismatches the bank's cell count"
        );
        let mut cb = Farad::ZERO;
        let mut disabled = Farad::ZERO;
        for (i, cell) in self.cells.iter().enumerate() {
            if config.is_enabled(i) {
                cb += cell.boost_capacitance();
            } else {
                disabled += cell.load_when_disabled();
            }
        }
        let denom = cb + self.effective_load().total() + disabled;
        if denom.farads() == 0.0 {
            return Volt::ZERO;
        }
        vdd * (cb / denom)
    }

    /// Boosted rail voltage for an arbitrary configuration mask.
    #[must_use]
    pub fn boosted_voltage_masked(&self, vdd: Volt, config: &crate::bic::BoostConfig) -> Volt {
        vdd + self.boost_amount_masked(vdd, config)
    }

    /// Boost event energy for an arbitrary configuration mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask's width differs from the bank's cell count.
    #[must_use]
    pub fn boost_event_energy_masked(&self, vdd: Volt, config: &crate::bic::BoostConfig) -> Joule {
        assert_eq!(
            usize::from(config.width()),
            self.cells.len(),
            "config width mismatches the bank's cell count"
        );
        self.cells
            .iter()
            .enumerate()
            .filter(|(i, _)| config.is_enabled(*i))
            .map(|(_, c)| c.boost_event_energy(vdd))
            .sum()
    }

    /// The boosted rail voltage `Vddv` at the given level.
    #[must_use]
    pub fn boosted_voltage(&self, vdd: Volt, level: usize) -> Volt {
        vdd + self.boost_amount(vdd, level)
    }

    /// [`Self::boosted_voltage`] evaluated under an explicit scope, by
    /// reference (see [`Self::boost_amount_scoped`]).
    #[must_use]
    pub fn boosted_voltage_scoped(&self, vdd: Volt, level: usize, scope: BoostScope) -> Volt {
        vdd + self.boost_amount_scoped(vdd, level, scope)
    }

    /// All `P + 1` rail voltages (`level = 0..=P`) at a supply voltage; index
    /// `i` is `Vddv_i` (index 0 is the un-boosted rail).
    #[must_use]
    pub fn voltage_ladder(&self, vdd: Volt) -> Vec<Volt> {
        (0..=self.levels())
            .map(|l| self.boosted_voltage(vdd, l))
            .collect()
    }

    /// Energy drawn from the supply per boosted access at the given level
    /// (sum of the enabled cells' drive energies; disabled cells burn
    /// nothing dynamic).
    #[must_use]
    pub fn boost_event_energy(&self, vdd: Volt, level: usize) -> Joule {
        assert!(
            level <= self.levels(),
            "boost level {level} exceeds {}",
            self.levels()
        );
        self.cells[..level]
            .iter()
            .map(|c| c.boost_event_energy(vdd))
            .sum()
    }

    /// Total layout area of the booster column.
    #[must_use]
    pub fn area(&self) -> SquareMicron {
        self.cells.iter().map(BoosterCell::area).sum()
    }

    /// Finds the lowest boost level whose rail voltage reaches `target`, or
    /// `None` if even full boost falls short.
    #[must_use]
    pub fn min_level_reaching(&self, vdd: Volt, target: Volt) -> Option<usize> {
        (0..=self.levels()).find(|&l| self.boosted_voltage(vdd, l) >= target)
    }
}

/// The four named comparison circuits of paper Fig. 6 / Sec. 3.2.3.
pub mod reference {
    use super::{BoostLoad, BoosterBank, BoosterCell, MimCapacitor};

    /// `MIMBoost-A`: the standard configuration — 256 boost inverters plus a
    /// 40 pF MIM, with buffers.
    #[must_use]
    pub fn mim_boost_a() -> BoosterBank {
        BoosterBank::new(
            vec![BoosterCell::new(
                256,
                Some(MimCapacitor::from_picofarads(40.0)),
            )],
            BoostLoad::macro_4kb(),
        )
    }

    /// `noMIMBoost-A`: 1024 boost inverters with buffers — approximately the
    /// same layout area as `MIMBoost-A`.
    #[must_use]
    pub fn no_mim_boost_a() -> BoosterBank {
        BoosterBank::new(vec![BoosterCell::new(1024, None)], BoostLoad::macro_4kb())
    }

    /// `MIMBoost-B`: 256 boost inverters plus a 4.2 pF MIM.
    #[must_use]
    pub fn mim_boost_b() -> BoosterBank {
        BoosterBank::new(
            vec![BoosterCell::new(
                256,
                Some(MimCapacitor::from_picofarads(4.2)),
            )],
            BoostLoad::macro_4kb(),
        )
    }

    /// `noMIMBoost-B`: 8192 boost inverters — roughly the same boosted
    /// voltage as `MIMBoost-B` at 8x the area and ~10x the energy.
    #[must_use]
    pub fn no_mim_boost_b() -> BoosterBank {
        BoosterBank::new(vec![BoosterCell::new(8192, None)], BoostLoad::macro_4kb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: Volt = Volt::const_new(0.4);

    #[test]
    fn standard_bank_has_four_levels_and_50_percent_peak_boost() {
        let bank = BoosterBank::standard();
        assert_eq!(bank.levels(), 4);
        let vb = bank.boost_amount(VDD, 4);
        let ratio = vb.volts() / VDD.volts();
        assert!(
            (ratio - 0.50).abs() < 0.02,
            "peak boost should be ~50% of Vdd, got {ratio:.3}"
        );
    }

    #[test]
    fn standard_levels_step_by_about_50mv_at_0v4() {
        // Paper Fig. 4: "4 levels of boosted voltage with increments of the
        // order of 50 mV".
        let bank = BoosterBank::standard();
        let ladder = bank.voltage_ladder(VDD);
        for w in ladder.windows(2) {
            let step = (w[1] - w[0]).millivolts();
            assert!(
                (35.0..=65.0).contains(&step),
                "step {step:.1} mV out of range"
            );
        }
    }

    #[test]
    fn level4_boosts_0v4_to_0v6() {
        // The Fig. 12 design-space scenario: Vdd 0.4 V boosted to Vddv 0.6 V.
        let bank = BoosterBank::standard();
        let vddv = bank.boosted_voltage(VDD, 4);
        assert!((vddv.volts() - 0.6).abs() < 0.01, "got {vddv}");
    }

    #[test]
    fn boost_amount_monotonic_in_level_and_vdd() {
        let bank = BoosterBank::standard();
        let mut prev = Volt::ZERO;
        for level in 0..=4 {
            let vb = bank.boost_amount(VDD, level);
            assert!(vb >= prev, "level {level} not monotonic");
            prev = vb;
        }
        // Fig. 8: peak boosted voltage increases monotonically with Vdd.
        let mut prev_v = Volt::ZERO;
        for mv in (340..=800).step_by(20) {
            let v = Volt::from_millivolts(f64::from(mv));
            let vddv = bank.boosted_voltage(v, 4);
            assert!(vddv > prev_v);
            prev_v = vddv;
        }
    }

    #[test]
    fn zero_level_is_unboosted() {
        let bank = BoosterBank::standard();
        assert_eq!(bank.boosted_voltage(VDD, 0), VDD);
        assert_eq!(bank.boost_event_energy(VDD, 0), Joule::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_level_panics() {
        let _ = BoosterBank::standard().boost_amount(VDD, 5);
    }

    #[test]
    fn macro_scope_reduces_boost() {
        // Paper Sec. 3.3.2: boosting the peripherals reduces V_b because of
        // the extra load.
        let array = BoosterBank::standard();
        let whole = BoosterBank::standard().with_scope(BoostScope::Macro);
        for level in 1..=4 {
            assert!(whole.boost_amount(VDD, level) < array.boost_amount(VDD, level));
        }
    }

    #[test]
    fn mim_a_outboosts_no_mim_a_by_an_order_of_magnitude() {
        // Paper Fig. 6: "MIMBoost-A generates 14x the boosted voltage for the
        // same area compared to noMIMBoost-A."
        let mim = reference::mim_boost_a();
        let no_mim = reference::no_mim_boost_a();
        let ratio = mim.boost_amount(VDD, 1) / no_mim.boost_amount(VDD, 1);
        assert!(
            (8.0..=25.0).contains(&ratio),
            "boost ratio {ratio:.1} outside the expected band around 14x"
        );
        // ...and at approximately equal area.
        let area_ratio = mim.area() / no_mim.area();
        assert!(
            (0.5..=2.0).contains(&area_ratio),
            "A-pair areas should be comparable, ratio {area_ratio:.2}"
        );
    }

    #[test]
    fn no_mim_b_pays_order_of_magnitude_more_energy_for_same_boost() {
        // Paper Fig. 6: noMIMBoost-B expends ~10x the energy of MIMBoost-B
        // for roughly the same boosted voltage, at 8x the area.
        let mim = reference::mim_boost_b();
        let no_mim = reference::no_mim_boost_b();
        let vb_ratio = no_mim.boost_amount(VDD, 1) / mim.boost_amount(VDD, 1);
        assert!(
            (0.6..=1.5).contains(&vb_ratio),
            "B-pair boosts should be comparable, ratio {vb_ratio:.2}"
        );
        let e_ratio = no_mim.boost_event_energy(VDD, 1) / mim.boost_event_energy(VDD, 1);
        assert!(
            e_ratio > 5.0,
            "energy penalty only {e_ratio:.1}x, expected ~10x"
        );
        let a_ratio = no_mim.area() / mim.area();
        assert!(
            a_ratio >= 8.0,
            "area penalty only {a_ratio:.1}x, expected >=8x"
        );
    }

    #[test]
    fn standard_booster_area_matches_table1() {
        // Table 1: booster area 0.0039 mm^2 = 3900 um^2 per SRAM macro.
        let area = BoosterBank::standard().area();
        assert!(
            (area.square_microns() - 3900.0).abs() / 3900.0 < 0.25,
            "booster area {area} deviates >25% from Table 1"
        );
    }

    #[test]
    fn finer_levels_preserve_peak_boost() {
        let four = BoosterBank::with_levels(4);
        let eight = BoosterBank::with_levels(8);
        let peak4 = four.boost_amount(VDD, 4);
        let peak8 = eight.boost_amount(VDD, 8);
        assert!((peak4.volts() - peak8.volts()).abs() < 0.01);
        assert_eq!(eight.levels(), 8);
    }

    #[test]
    fn min_level_reaching_finds_paper_anchor_points() {
        // Paper Sec. 6.2: at Vdd = 0.38 V level 3 reaches the 0.48 V target;
        // at Vdd = 0.46 V level 1 already suffices.
        let bank = BoosterBank::standard();
        let target = Volt::new(0.48);
        assert_eq!(bank.min_level_reaching(Volt::new(0.38), target), Some(3));
        assert_eq!(bank.min_level_reaching(Volt::new(0.46), target), Some(1));
        // At very low Vdd even full boost cannot reach an absurd target.
        assert_eq!(
            bank.min_level_reaching(Volt::new(0.34), Volt::new(0.9)),
            None
        );
    }

    #[test]
    fn boost_event_energy_monotonic_in_level() {
        let bank = BoosterBank::standard();
        let mut prev = Joule::ZERO;
        for level in 1..=4 {
            let e = bank.boost_event_energy(VDD, level);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    #[should_panic(expected = "at least one inverter")]
    fn empty_cell_rejected() {
        let _ = BoosterCell::new(0, None);
    }

    #[test]
    fn binary_weighted_bank_spans_15_distinct_levels_from_4_bits() {
        use crate::bic::BoostConfig;
        let bank = BoosterBank::binary_weighted(4);
        assert_eq!(bank.levels(), 4);
        let mut boosts: Vec<f64> = (0..16u32)
            .map(|mask| {
                bank.boost_amount_masked(VDD, &BoostConfig::from_mask(mask, 4))
                    .millivolts()
            })
            .collect();
        // All-on matches the standard peak (~50% of Vdd) within tolerance.
        assert!((boosts[15] / VDD.millivolts() - 0.5).abs() < 0.03);
        // Monotone in the mask *value* (binary weighting) and all distinct.
        for w in boosts.windows(2) {
            assert!(w[1] > w[0], "binary masks must order boosts: {boosts:?}");
        }
        boosts.dedup_by(|a, b| (*a - *b).abs() < 0.01);
        assert_eq!(boosts.len(), 16, "all 16 mask values must be distinct");
    }

    #[test]
    fn binary_weighted_matches_same_budget_peak_and_area() {
        let linear = BoosterBank::standard();
        let binary = BoosterBank::binary_weighted(4);
        let peak_l = linear.boost_amount(VDD, 4);
        let peak_b = binary.boost_amount(VDD, 4); // all 4 cells on
        assert!((peak_l.volts() - peak_b.volts()).abs() < 0.01);
        let area_ratio = binary.area() / linear.area();
        assert!((0.7..=1.3).contains(&area_ratio), "area ratio {area_ratio}");
    }

    #[test]
    fn masked_apis_agree_with_level_apis_on_uniform_banks() {
        use crate::bic::BoostConfig;
        let bank = BoosterBank::standard();
        for level in 0..=4usize {
            let cfg = BoostConfig::from_level(level, 4);
            let by_level = bank.boost_amount(VDD, level);
            let by_mask = bank.boost_amount_masked(VDD, &cfg);
            assert!((by_level.volts() - by_mask.volts()).abs() < 1e-12);
            let e_level = bank.boost_event_energy(VDD, level);
            let e_mask = bank.boost_event_energy_masked(VDD, &cfg);
            assert!((e_level.joules() - e_mask.joules()).abs() < 1e-24);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatches")]
    fn masked_api_validates_width() {
        use crate::bic::BoostConfig;
        let _ = BoosterBank::standard().boost_amount_masked(VDD, &BoostConfig::from_level(1, 8));
    }

    #[test]
    fn scoped_queries_are_bit_identical_to_the_cloning_path() {
        // The by-ref scoped query must be a pure refactor of the
        // clone-then-with_scope pattern it replaced: every bit of every f64
        // must match, at every level, scope and supply point.
        let bank = BoosterBank::standard();
        for scope in [BoostScope::Array, BoostScope::Macro] {
            for mv in (340..=800).step_by(20) {
                let vdd = Volt::from_millivolts(f64::from(mv));
                for level in 0..=4 {
                    let cloned = bank.clone().with_scope(scope).boosted_voltage(vdd, level);
                    let by_ref = bank.boosted_voltage_scoped(vdd, level, scope);
                    assert_eq!(
                        cloned.volts().to_bits(),
                        by_ref.volts().to_bits(),
                        "scoped query diverged at {vdd}, level {level}, {scope:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scoped_query_respects_the_explicit_scope_not_the_banks() {
        // An Array-configured bank queried with Macro scope must see the
        // peripheral load, and vice versa.
        let bank = BoosterBank::standard(); // scope = Array
        let macro_v = bank.boosted_voltage_scoped(VDD, 4, BoostScope::Macro);
        let array_v = bank.boosted_voltage_scoped(VDD, 4, BoostScope::Array);
        assert!(macro_v < array_v);
        assert_eq!(array_v, bank.boosted_voltage(VDD, 4));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_mim_capacitance_rejected() {
        let _ = MimCapacitor::new(Farad::new(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "non-negative and finite")]
    fn infinite_boost_load_rejected() {
        let _ = BoostLoad::new(Farad::new(f64::INFINITY), Farad::ZERO);
    }
}
