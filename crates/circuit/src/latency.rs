//! SRAM access latency vs. supply voltage (paper Fig. 7 bottom and Fig. 9).
//!
//! A macro access splits between peripheral logic (address decode, wordline
//! drive, sense) and the bitcell array. Both follow the alpha-power delay
//! law of [`crate::device::DeviceModel`], but under *array-level* boosting
//! only the array portion sees the boosted rail, while under *macro-level*
//! boosting everything speeds up at a somewhat lower boosted voltage (the
//! peripherals add load to the boost node). This reproduces the Fig. 9
//! observation that macro boosting cuts overall latency the most — up to
//! ~35% at 0.5 V — even though its `V_b` is smaller.

use crate::booster::{BoostScope, BoosterBank};
use crate::device::DeviceModel;
use crate::units::{Second, Volt};

/// Fraction of the unboosted access time spent in peripheral logic.
pub const PERIPHERAL_FRACTION: f64 = 0.45;

/// Access-latency model for one SRAM macro.
#[derive(Debug, Clone, PartialEq)]
pub struct SramTiming {
    device: DeviceModel,
    nominal_access: Second,
    peripheral_fraction: f64,
}

impl SramTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if `peripheral_fraction` is outside `[0, 1]` or the nominal
    /// access time is non-positive or non-finite.
    #[must_use]
    pub fn new(device: DeviceModel, nominal_access: Second, peripheral_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&peripheral_fraction),
            "peripheral fraction must be in [0, 1]"
        );
        assert!(
            nominal_access.is_finite() && nominal_access.seconds() > 0.0,
            "nominal access time must be positive and finite"
        );
        Self {
            device,
            nominal_access,
            peripheral_fraction,
        }
    }

    /// The 32 Kbit dual-port macro of the paper: 1 ns access at nominal
    /// voltage, 45% of it in the peripherals.
    #[must_use]
    pub fn macro_32kbit() -> Self {
        Self::new(
            DeviceModel::default_14nm(),
            Second::from_nanoseconds(1.0),
            PERIPHERAL_FRACTION,
        )
    }

    /// The device model in use.
    #[must_use]
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Unboosted access time with the whole macro at `vdd`.
    #[must_use]
    pub fn access_time(&self, vdd: Volt) -> Second {
        self.nominal_access * self.device.relative_delay(vdd)
    }

    /// Access time normalized to the access time at nominal voltage
    /// (the Fig. 7 bottom curve).
    #[must_use]
    pub fn normalized_access(&self, vdd: Volt) -> f64 {
        self.device.relative_delay(vdd)
    }

    /// Access time when the macro is boosted by `bank` at `level` under the
    /// given scope:
    ///
    /// * [`BoostScope::Array`] — peripherals run at `vdd`, the array at the
    ///   (higher) array-boosted voltage;
    /// * [`BoostScope::Macro`] — everything runs at the (lower) macro-boosted
    ///   voltage.
    #[must_use]
    pub fn boosted_access_time(
        &self,
        vdd: Volt,
        bank: &BoosterBank,
        level: usize,
        scope: BoostScope,
    ) -> Second {
        let periph = self.nominal_access * self.peripheral_fraction;
        let array = self.nominal_access * (1.0 - self.peripheral_fraction);
        let vddv = bank.boosted_voltage_scoped(vdd, level, scope);
        match scope {
            BoostScope::Array => {
                periph * self.device.relative_delay(vdd) + array * self.device.relative_delay(vddv)
            }
            BoostScope::Macro => (periph + array) * self.device.relative_delay(vddv),
        }
    }

    /// Boosted access time expressed as a fraction of the *unboosted* access
    /// time at the same `vdd` — the y-axis of paper Fig. 9.
    #[must_use]
    pub fn boosted_access_fraction(
        &self,
        vdd: Volt,
        bank: &BoosterBank,
        level: usize,
        scope: BoostScope,
    ) -> f64 {
        self.boosted_access_time(vdd, bank, level, scope) / self.access_time(vdd)
    }
}

impl Default for SramTiming {
    fn default() -> Self {
        Self::macro_32kbit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_rises_as_voltage_drops() {
        let t = SramTiming::macro_32kbit();
        let mut prev = 0.0;
        for mv in [800, 700, 600, 500, 450, 400, 360, 340] {
            let n = t.normalized_access(Volt::from_millivolts(f64::from(mv)));
            assert!(n > prev, "latency must grow monotonically as V drops");
            prev = n;
        }
        // Normalized to 1.0 at nominal.
        assert!((t.normalized_access(Volt::new(0.8)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boosting_reduces_access_time() {
        let t = SramTiming::macro_32kbit();
        let bank = BoosterBank::standard();
        let vdd = Volt::new(0.5);
        for scope in [BoostScope::Array, BoostScope::Macro] {
            let mut prev = 1.0 + 1e-12;
            for level in 0..=4 {
                let frac = t.boosted_access_fraction(vdd, &bank, level, scope);
                assert!(frac <= prev, "higher boost level must not slow access");
                prev = frac;
            }
        }
    }

    #[test]
    fn macro_boost_beats_array_boost_on_latency() {
        // Paper Sec. 3.3.2 / Fig. 9: boosting the peripherals too cuts
        // latency further despite the smaller V_b.
        let t = SramTiming::macro_32kbit();
        let bank = BoosterBank::standard();
        for mv in [500, 600, 700] {
            let vdd = Volt::from_millivolts(f64::from(mv));
            for level in 1..=4 {
                let a = t.boosted_access_fraction(vdd, &bank, level, BoostScope::Array);
                let m = t.boosted_access_fraction(vdd, &bank, level, BoostScope::Macro);
                assert!(m < a, "macro boost must be faster (level {level} @ {vdd})");
            }
        }
    }

    #[test]
    fn macro_boost_saves_around_35_percent_at_0v5() {
        // Paper: "boosting peripheral logic and the array leads to a maximum
        // of 35% reduction in overall macro access latency at 0.5 V."
        let t = SramTiming::macro_32kbit();
        let bank = BoosterBank::standard();
        let frac = t.boosted_access_fraction(Volt::new(0.5), &bank, 4, BoostScope::Macro);
        let reduction = 1.0 - frac;
        assert!(
            (0.25..=0.45).contains(&reduction),
            "latency reduction {reduction:.2} outside the band around 35%"
        );
    }

    #[test]
    fn zero_level_boost_is_identity() {
        let t = SramTiming::macro_32kbit();
        let bank = BoosterBank::standard();
        let vdd = Volt::new(0.6);
        let frac = t.boosted_access_fraction(vdd, &bank, 0, BoostScope::Array);
        assert!((frac - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "peripheral fraction")]
    fn bad_fraction_rejected() {
        let _ = SramTiming::new(
            DeviceModel::default_14nm(),
            Second::from_nanoseconds(1.0),
            1.5,
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_nominal_access_rejected() {
        let _ = SramTiming::new(
            DeviceModel::default_14nm(),
            Second::new(f64::INFINITY),
            PERIPHERAL_FRACTION,
        );
    }

    #[test]
    fn boosted_access_is_bit_identical_to_the_cloning_path() {
        // `boosted_access_time` used to clone the bank (twice for Array
        // scope) just to re-scope it before querying `boosted_voltage`. The
        // by-ref scoped query must reproduce that path bit-for-bit.
        let t = SramTiming::macro_32kbit();
        let bank = BoosterBank::standard();
        for scope in [BoostScope::Array, BoostScope::Macro] {
            for mv in [340, 400, 500, 600, 700, 800] {
                let vdd = Volt::from_millivolts(f64::from(mv));
                for level in 0..=4 {
                    let periph = t.nominal_access * t.peripheral_fraction;
                    let array = t.nominal_access * (1.0 - t.peripheral_fraction);
                    let vddv = bank.clone().with_scope(scope).boosted_voltage(vdd, level);
                    let cloned = match scope {
                        BoostScope::Array => {
                            periph * t.device.relative_delay(vdd)
                                + array * t.device.relative_delay(vddv)
                        }
                        BoostScope::Macro => (periph + array) * t.device.relative_delay(vddv),
                    };
                    let by_ref = t.boosted_access_time(vdd, &bank, level, scope);
                    assert_eq!(
                        cloned.seconds().to_bits(),
                        by_ref.seconds().to_bits(),
                        "boosted access diverged at {vdd}, level {level}, {scope:?}"
                    );
                }
            }
        }
    }
}
