//! Strongly-typed physical quantities used throughout the workspace.
//!
//! Every electrical quantity that crosses a crate boundary is wrapped in a
//! newtype ([`Volt`], [`Farad`], [`Joule`], [`Watt`], [`Second`], [`Hertz`],
//! [`SquareMicron`]) so that, e.g., a boost capacitance can never be passed
//! where a supply voltage is expected. The wrappers are thin (`f64`-backed,
//! `Copy`) and provide only the arithmetic that is dimensionally meaningful:
//! addition/subtraction within a unit, scaling by a dimensionless factor, and
//! a handful of cross-unit products (`C * V^2 -> J`, `J / s -> W`, ...).
//!
//! # Examples
//!
//! ```
//! use dante_circuit::units::{Farad, Volt};
//!
//! let c = Farad::from_picofarads(10.0);
//! let v = Volt::new(0.4);
//! let e = c.switching_energy(v);
//! assert!((e.joules() - 10.0e-12 * 0.4 * 0.4).abs() < 1e-18);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $getter:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value in base SI units.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN; every quantity in the simulator must
            /// be an ordered number.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                Self(value)
            }

            /// `const` constructor for compile-time constants. Unlike
            /// [`Self::new`] this performs no NaN validation, so it is
            /// intended only for literal constants.
            #[must_use]
            pub const fn const_new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[must_use]
            pub fn $getter(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds are inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the value is finite (not inf/NaN).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

unit!(
    /// An electric potential in volts.
    Volt,
    "V",
    volts
);
unit!(
    /// A capacitance in farads.
    Farad,
    "F",
    farads
);
unit!(
    /// An energy in joules.
    Joule,
    "J",
    joules
);
unit!(
    /// A power in watts.
    Watt,
    "W",
    watts
);
unit!(
    /// A duration in seconds.
    Second,
    "s",
    seconds
);
unit!(
    /// A frequency in hertz.
    Hertz,
    "Hz",
    hertz
);
unit!(
    /// A silicon area in square micrometres.
    SquareMicron,
    "um^2",
    square_microns
);

impl Volt {
    /// Creates a potential from a value in millivolts.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Returns the value in millivolts.
    #[must_use]
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }

    /// Squares the potential; used by `C * V^2` energy terms.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl Farad {
    /// Creates a capacitance from a value in picofarads.
    #[must_use]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }

    /// Creates a capacitance from a value in femtofarads.
    #[must_use]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Returns the value in picofarads.
    #[must_use]
    pub fn picofarads(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in femtofarads.
    #[must_use]
    pub fn femtofarads(self) -> f64 {
        self.0 * 1e15
    }

    /// Full-swing switching energy `C * V^2` of this capacitance at `v`.
    ///
    /// This is the energy drawn from the supply over one charge/discharge
    /// cycle of a rail-to-rail node, the convention used for all dynamic
    /// energy accounting in this workspace.
    #[must_use]
    pub fn switching_energy(self, v: Volt) -> Joule {
        Joule::new(self.0 * v.squared())
    }
}

impl Joule {
    /// Creates an energy from a value in picojoules.
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Creates an energy from a value in femtojoules.
    #[must_use]
    pub fn from_femtojoules(fj: f64) -> Self {
        Self::new(fj * 1e-15)
    }

    /// Returns the value in picojoules.
    #[must_use]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in femtojoules.
    #[must_use]
    pub fn femtojoules(self) -> f64 {
        self.0 * 1e15
    }
}

impl Watt {
    /// Creates a power from a value in microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// Returns the value in microwatts.
    #[must_use]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Energy dissipated over a duration: `P * t`.
    #[must_use]
    pub fn energy_over(self, t: Second) -> Joule {
        Joule::new(self.0 * t.seconds())
    }
}

impl Second {
    /// Creates a duration from a value in nanoseconds.
    #[must_use]
    pub fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Returns the value in nanoseconds.
    #[must_use]
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1e9
    }
}

impl Hertz {
    /// Creates a frequency from a value in megahertz.
    #[must_use]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Returns the value in megahertz.
    #[must_use]
    pub fn megahertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Second {
        assert!(self.0 > 0.0, "period of a zero frequency is undefined");
        Second::new(1.0 / self.0)
    }
}

impl Div<Second> for Joule {
    /// Average power of an energy spread over a duration.
    type Output = Watt;
    fn div(self, rhs: Second) -> Watt {
        Watt::new(self.joules() / rhs.seconds())
    }
}

impl Mul<Second> for Watt {
    type Output = Joule;
    fn mul(self, rhs: Second) -> Joule {
        self.energy_over(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_constructors_and_accessors_round_trip() {
        let v = Volt::from_millivolts(450.0);
        assert!((v.volts() - 0.45).abs() < 1e-12);
        assert!((v.millivolts() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn farad_unit_conversions_round_trip() {
        let c = Farad::from_picofarads(10.0);
        assert!((c.femtofarads() - 10_000.0).abs() < 1e-6);
        assert!((Farad::from_femtofarads(1500.0).picofarads() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn switching_energy_is_cv2() {
        let c = Farad::from_femtofarads(100.0);
        let v = Volt::new(0.8);
        let e = c.switching_energy(v);
        assert!((e.femtojoules() - 100.0 * 0.64).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_ops_behave_dimensionally() {
        let a = Volt::new(0.4);
        let b = Volt::new(0.1);
        assert!(((a + b).volts() - 0.5).abs() < 1e-12);
        assert!(((a - b).volts() - 0.3).abs() < 1e-12);
        assert!(((a * 2.0).volts() - 0.8).abs() < 1e-12);
        assert!(((2.0 * a).volts() - 0.8).abs() < 1e-12);
        assert!(((a / 2.0).volts() - 0.2).abs() < 1e-12);
        assert!((a / b - 4.0).abs() < 1e-12);
        assert!(((-b).volts() + 0.1).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Watt::from_microwatts(5.0);
        let t = Second::from_nanoseconds(20.0);
        let e = p * t;
        assert!((e.femtojoules() - 100.0).abs() < 1e-9);
        let back = e / t;
        assert!((back.microwatts() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_round_trips() {
        let f = Hertz::from_megahertz(50.0);
        assert!((f.period().nanoseconds() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "period of a zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz::ZERO.period();
    }

    #[test]
    fn sum_accumulates() {
        let total: Joule = (0..4).map(|i| Joule::from_picojoules(f64::from(i))).sum();
        assert!((total.picojoules() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_clamp() {
        let a = Volt::new(0.3);
        let b = Volt::new(0.5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Volt::new(0.7).clamp(a, b), b);
        assert_eq!(Volt::new(0.1).clamp(a, b), a);
    }

    #[test]
    fn display_includes_unit_and_precision() {
        assert_eq!(format!("{:.2}", Volt::new(0.456)), "0.46 V");
        assert_eq!(format!("{}", Hertz::new(5.0)), "5 Hz");
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_rejected() {
        let _ = Volt::new(f64::NAN);
    }
}
