//! Structural SRAM macro model: access energy and latency *derived from
//! geometry* instead of asserted by calibration.
//!
//! The scalar calibration (`C_SRAM_ACCESS` in `dante-energy::params`, the
//! `nominal_access`/`peripheral_fraction` pair of [`crate::latency`]) pins
//! the paper's headline numbers directly. This module rebuilds the same
//! quantities bottom-up from a [`MacroGeometry`] — rows x columns x column
//! mux ratio x banks — following the open-source sram22 generator
//! (SNIPPETS.md): per-cell wordline/bitline capacitances measured by sram22,
//! a decoder tree sized by `log2(rows)`, precharge / column-mux / sense-amp
//! / write-driver column periphery, and a replica-bitline timing chain that
//! sets the sense-enable point.
//!
//! Per-access switched capacitance decomposes as
//!
//! ```text
//! C_access = C_decoder + C_wl·cols + C_bl·rows·swing + C_periph + C_outmux
//! ```
//!
//! where the bitline swing differs between access kinds: a *read* develops
//! only the sense-limited differential ([`BITLINE_SENSE_SWING`]) before the
//! replica path fires the sense amps, while a *write* drives the selected
//! columns rail-to-rail. Latency splits into a peripheral part (decode +
//! wordline drive) and an array part (replica-timed bitline development +
//! sense resolution); the ratio of the two *derives* the 45% peripheral
//! fraction the scalar model asserts, and the total derives the ~1 ns
//! nominal access.
//!
//! At the paper's geometries — a 32 Kbit macro (256 x 128, 4:1 mux) for
//! timing/boosting, two such macros ganged into a 64 Kbit bank for energy —
//! the derived numbers land on the scalar calibration: read access
//! capacitance ~6 pF (`Energy_ratio` ~3 against the 2 pF PE op), peripheral
//! fraction ~0.45, access time ~1 ns. The property tests in
//! `crates/circuit/tests/props.rs` and the `macro_model` golden record pin
//! this agreement.

use crate::device::DeviceModel;
use crate::latency::SramTiming;
use crate::units::{Farad, Joule, Second, Volt};

/// Wordline capacitance per attached cell, from sram22's measured 12-cell
/// extraction (`WORDLINE_CAP_PER_CELL`).
pub const C_WL_CELL: Farad = Farad::const_new(1.472_468_276_676_486e-14 / 12.0);

/// Bitline capacitance per attached cell, from sram22's measured 128-cell
/// extraction (`BITLINE_CAP_PER_CELL`).
pub const C_BL_CELL: Farad = Farad::const_new(8.859_364_177_937_068e-14 / 128.0);

/// Upper bound on a single wordline's capacitance before the driver can no
/// longer slew it within the access window (sram22's `WORDLINE_CAP_MAX`);
/// geometries whose `C_wl·cols` exceed it are rejected.
pub const WORDLINE_CAP_MAX: Farad = Farad::const_new(500e-15);

/// Fraction of the full rail a read develops on the bitlines before the
/// replica path fires the sense amps (sense-limited swing).
pub const BITLINE_SENSE_SWING: f64 = 0.225;

/// Precharge-device capacitance switched per column on every access.
pub const C_PRECHARGE_COL: Farad = Farad::const_new(2.0e-15);

/// Column-mux pass-gate capacitance switched per column.
pub const C_MUX_COL: Farad = Farad::const_new(1.5e-15);

/// Write-driver capacitance switched per *selected* column on a write.
pub const C_WRITE_DRIVER_COL: Farad = Farad::const_new(2.5e-15);

/// Sense-amplifier capacitance switched per sense amp (one per `mux`
/// columns) on a read.
pub const C_SENSE_AMP: Farad = Farad::const_new(4.0e-15);

/// Capacitance switched per decoder stage (predecode + hierarchical AND
/// tree); a macro with `2^k` rows burns `k` stages.
pub const C_DECODER_UNIT: Farad = Farad::const_new(2.0e-15);

/// The final wordline driver's own switched capacitance, as a fraction of
/// the wordline load it drives.
pub const WORDLINE_DRIVER_TAX: f64 = 0.35;

/// Output-multiplexer capacitance switched per data bit per bank hanging on
/// the shared bus.
pub const C_OUTPUT_BIT: Farad = Farad::const_new(1.5e-15);

/// Fraction of the rail the replica bitline must discharge before it trips
/// the sense-enable signal.
pub const REPLICA_TRIP: f64 = 0.5;

/// Number of always-on replica cells pulling the replica bitline down (the
/// sram22 control logic uses a multi-cell replica column so the replica
/// discharges faster than the worst-case data bitline — guaranteeing the
/// data swing is ready when sense-enable fires).
pub const REPLICA_CELLS: usize = 2;

/// Read current of one bitcell at the nominal 0.8 V rail, in amperes.
pub const I_CELL_READ: f64 = 80.0e-6;

/// Drive current of the final wordline driver at nominal voltage, in
/// amperes.
pub const I_WL_DRIVER: f64 = 1.25e-3;

/// Delay of one decoder stage at nominal voltage.
pub const T_DECODE_STAGE: Second = Second::const_new(45.0e-12);

/// Sense-amp resolution time after sense-enable fires, at nominal voltage.
pub const T_SENSE_RESOLVE: Second = Second::const_new(38.0e-12);

/// The kind of access whose switched capacitance is being computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Sense-limited read: bitlines develop only [`BITLINE_SENSE_SWING`] of
    /// the rail; sense amps fire, write drivers stay idle.
    Read,
    /// Full-swing write on the selected columns (half-selected columns still
    /// see the precharge-limited partial swing); write drivers fire, sense
    /// amps stay idle.
    Write,
}

/// Physical organization of one SRAM bank: `rows x cols` bitcell macros with
/// a `mux`:1 column multiplexer, `banks` of them ganged on one output bus.
///
/// # Examples
///
/// ```
/// use dante_circuit::macro_model::MacroGeometry;
///
/// let g = MacroGeometry::macro_32kbit();
/// assert_eq!(g.bits(), 32 * 1024);
/// assert_eq!(g.word_bits(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacroGeometry {
    /// Bitcell rows (wordlines) per macro; a power of two.
    pub rows: usize,
    /// Bitcell columns (bitline pairs) per macro; a power of two.
    pub cols: usize,
    /// Column-multiplexer ratio: `cols / mux` bits leave the macro per
    /// access. A power of two dividing `cols`.
    pub mux: usize,
    /// Macros ganged on one output bus (one accessed per cycle; the others
    /// only load the bus).
    pub banks: usize,
}

impl MacroGeometry {
    /// The paper's 32 Kbit macro: 256 rows x 128 columns, 4:1 mux, single
    /// bank — the unit the booster boosts and the timing model times.
    #[must_use]
    pub fn macro_32kbit() -> Self {
        Self {
            rows: 256,
            cols: 128,
            mux: 4,
            banks: 1,
        }
    }

    /// The 64 Kbit energy-accounting bank: two 32 Kbit macros ganged on one
    /// output bus (the unit `dante-energy` charges per access).
    #[must_use]
    pub fn bank_64kbit() -> Self {
        Self {
            rows: 256,
            cols: 128,
            mux: 4,
            banks: 2,
        }
    }

    /// Creates a validated geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`Self::validate`].
    #[must_use]
    pub fn new(rows: usize, cols: usize, mux: usize, banks: usize) -> Self {
        let g = Self {
            rows,
            cols,
            mux,
            banks,
        };
        if let Err(why) = g.validate() {
            panic!("invalid macro geometry: {why}");
        }
        g
    }

    /// Validates the geometry's bounds, returning a human-readable reason on
    /// rejection (the contract spec-level `validate` methods build on).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if !self.rows.is_power_of_two() || !(16..=1024).contains(&self.rows) {
            return Err(format!(
                "rows = {} must be a power of two in 16..=1024",
                self.rows
            ));
        }
        if !self.cols.is_power_of_two() || !(16..=512).contains(&self.cols) {
            return Err(format!(
                "cols = {} must be a power of two in 16..=512",
                self.cols
            ));
        }
        if !self.mux.is_power_of_two() || !(1..=16).contains(&self.mux) {
            return Err(format!(
                "mux = {} must be a power of two in 1..=16",
                self.mux
            ));
        }
        if self.mux > self.cols {
            return Err(format!(
                "mux = {} cannot exceed cols = {}",
                self.mux, self.cols
            ));
        }
        if !(1..=8).contains(&self.banks) {
            return Err(format!("banks = {} outside 1..=8", self.banks));
        }
        let c_wl = C_WL_CELL * self.cols as f64;
        if c_wl > WORDLINE_CAP_MAX {
            return Err(format!(
                "wordline load {:.1} fF exceeds the {:.0} fF driver limit \
                 (sram22 WORDLINE_CAP_MAX); reduce cols",
                c_wl.femtofarads(),
                WORDLINE_CAP_MAX.femtofarads()
            ));
        }
        Ok(())
    }

    /// Total bitcells across all banks.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.rows * self.cols * self.banks
    }

    /// Data bits per access (`cols / mux`).
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.cols / self.mux
    }

    /// Sense amps per macro (one per mux group).
    #[must_use]
    pub fn sense_amps(&self) -> usize {
        self.cols / self.mux
    }

    /// Decoder stages: `log2(rows)` levels of predecode + AND tree.
    #[must_use]
    pub fn decoder_stages(&self) -> usize {
        self.rows.trailing_zeros() as usize
    }

    /// Capacitance of one full wordline (`C_wl · cols`).
    #[must_use]
    pub fn wordline_cap(&self) -> Farad {
        C_WL_CELL * self.cols as f64
    }

    /// Capacitance of one bitline column (`C_bl · rows`).
    #[must_use]
    pub fn bitline_cap(&self) -> Farad {
        C_BL_CELL * self.rows as f64
    }
}

/// Per-access switched capacitance, broken down by structure. Summing the
/// components gives the effective `C_access` that `dante-energy` charges as
/// `C·V^2` per access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCapacitance {
    /// Row-decoder tree plus the final wordline driver.
    pub decoder: Farad,
    /// The fired wordline (`C_wl · cols`).
    pub wordline: Farad,
    /// Bitline charge moved across all columns (swing-weighted).
    pub bitline: Farad,
    /// Column periphery: precharge + column mux, plus sense amps (read) or
    /// write drivers (write).
    pub column_periphery: Farad,
    /// Bank output multiplexer / shared data bus (reads only).
    pub output_mux: Farad,
}

impl AccessCapacitance {
    /// Total effective switched capacitance of the access.
    #[must_use]
    pub fn total(&self) -> Farad {
        self.decoder + self.wordline + self.bitline + self.column_periphery + self.output_mux
    }

    /// Fraction of the total in the bitcell array (wordline + bitlines) —
    /// the portion an *array-scope* boost reaches.
    #[must_use]
    pub fn array_fraction(&self) -> f64 {
        (self.wordline + self.bitline) / self.total()
    }
}

/// The structural macro model: a device technology plus a geometry, from
/// which access capacitance, access energy, and replica-timed latency are
/// all derived.
///
/// # Examples
///
/// ```
/// use dante_circuit::macro_model::{AccessKind, SramMacroModel};
/// use dante_circuit::units::Volt;
///
/// let model = SramMacroModel::paper_bank();
/// // The 64 Kbit bank's read capacitance lands on the ~6 pF calibration.
/// let c = model.access_capacitance(AccessKind::Read).total();
/// assert!((c.picofarads() - 6.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SramMacroModel {
    device: DeviceModel,
    geometry: MacroGeometry,
}

impl SramMacroModel {
    /// Builds a model from a device and a validated geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`MacroGeometry::validate`].
    #[must_use]
    pub fn new(device: DeviceModel, geometry: MacroGeometry) -> Self {
        if let Err(why) = geometry.validate() {
            panic!("invalid macro geometry: {why}");
        }
        Self { device, geometry }
    }

    /// The paper's 64 Kbit energy bank on the default 14nm device.
    #[must_use]
    pub fn paper_bank() -> Self {
        Self::new(DeviceModel::default_14nm(), MacroGeometry::bank_64kbit())
    }

    /// The paper's 32 Kbit timing macro on the default 14nm device.
    #[must_use]
    pub fn paper_macro() -> Self {
        Self::new(DeviceModel::default_14nm(), MacroGeometry::macro_32kbit())
    }

    /// The device model in use.
    #[must_use]
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The geometry in use.
    #[must_use]
    pub fn geometry(&self) -> MacroGeometry {
        self.geometry
    }

    /// The per-access switched-capacitance breakdown for `kind`.
    ///
    /// Only the accessed macro's internals switch; the other `banks - 1`
    /// macros contribute output-bus load only.
    #[must_use]
    pub fn access_capacitance(&self, kind: AccessKind) -> AccessCapacitance {
        let g = self.geometry;
        let c_wl = g.wordline_cap();
        let c_bl_col = g.bitline_cap();
        let decoder = C_DECODER_UNIT * g.decoder_stages() as f64 + c_wl * WORDLINE_DRIVER_TAX;
        let shared_cols = (C_PRECHARGE_COL + C_MUX_COL) * g.cols as f64;
        match kind {
            AccessKind::Read => AccessCapacitance {
                decoder,
                wordline: c_wl,
                // Every column develops the sense-limited differential.
                bitline: c_bl_col * (g.cols as f64 * BITLINE_SENSE_SWING),
                column_periphery: shared_cols + C_SENSE_AMP * g.sense_amps() as f64,
                output_mux: C_OUTPUT_BIT * (g.word_bits() * g.banks) as f64,
            },
            AccessKind::Write => {
                let selected = g.word_bits() as f64;
                let half_selected = (g.cols - g.word_bits()) as f64;
                AccessCapacitance {
                    decoder,
                    wordline: c_wl,
                    // Selected columns swing rail-to-rail; half-selected
                    // columns still see the precharge-limited partial swing.
                    bitline: c_bl_col * (selected + half_selected * BITLINE_SENSE_SWING),
                    column_periphery: shared_cols + C_WRITE_DRIVER_COL * selected,
                    output_mux: Farad::ZERO,
                }
            }
        }
    }

    /// Dynamic energy of one access at rail voltage `v` (`C_access · V^2`).
    #[must_use]
    pub fn access_energy(&self, v: Volt, kind: AccessKind) -> Joule {
        self.access_capacitance(kind).total().switching_energy(v)
    }

    /// Replica-bitline delay at nominal voltage: the time [`REPLICA_CELLS`]
    /// always-on cells take to discharge one bitline column by
    /// [`REPLICA_TRIP`] of the rail. This is the sense-enable point.
    #[must_use]
    pub fn replica_delay(&self) -> Second {
        let charge = self.geometry.bitline_cap().farads() * REPLICA_TRIP;
        Second::new(charge / (REPLICA_CELLS as f64 * I_CELL_READ))
    }

    /// Safety margin of the replica path: how much longer the replica waits
    /// than the data bitlines need to develop [`BITLINE_SENSE_SWING`]. Must
    /// be at least 1 or reads mis-sense; the sram22 replica sizing
    /// (`REPLICA_TRIP / (REPLICA_CELLS · BITLINE_SENSE_SWING)`) guarantees
    /// it by construction.
    #[must_use]
    pub fn replica_margin(&self) -> f64 {
        REPLICA_TRIP / (REPLICA_CELLS as f64 * BITLINE_SENSE_SWING)
    }

    /// Array-side access delay at nominal voltage: replica-timed bitline
    /// development plus sense-amp resolution.
    #[must_use]
    pub fn array_delay(&self) -> Second {
        self.replica_delay() + T_SENSE_RESOLVE
    }

    /// Peripheral-side access delay at nominal voltage: decoder stages plus
    /// the wordline driver slewing its `C_wl · cols` load.
    #[must_use]
    pub fn peripheral_delay(&self) -> Second {
        let wl_slew = Second::new(self.geometry.wordline_cap().farads() / I_WL_DRIVER);
        T_DECODE_STAGE * self.geometry.decoder_stages() as f64 + wl_slew
    }

    /// Total nominal-voltage access time, derived from the replica-timed
    /// critical path (peripheral + array).
    #[must_use]
    pub fn nominal_access_time(&self) -> Second {
        self.peripheral_delay() + self.array_delay()
    }

    /// The peripheral fraction of the access — the quantity the scalar model
    /// asserts as `PERIPHERAL_FRACTION = 0.45`, here derived from the
    /// decode/replica delay split.
    #[must_use]
    pub fn derived_peripheral_fraction(&self) -> f64 {
        self.peripheral_delay() / self.nominal_access_time()
    }

    /// Builds the voltage-dependent timing model from the derived nominal
    /// access and peripheral fraction: the structural replacement for
    /// [`SramTiming::macro_32kbit`], compatible with every boosted-latency
    /// query (Fig. 9).
    #[must_use]
    pub fn timing(&self) -> SramTiming {
        SramTiming::new(
            self.device.clone(),
            self.nominal_access_time(),
            self.derived_peripheral_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_have_the_paper_sizes() {
        assert_eq!(MacroGeometry::macro_32kbit().bits(), 32 * 1024);
        assert_eq!(MacroGeometry::bank_64kbit().bits(), 64 * 1024);
        assert_eq!(MacroGeometry::macro_32kbit().word_bits(), 32);
        assert_eq!(MacroGeometry::macro_32kbit().decoder_stages(), 8);
    }

    #[test]
    fn bank_read_capacitance_lands_on_the_6pf_calibration() {
        let c = SramMacroModel::paper_bank()
            .access_capacitance(AccessKind::Read)
            .total();
        assert!(
            (c.picofarads() - 6.0).abs() < 0.05,
            "derived read capacitance {c} should land on the 6 pF scalar"
        );
    }

    #[test]
    fn write_costs_more_than_read() {
        let m = SramMacroModel::paper_bank();
        let r = m.access_capacitance(AccessKind::Read).total();
        let w = m.access_capacitance(AccessKind::Write).total();
        assert!(
            w > r,
            "full-swing write {w} must exceed sense-limited read {r}"
        );
    }

    #[test]
    fn access_energy_scales_as_v_squared() {
        let m = SramMacroModel::paper_bank();
        let e1 = m.access_energy(Volt::new(0.4), AccessKind::Read);
        let e2 = m.access_energy(Volt::new(0.8), AccessKind::Read);
        assert!((e2.joules() / e1.joules() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn replica_timing_derives_the_45_percent_peripheral_fraction() {
        let m = SramMacroModel::paper_macro();
        let f = m.derived_peripheral_fraction();
        assert!(
            (f - 0.45).abs() < 0.02,
            "derived peripheral fraction {f:.3} should land near 0.45"
        );
        let t = m.nominal_access_time();
        assert!(
            (t.nanoseconds() - 1.0).abs() < 0.1,
            "derived nominal access {t} should land near 1 ns"
        );
    }

    #[test]
    fn replica_fires_after_the_data_swing_is_ready() {
        let m = SramMacroModel::paper_macro();
        assert!(
            m.replica_margin() >= 1.0,
            "replica margin {:.2} would mis-sense",
            m.replica_margin()
        );
    }

    #[test]
    fn structural_timing_behaves_like_the_scalar_timing() {
        let t = SramMacroModel::paper_macro().timing();
        // Monotone latency blow-up towards threshold, normalized at nominal.
        assert!((t.normalized_access(Volt::new(0.8)) - 1.0).abs() < 1e-12);
        assert!(t.normalized_access(Volt::new(0.4)) > t.normalized_access(Volt::new(0.5)));
    }

    #[test]
    fn array_fraction_is_dominated_by_bitlines() {
        let c = SramMacroModel::paper_bank().access_capacitance(AccessKind::Read);
        assert!(c.array_fraction() > 0.8, "bitlines dominate access charge");
        assert!(c.bitline > c.wordline);
    }

    #[test]
    fn larger_macros_cost_more_per_access() {
        let small = SramMacroModel::new(
            DeviceModel::default_14nm(),
            MacroGeometry::new(128, 64, 4, 1),
        );
        let large = SramMacroModel::paper_macro();
        assert!(
            large.access_capacitance(AccessKind::Read).total()
                > small.access_capacitance(AccessKind::Read).total()
        );
        assert!(large.nominal_access_time() > small.nominal_access_time());
    }

    #[test]
    fn validation_rejects_bad_geometries() {
        assert!(MacroGeometry {
            rows: 100,
            cols: 128,
            mux: 4,
            banks: 1
        }
        .validate()
        .is_err());
        assert!(MacroGeometry {
            rows: 256,
            cols: 8,
            mux: 4,
            banks: 1
        }
        .validate()
        .is_err());
        assert!(MacroGeometry {
            rows: 256,
            cols: 128,
            mux: 3,
            banks: 1
        }
        .validate()
        .is_err());
        assert!(MacroGeometry {
            rows: 256,
            cols: 128,
            mux: 4,
            banks: 0
        }
        .validate()
        .is_err());
        // 512 columns would put ~628 fF on one wordline, past the sram22
        // driver limit.
        let err = MacroGeometry {
            rows: 256,
            cols: 512,
            mux: 4,
            banks: 1,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("wordline load"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid macro geometry")]
    fn constructor_panics_on_invalid_geometry() {
        let _ = MacroGeometry::new(100, 128, 4, 1);
    }
}
