//! Transient simulation of the boosted rail `Vddv` — the Spectre waveform of
//! paper Fig. 4, reproduced with a first-order RC model.
//!
//! Within an access cycle the boost clock is high for the first half-cycle:
//! enabled booster cells couple charge onto the rail, which rises toward
//! `Vdd + V_b` with a fast coupling time constant and then droops slowly
//! through rail leakage. During the low phase the rail relaxes back to `Vdd`.
//! Idle cycles (no access) keep the rail at `Vdd` — the property that gives
//! the architecture its leakage savings.

use crate::bic::{BoostConfig, BoostInputControl, ChipEnable, ClockPhase};
use crate::booster::BoosterBank;
use crate::units::{Second, Volt};

/// One scheduled bank access with the configuration in force at that cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Cycle index at which the access occurs.
    pub cycle: u64,
    /// Boost configuration programmed for this access.
    pub config: BoostConfig,
}

/// A sampled `Vddv(t)` waveform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    samples: Vec<(Second, Volt)>,
}

impl Waveform {
    /// The `(time, voltage)` samples in chronological order.
    #[must_use]
    pub fn samples(&self) -> &[(Second, Volt)] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak rail voltage over the whole waveform.
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    #[must_use]
    pub fn peak(&self) -> Volt {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None::<Volt>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))
            .expect("peak of an empty waveform")
    }

    /// Peak voltage within one cycle `[cycle*T, (cycle+1)*T)`.
    #[must_use]
    pub fn peak_in_cycle(&self, cycle: u64, cycle_time: Second) -> Option<Volt> {
        let start = cycle_time.seconds() * cycle as f64;
        let end = start + cycle_time.seconds();
        self.samples
            .iter()
            .filter(|(t, _)| t.seconds() >= start && t.seconds() < end)
            .map(|&(_, v)| v)
            .fold(None, |acc: Option<Volt>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }
}

/// Transient simulator for one bank's boosted rail.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSim {
    bank: BoosterBank,
    vdd: Volt,
    cycle_time: Second,
    samples_per_cycle: usize,
    /// Coupling rise time constant (fraction of a half-cycle).
    tau_rise: Second,
    /// Droop/relaxation time constant of the boosted rail.
    tau_droop: Second,
    /// Voltage the array's read current pulls off the rail over one boost
    /// phase (`Q_read / C_rail`).
    read_droop: Volt,
}

impl TransientSim {
    /// Creates a simulator for `bank` at supply `vdd` and the given cycle
    /// time, sampling `samples_per_cycle` points per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_cycle < 4` (the waveform would miss the boost
    /// pulse entirely) or if the cycle time is non-positive.
    #[must_use]
    pub fn new(bank: BoosterBank, vdd: Volt, cycle_time: Second, samples_per_cycle: usize) -> Self {
        assert!(samples_per_cycle >= 4, "need at least 4 samples per cycle");
        assert!(cycle_time.seconds() > 0.0, "cycle time must be positive");
        // Coupling onto the rail is near-instant; the return path through the
        // conducting pFETs is also fast, a fraction of the half-cycle.
        let tau_rise = cycle_time / 40.0;
        let tau_droop = cycle_time / 8.0;
        Self {
            bank,
            vdd,
            cycle_time,
            samples_per_cycle,
            tau_rise,
            tau_droop,
            read_droop: Volt::ZERO,
        }
    }

    /// Adds an array read-current droop: each boost phase sags by `droop`
    /// while the wordline is active (worst-case burst modelling; the paper's
    /// per-bank booster must keep the rail above target despite it).
    ///
    /// # Panics
    ///
    /// Panics if `droop` is negative.
    #[must_use]
    pub fn with_read_droop(mut self, droop: Volt) -> Self {
        assert!(droop >= Volt::ZERO, "droop must be non-negative");
        self.read_droop = droop;
        self
    }

    /// The minimum rail voltage seen during any *boost phase* of a
    /// back-to-back access burst of `cycles` cycles at `level` — the
    /// worst-case margin check for burst traffic.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `level` exceeds the bank's.
    #[must_use]
    pub fn worst_case_burst_rail(&self, level: usize, cycles: u64) -> Volt {
        assert!(cycles > 0, "a burst needs at least one cycle");
        let width = u8::try_from(self.bank.levels()).expect("bank level count fits in u8");
        let schedule: Vec<AccessEvent> = (0..cycles)
            .map(|cycle| AccessEvent {
                cycle,
                config: BoostConfig::from_level(level, width),
            })
            .collect();
        let wave = self.simulate(&schedule, cycles);
        let half = self.samples_per_cycle / 2;
        // Examine only samples in the second quarter of each boost phase,
        // after the coupling edge has settled.
        wave.samples()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let s = i % self.samples_per_cycle;
                s >= half / 2 && s < half
            })
            .map(|(_, &(_, v))| v)
            .fold(Volt::new(f64::INFINITY), Volt::min)
    }

    /// The booster bank under simulation.
    #[must_use]
    pub fn bank(&self) -> &BoosterBank {
        &self.bank
    }

    /// Simulates a schedule of accesses over `total_cycles` cycles and
    /// returns the sampled rail waveform. Cycles without a scheduled access
    /// keep the rail at `Vdd`.
    ///
    /// The BIC semantics are honoured exactly: each event programs the
    /// configuration register, which then applies to that access.
    #[must_use]
    pub fn simulate(&self, schedule: &[AccessEvent], total_cycles: u64) -> Waveform {
        let width = u8::try_from(self.bank.levels()).expect("bank level count fits in u8");
        let mut bic = BoostInputControl::new(width);
        let dt = self.cycle_time / self.samples_per_cycle as f64;
        let mut samples = Vec::with_capacity(total_cycles as usize * self.samples_per_cycle);
        let mut v = self.vdd;

        for cycle in 0..total_cycles {
            let event = schedule.iter().find(|e| e.cycle == cycle);
            if let Some(e) = event {
                bic.set_config(e.config);
            }
            let cen = if event.is_some() {
                ChipEnable::Active
            } else {
                ChipEnable::Idle
            };

            for s in 0..self.samples_per_cycle {
                let t =
                    Second::new(self.cycle_time.seconds() * cycle as f64 + dt.seconds() * s as f64);
                let clk = if s < self.samples_per_cycle / 2 {
                    ClockPhase::High
                } else {
                    ClockPhase::Low
                };
                let level = bic.boosting_count(cen, clk);
                let target = if level > 0 {
                    // The array's read current sags the boosted plateau.
                    self.bank.boosted_voltage(self.vdd, level) - self.read_droop
                } else {
                    self.vdd
                };
                // First-order step toward the target: fast coupling when
                // boosting upward, slow droop/relaxation otherwise.
                let tau = if target > v {
                    self.tau_rise
                } else {
                    self.tau_droop
                };
                let alpha = 1.0 - (-dt.seconds() / tau.seconds()).exp();
                v = v + (target - v) * alpha;
                samples.push((t, v));
            }
        }
        Waveform { samples }
    }

    /// Convenience: the Fig. 4 experiment — one access per cycle while the
    /// configuration steps through boost levels `1..=P`, showing the four
    /// distinct `Vddv` plateaus.
    #[must_use]
    pub fn level_staircase(&self, cycles_per_level: u64) -> Waveform {
        let width = u8::try_from(self.bank.levels()).expect("bank level count fits in u8");
        let mut schedule = Vec::new();
        for (i, level) in (1..=self.bank.levels()).enumerate() {
            for c in 0..cycles_per_level {
                schedule.push(AccessEvent {
                    cycle: i as u64 * cycles_per_level + c,
                    config: BoostConfig::from_level(level, width),
                });
            }
        }
        let total = self.bank.levels() as u64 * cycles_per_level;
        self.simulate(&schedule, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> TransientSim {
        TransientSim::new(
            BoosterBank::standard(),
            Volt::new(0.4),
            Second::from_nanoseconds(20.0),
            32,
        )
    }

    #[test]
    fn idle_rail_stays_at_vdd() {
        let w = sim().simulate(&[], 4);
        for &(_, v) in w.samples() {
            assert!((v.volts() - 0.4).abs() < 1e-9);
        }
    }

    #[test]
    fn boost_pulse_reaches_target_within_the_cycle() {
        // Paper: "supply voltage adjustment happens within a cycle".
        let s = sim();
        let cfg = BoostConfig::from_level(4, 4);
        let w = s.simulate(
            &[AccessEvent {
                cycle: 0,
                config: cfg,
            }],
            2,
        );
        let peak = w.peak_in_cycle(0, Second::from_nanoseconds(20.0)).unwrap();
        let target = s.bank().boosted_voltage(Volt::new(0.4), 4);
        assert!(
            (peak.volts() - target.volts()).abs() < 0.01,
            "peak {peak} did not reach target {target}"
        );
    }

    #[test]
    fn rail_returns_toward_vdd_after_access() {
        let s = sim();
        let cfg = BoostConfig::from_level(4, 4);
        let w = s.simulate(
            &[AccessEvent {
                cycle: 0,
                config: cfg,
            }],
            4,
        );
        let last = w.samples().last().unwrap().1;
        assert!(
            (last.volts() - 0.4).abs() < 0.03,
            "rail should relax to Vdd, ended at {last}"
        );
    }

    #[test]
    fn staircase_shows_distinct_plateaus_per_level() {
        let s = sim();
        let w = s.level_staircase(4);
        let ct = Second::from_nanoseconds(20.0);
        let mut peaks = Vec::new();
        for level in 0..4u64 {
            // Look at the last cycle of each plateau, where the rail settled.
            let peak = w.peak_in_cycle(level * 4 + 3, ct).unwrap();
            peaks.push(peak);
        }
        for pair in peaks.windows(2) {
            assert!(
                pair[1] > pair[0],
                "plateaus must increase with level: {:?}",
                peaks
            );
        }
        // Highest plateau approaches the level-4 target.
        let target = s.bank().boosted_voltage(Volt::new(0.4), 4);
        assert!((peaks[3].volts() - target.volts()).abs() < 0.02);
    }

    #[test]
    fn waveform_peak_and_len_are_consistent() {
        let s = sim();
        let w = s.level_staircase(2);
        assert_eq!(w.len(), 4 * 2 * 32);
        assert!(!w.is_empty());
        assert!(w.peak() > Volt::new(0.4));
    }

    #[test]
    fn burst_rail_holds_target_without_droop() {
        // Back-to-back accesses must not sag the plateau in the ideal model:
        // the booster re-arms every cycle.
        let s = sim();
        let worst = s.worst_case_burst_rail(4, 8);
        let target = s.bank().boosted_voltage(Volt::new(0.4), 4);
        assert!(
            (worst.volts() - target.volts()).abs() < 0.02,
            "worst {worst} vs target {target}"
        );
    }

    #[test]
    fn read_droop_sags_the_plateau_but_margin_survives() {
        // With a 20 mV read droop the worst-case burst rail sits ~20 mV
        // below the ideal plateau — and still far above the 0.48 V
        // iso-accuracy target when boosting from 0.40 V at level 4.
        let droop = Volt::from_millivolts(20.0);
        let s = sim().with_read_droop(droop);
        let ideal = sim().worst_case_burst_rail(4, 8);
        let sagged = s.worst_case_burst_rail(4, 8);
        let delta = (ideal - sagged).millivolts();
        assert!((10.0..=30.0).contains(&delta), "droop delta {delta:.1} mV");
        assert!(
            sagged > Volt::new(0.48),
            "burst rail {sagged} must clear the target"
        );
    }

    #[test]
    #[should_panic(expected = "droop must be non-negative")]
    fn negative_droop_rejected() {
        let _ = sim().with_read_droop(Volt::from_millivolts(-1.0));
    }

    #[test]
    #[should_panic(expected = "at least 4 samples")]
    fn too_coarse_sampling_rejected() {
        let _ = TransientSim::new(
            BoosterBank::standard(),
            Volt::new(0.4),
            Second::from_nanoseconds(20.0),
            2,
        );
    }
}
