//! # dante-circuit
//!
//! Circuit-level models for the *Dante* low-voltage DNN accelerator
//! reproduction (HPCA 2019, "Resilient Low Voltage Accelerators for High
//! Energy Efficiency"):
//!
//! * [`units`] — strongly-typed physical quantities ([`Volt`], [`Farad`],
//!   [`Joule`], ...).
//! * [`device`] — the shared 14nm-like technology model (alpha-power delay,
//!   `CV^2` dynamic energy, exponential leakage).
//! * [`booster`] — the programmable SRAM supply booster: boost inverters,
//!   MIM capacitors, booster cells and per-bank booster columns implementing
//!   the paper's Eq. 1, plus the four named Fig. 6 comparison circuits.
//! * [`bic`] — the Boost Input Control block: configuration registers,
//!   chip-enable/clock gating, the `set_boost_config` register semantics.
//! * [`transient`] — a first-order transient simulator of the boosted rail
//!   (the Fig. 4 waveforms).
//! * [`latency`] — SRAM access latency vs. voltage and under array/macro
//!   boosting (Figs. 7 and 9).
//! * [`macro_model`] — the structural SRAM macro model: rows x cols x mux x
//!   banks geometry from which access capacitance, energy and replica-timed
//!   latency are derived (sram22 constants) instead of calibrated.
//! * [`ldo`] — the Low-Dropout regulator model of the dual-supply baseline
//!   (Eq. 5).
//!
//! # Examples
//!
//! Boost a 0.4 V rail to each of the four programmable levels:
//!
//! ```
//! use dante_circuit::booster::BoosterBank;
//! use dante_circuit::units::Volt;
//!
//! let bank = BoosterBank::standard();
//! let vdd = Volt::new(0.4);
//! let ladder = bank.voltage_ladder(vdd);
//! assert_eq!(ladder.len(), 5); // levels 0..=4
//! assert!(ladder[4] > ladder[0]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bic;
pub mod booster;
pub mod device;
pub mod latency;
pub mod ldo;
pub mod macro_model;
pub mod transient;
pub mod units;

pub use bic::{BoostConfig, BoostInputControl, BoostScheduler, CellDrive, ChipEnable, ClockPhase};
pub use booster::{BoostLoad, BoostScope, BoosterBank, BoosterCell, MimCapacitor};
pub use device::DeviceModel;
pub use latency::SramTiming;
pub use ldo::Ldo;
pub use macro_model::{AccessCapacitance, AccessKind, MacroGeometry, SramMacroModel};
pub use transient::{AccessEvent, TransientSim, Waveform};
pub use units::{Farad, Hertz, Joule, Second, SquareMicron, Volt, Watt};
