//! 14nm-like device/technology model: delay, dynamic energy, and leakage
//! versus supply voltage.
//!
//! The paper obtains these curves from Cadence Spectre and Cadence Joules on
//! the foundry PDK; this module is the analytic stand-in (see DESIGN.md
//! "Calibration constants"). Three standard compact relations are used:
//!
//! * **Delay** — the alpha-power law `t(V) = k * V / (V - V_t)^alpha`
//!   (Sakurai–Newton), which reproduces the super-linear latency blow-up of
//!   Fig. 7 (bottom) as `V` approaches the threshold voltage.
//! * **Dynamic energy** — `E = C_eff * V^2` per event.
//! * **Leakage power** — `P(V) = P0 * (V / V_nom) * exp((V - V_nom) / v_dibl)`,
//!   an exponential DIBL-style dependence anchored at the nominal voltage.
//!
//! All consumers share one [`DeviceModel`] so that every crate in the
//! workspace is calibrated identically.

use crate::units::{Joule, Second, Volt, Watt};

/// Nominal supply voltage of the 14nm process used by the paper (0.8 V).
pub const V_NOM: Volt = Volt(0.8);

/// Compact 14nm-like technology model shared by all simulators.
///
/// # Examples
///
/// ```
/// use dante_circuit::device::DeviceModel;
/// use dante_circuit::units::Volt;
///
/// let dev = DeviceModel::default_14nm();
/// // Delay grows as voltage drops towards threshold:
/// assert!(dev.relative_delay(Volt::new(0.4)) > dev.relative_delay(Volt::new(0.6)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Threshold voltage `V_t` of the alpha-power delay law.
    vt: Volt,
    /// Velocity-saturation exponent `alpha` (between 1 and 2 in FinFETs).
    alpha: f64,
    /// Nominal supply voltage the model is anchored at.
    v_nom: Volt,
    /// DIBL-style leakage voltage scale (exponential slope).
    v_dibl: Volt,
}

// `Volt` is a private-field newtype; construct the constant through a helper
// in this crate where the field is visible.
#[allow(non_snake_case)]
const fn Volt(v: f64) -> Volt {
    crate::units::Volt::const_new(v)
}

impl DeviceModel {
    /// Returns the calibrated 14nm-like model used throughout the paper
    /// reproduction (`V_t = 0.23 V`, `alpha = 1.45`, `V_nom = 0.8 V`,
    /// `v_dibl = 2.5 V`).
    ///
    /// The leakage scale is deliberately shallow (total standby power of a
    /// high-V_t server SRAM falls only slightly faster than linearly with
    /// the rail); this is what calibrates the paper's 32% boost-vs-dual
    /// leakage savings (DESIGN.md Sec. 4).
    #[must_use]
    pub fn default_14nm() -> Self {
        Self {
            vt: Volt(0.23),
            alpha: 1.45,
            v_nom: V_NOM,
            v_dibl: Volt(2.5),
        }
    }

    /// Builds a custom model.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is non-finite, if `vt >= v_nom`, if `alpha` is
    /// not in `(0.5, 3.0]`, or if `v_dibl` is non-positive — such models are
    /// physically meaningless. (An infinite `v_nom` passes the ordering
    /// check but normalizes every delay to 0/inf, so finiteness is checked
    /// explicitly.)
    #[must_use]
    pub fn new(vt: Volt, alpha: f64, v_nom: Volt, v_dibl: Volt) -> Self {
        assert!(
            vt.is_finite() && v_nom.is_finite() && v_dibl.is_finite(),
            "device voltages must be finite"
        );
        assert!(vt.volts() < v_nom.volts(), "V_t must be below V_nom");
        assert!(
            alpha > 0.5 && alpha <= 3.0,
            "alpha-power exponent out of the physical range (0.5, 3.0]"
        );
        assert!(
            v_dibl.volts() > 0.0,
            "leakage voltage scale must be positive"
        );
        Self {
            vt,
            alpha,
            v_nom,
            v_dibl,
        }
    }

    /// Threshold voltage of the delay law.
    #[must_use]
    pub fn vt(&self) -> Volt {
        self.vt
    }

    /// Nominal supply voltage the model is anchored at.
    #[must_use]
    pub fn v_nom(&self) -> Volt {
        self.v_nom
    }

    /// Alpha-power delay relative to the delay at nominal voltage.
    ///
    /// `relative_delay(V_nom) == 1.0` and the value grows without bound as
    /// `v` approaches `V_t` from above.
    ///
    /// # Panics
    ///
    /// Panics if `v <= V_t`: logic does not switch below threshold in this
    /// model, so asking for its delay is a caller bug.
    #[must_use]
    pub fn relative_delay(&self, v: Volt) -> f64 {
        assert!(
            v.volts() > self.vt.volts(),
            "no valid delay at or below threshold ({} <= {})",
            v,
            self.vt
        );
        let d = |vv: f64| vv / (vv - self.vt.volts()).powf(self.alpha);
        d(v.volts()) / d(self.v_nom.volts())
    }

    /// Absolute delay given the delay measured at nominal voltage.
    #[must_use]
    pub fn delay(&self, v: Volt, delay_at_nominal: Second) -> Second {
        delay_at_nominal * self.relative_delay(v)
    }

    /// Leakage power at voltage `v` for a block whose leakage at nominal
    /// voltage is `p_nom`.
    ///
    /// Uses `P(V) = P_nom * (V/V_nom) * exp((V - V_nom)/v_dibl)`: the linear
    /// factor is the supply rail scaling, the exponential captures
    /// DIBL/subthreshold-slope reduction of leakage current at low voltage.
    #[must_use]
    pub fn leakage_power(&self, v: Volt, p_nom: Watt) -> Watt {
        let ratio = v.volts() / self.v_nom.volts();
        let expo = ((v.volts() - self.v_nom.volts()) / self.v_dibl.volts()).exp();
        p_nom * (ratio * expo)
    }

    /// Leakage energy accumulated over one clock cycle of period `cycle`.
    #[must_use]
    pub fn leakage_energy_per_cycle(&self, v: Volt, p_nom: Watt, cycle: Second) -> Joule {
        self.leakage_power(v, p_nom).energy_over(cycle)
    }

    /// Maximum operating frequency at `v` for a pipeline whose critical path
    /// equals `delay_at_nominal` at nominal voltage.
    #[must_use]
    pub fn max_frequency(&self, v: Volt, delay_at_nominal: Second) -> crate::units::Hertz {
        let t = self.delay(v, delay_at_nominal);
        crate::units::Hertz::new(1.0 / t.seconds())
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Second, Volt, Watt};

    #[test]
    fn relative_delay_is_one_at_nominal() {
        let dev = DeviceModel::default_14nm();
        assert!((dev.relative_delay(dev.v_nom()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_grows_steeply_at_low_voltage() {
        let dev = DeviceModel::default_14nm();
        let d04 = dev.relative_delay(Volt::new(0.4));
        let d05 = dev.relative_delay(Volt::new(0.5));
        let d08 = dev.relative_delay(Volt::new(0.8));
        assert!(d04 > d05 && d05 > d08);
        // Super-linear slowdown: going 0.8 -> 0.4 V (2x voltage) must cost
        // well over 2x in delay.
        assert!(d04 / d08 > 2.5, "slowdown at 0.4 V was only {}", d04 / d08);
    }

    #[test]
    #[should_panic(expected = "no valid delay")]
    fn delay_below_threshold_panics() {
        let dev = DeviceModel::default_14nm();
        let _ = dev.relative_delay(Volt::new(0.2));
    }

    #[test]
    fn leakage_drops_superlinearly_with_voltage() {
        let dev = DeviceModel::default_14nm();
        let p_nom = Watt::from_microwatts(100.0);
        let p_half = dev.leakage_power(Volt::new(0.4), p_nom);
        // Halving the rail must save more than the linear 50%, but the slope
        // is deliberately shallow (see default_14nm docs).
        assert!(p_half.microwatts() < 50.0);
        assert!(p_half.microwatts() > 25.0);
    }

    #[test]
    fn leakage_at_nominal_is_nominal() {
        let dev = DeviceModel::default_14nm();
        let p_nom = Watt::from_microwatts(42.0);
        let p = dev.leakage_power(dev.v_nom(), p_nom);
        assert!((p.microwatts() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_energy_per_cycle_scales_with_period() {
        let dev = DeviceModel::default_14nm();
        let p_nom = Watt::from_microwatts(10.0);
        let e1 =
            dev.leakage_energy_per_cycle(Volt::new(0.5), p_nom, Second::from_nanoseconds(20.0));
        let e2 =
            dev.leakage_energy_per_cycle(Volt::new(0.5), p_nom, Second::from_nanoseconds(40.0));
        assert!((e2.joules() / e1.joules() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_frequency_matches_table1_shape() {
        // Table 1: 330 MHz @ 0.8 V, and a fixed 50 MHz target for the whole
        // Vdd <= 0.5 V range. The critical path must still close at 50 MHz at
        // the lowest operating point, 0.34 V.
        let dev = DeviceModel::default_14nm();
        let crit = Second::from_nanoseconds(1.0 / 0.330);
        let f_floor = dev.max_frequency(Volt::new(0.34), crit);
        assert!(
            f_floor.megahertz() >= 50.0,
            "0.34 V must sustain the 50 MHz target, got {:.1} MHz",
            f_floor.megahertz()
        );
        assert!(
            f_floor.megahertz() < 200.0,
            "low-voltage frequency implausibly high"
        );
    }

    #[test]
    #[should_panic(expected = "V_t must be below")]
    fn invalid_model_rejected() {
        let _ = DeviceModel::new(Volt::new(0.9), 1.4, Volt::new(0.8), Volt::new(0.1));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_v_nom_rejected() {
        // An infinite V_nom satisfies `vt < v_nom` but would normalize every
        // delay against infinity; the finiteness gate must catch it.
        let _ = DeviceModel::new(
            Volt::new(0.23),
            1.45,
            Volt::new(f64::INFINITY),
            Volt::new(2.5),
        );
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_v_dibl_rejected() {
        let _ = DeviceModel::new(
            Volt::new(0.23),
            1.45,
            Volt::new(0.8),
            Volt::new(f64::INFINITY),
        );
    }
}
