//! The tracked Monte-Carlo performance harness behind `BENCH_mc.json`.
//!
//! Times the three layers the sparse tail-sampled overlay optimizes:
//!
//! 1. **Overlay generation** — drawing one fault die for a 4 Mbit image,
//!    dense per-cell Gaussian vs. sparse binomial + truncated tail.
//! 2. **Per-trial corruption** — the `"corrupt"` stage of the Monte-Carlo
//!    accuracy evaluator (quantize-once + undo-log hot path), dense vs.
//!    sparse sampling.
//! 3. **Forward pass** — the `"inference"` stage of the same evaluator,
//!    scalar per-image path vs. the trial-batched incremental GEMM path,
//!    with the batched throughput in images per second.
//! 4. **Full accuracy sweep** — the end-to-end MNIST voltage sweep the
//!    figures run, wall-clock dense vs. sparse.
//!
//! The report serializes to the machine-readable `BENCH_mc.json` committed
//! at the repo root (see EXPERIMENTS.md, "Benchmark workflow"); the
//! `bench_mc` binary regenerates it and `tests/perf_smoke.rs` gates the
//! headline generation speedup.

use crate::json::Value;
use dante::accuracy::{AccuracyEvaluator, ForwardPath, OverlaySampling, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante_circuit::units::Volt;
use dante_nn::network::Network;
use dante_sim::observer::TrialObserver;
use dante_sram::fault::VminFaultModel;
use dante_sram::sparse::{SparseCell, SparseOverlay};
use dante_sram::storage::FaultOverlay;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Overlay size for the generation benchmark: one 4 Mbit bit image, the
/// paper's SRAM test-array scale.
pub const OVERLAY_BITS: usize = 4 * 1024 * 1024;

/// Environment variable selecting quick mode (`=1`): smaller sample
/// counts and Monte-Carlo scale, suitable for CI smoke runs.
pub const QUICK_ENV: &str = "DANTE_BENCH_QUICK";

/// Environment variable overriding the output path of the `bench_mc`
/// binary (default `BENCH_mc.json` in the current directory).
pub const OUT_ENV: &str = "DANTE_BENCH_OUT";

/// Wall-time statistics of one benchmarked operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Number of timed samples (after one untimed warmup).
    pub samples: usize,
    /// Mean nanoseconds per operation.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per operation.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per operation.
    pub max_ns: f64,
}

impl Timing {
    /// Times `samples` batches of `iters` calls to `op` (one untimed
    /// warmup call first) and reports per-call statistics.
    ///
    /// # Panics
    ///
    /// Panics if `samples` or `iters` is zero.
    pub fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> Self {
        assert!(
            samples > 0 && iters > 0,
            "need at least one sample and iter"
        );
        op();
        let mut per_call = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                op();
            }
            per_call.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        let mean = per_call.iter().sum::<f64>() / per_call.len() as f64;
        let min = per_call.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_call.iter().copied().fold(0.0f64, f64::max);
        Self {
            samples,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        }
    }

    fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("samples".into(), Value::Number(self.samples as f64));
        map.insert("mean_ns".into(), Value::Number(self.mean_ns));
        map.insert("min_ns".into(), Value::Number(self.min_ns));
        map.insert("max_ns".into(), Value::Number(self.max_ns));
        Value::Object(map)
    }
}

/// Dense-vs-sparse overlay generation at one floor voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationBench {
    /// The sampling-floor voltage, volts.
    pub v_volts: f64,
    /// Covered bits (always [`OVERLAY_BITS`]).
    pub bits: usize,
    /// Dense per-cell Gaussian draw ([`FaultOverlay::from_seed`]).
    pub dense: Timing,
    /// Sparse tail sampling into reused buffers
    /// ([`SparseOverlay::sample_cells_into`]).
    pub sparse: Timing,
}

impl GenerationBench {
    /// Mean dense time over mean sparse time.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dense.mean_ns / self.sparse.mean_ns
    }

    fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("v_volts".into(), Value::Number(self.v_volts));
        map.insert("bits".into(), Value::Number(self.bits as f64));
        map.insert("dense".into(), self.dense.to_json());
        map.insert("sparse".into(), self.sparse.to_json());
        map.insert("speedup".into(), Value::Number(self.speedup()));
        Value::Object(map)
    }
}

/// Times overlay generation for a 4 Mbit image at floor voltage `v`.
///
/// Sparse iteration counts scale with the expected faulty-cell count so
/// microsecond-scale draws still get millisecond-scale timed batches.
#[must_use]
pub fn generation_bench(v: Volt, quick: bool) -> GenerationBench {
    let model = VminFaultModel::default_14nm();
    let samples = if quick { 3 } else { 5 };
    let mut seed = 0u64;
    let dense = Timing::measure(samples, 1, || {
        seed += 1;
        black_box(FaultOverlay::from_seed(OVERLAY_BITS, &model, seed));
    });
    let expected_faults = OVERLAY_BITS as f64 * model.bit_error_rate(v);
    let iters = if expected_faults < 1_000.0 { 256 } else { 4 };
    let mut indices: Vec<u64> = Vec::new();
    let mut cells: Vec<SparseCell> = Vec::new();
    let mut seed = 0u64;
    let sparse = Timing::measure(samples, iters, || {
        seed += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        SparseOverlay::sample_cells_into(
            OVERLAY_BITS,
            &model,
            v,
            &mut rng,
            &mut indices,
            &mut cells,
        );
        black_box(cells.len());
    });
    GenerationBench {
        v_volts: v.volts(),
        bits: OVERLAY_BITS,
        dense,
        sparse,
    }
}

/// Collects the evaluator's per-trial durations for one named stage.
#[derive(Debug)]
struct StageCollector {
    stage: &'static str,
    durations: Mutex<Vec<Duration>>,
}

impl StageCollector {
    fn new(stage: &'static str) -> Self {
        Self {
            stage,
            durations: Mutex::new(Vec::new()),
        }
    }
}

impl TrialObserver for StageCollector {
    fn on_stage(&self, stage: &'static str, elapsed: Duration) {
        if stage == self.stage {
            self.durations
                .lock()
                .expect("collector mutex poisoned")
                .push(elapsed);
        }
    }
}

/// Mean per-trial duration of one evaluator stage, nanoseconds.
fn mean_stage_ns(
    eval: &AccuracyEvaluator,
    stage: &'static str,
    net: &Network,
    assignment: &VoltageAssignment,
    images: &[f32],
    labels: &[u8],
) -> f64 {
    let collector = StageCollector::new(stage);
    let _ = eval.evaluate_observed(net, assignment, images, labels, 0xC0DE, &collector);
    let durations = collector.durations.into_inner().expect("mutex poisoned");
    assert!(
        !durations.is_empty(),
        "evaluator reported no {stage} stages"
    );
    durations.iter().map(|d| d.as_secs_f64() * 1e9).sum::<f64>() / durations.len() as f64
}

/// Mean per-trial corruption time of the accuracy evaluator, dense vs.
/// sparse sampling, at one uniform voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionBench {
    /// The uniform evaluation voltage, volts.
    pub v_volts: f64,
    /// Trials per sampling mode.
    pub trials: usize,
    /// Mean dense `"corrupt"` stage, nanoseconds.
    pub dense_ns: f64,
    /// Mean sparse `"corrupt"` stage, nanoseconds.
    pub sparse_ns: f64,
}

impl CorruptionBench {
    /// Mean dense corrupt-stage time over mean sparse.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dense_ns / self.sparse_ns
    }

    fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("v_volts".into(), Value::Number(self.v_volts));
        map.insert("trials".into(), Value::Number(self.trials as f64));
        map.insert("dense_ns".into(), Value::Number(self.dense_ns));
        map.insert("sparse_ns".into(), Value::Number(self.sparse_ns));
        map.insert("speedup".into(), Value::Number(self.speedup()));
        Value::Object(map)
    }
}

/// Per-trial forward-pass (`"inference"` stage) timing of the accuracy
/// evaluator, scalar vs. trial-batched, at one uniform voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardPassBench {
    /// The uniform evaluation voltage, volts.
    pub v_volts: f64,
    /// Trials per forward path.
    pub trials: usize,
    /// Test images scored per trial.
    pub test_images: usize,
    /// Mean scalar-path `"inference"` stage, nanoseconds.
    pub scalar_ns: f64,
    /// Mean trial-batched `"inference"` stage, nanoseconds.
    pub batched_ns: f64,
}

impl ForwardPassBench {
    /// Mean scalar inference time over mean batched.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.scalar_ns / self.batched_ns
    }

    /// Batched forward-pass throughput, scored images per second.
    #[must_use]
    pub fn batched_images_per_sec(&self) -> f64 {
        self.test_images as f64 / (self.batched_ns * 1e-9)
    }

    fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("v_volts".into(), Value::Number(self.v_volts));
        map.insert("trials".into(), Value::Number(self.trials as f64));
        map.insert("test_images".into(), Value::Number(self.test_images as f64));
        map.insert("scalar_ns".into(), Value::Number(self.scalar_ns));
        map.insert("batched_ns".into(), Value::Number(self.batched_ns));
        map.insert("speedup".into(), Value::Number(self.speedup()));
        map.insert(
            "batched_images_per_sec".into(),
            Value::Number(self.batched_images_per_sec()),
        );
        Value::Object(map)
    }
}

/// Times the evaluator's `"inference"` stage under both forward paths at
/// voltage `v` (sparse tail sampling, the production configuration).
///
/// The voltage sets how much the incremental path can skip: at the cliff
/// (0.44 V) nearly every weight word is touched and the batched win is
/// mostly the tiled GEMM; in the deep tail (0.54 V) only a handful of
/// words flip and the incremental re-scoring dominates.
#[must_use]
pub fn forward_pass_bench(
    net: &Network,
    images: &[f32],
    labels: &[u8],
    trials: usize,
    v: Volt,
) -> ForwardPassBench {
    let layers = net.weight_layer_indices().len();
    let assignment = VoltageAssignment::uniform(v, layers);
    let stage_ns = |path| {
        let eval = AccuracyEvaluator::new(trials)
            .with_sampling(OverlaySampling::SparseTail)
            .with_forward_path(path);
        mean_stage_ns(&eval, "inference", net, &assignment, images, labels)
    };
    ForwardPassBench {
        v_volts: v.volts(),
        trials,
        test_images: labels.len(),
        scalar_ns: stage_ns(ForwardPath::Scalar),
        batched_ns: stage_ns(ForwardPath::Batched),
    }
}

/// End-to-end MNIST accuracy voltage sweep, dense vs. sparse.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBench {
    /// Swept voltages, volts.
    pub voltages: Vec<f64>,
    /// Monte-Carlo trials per voltage.
    pub trials: usize,
    /// Test images per trial.
    pub test_images: usize,
    /// Dense wall-clock, seconds.
    pub dense_seconds: f64,
    /// Sparse wall-clock, seconds.
    pub sparse_seconds: f64,
    /// Mean accuracy per voltage, dense sampling.
    pub dense_accuracy: Vec<f64>,
    /// Mean accuracy per voltage, sparse sampling.
    pub sparse_accuracy: Vec<f64>,
}

impl SweepBench {
    /// Dense wall-clock over sparse wall-clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.dense_seconds / self.sparse_seconds
    }

    /// Largest dense-vs-sparse mean-accuracy gap across the sweep (the two
    /// samplers draw different streams, so this is Monte-Carlo noise, not
    /// an equivalence bound — it just flags gross divergence).
    #[must_use]
    pub fn max_accuracy_delta(&self) -> f64 {
        self.dense_accuracy
            .iter()
            .zip(&self.sparse_accuracy)
            .map(|(d, s)| (d - s).abs())
            .fold(0.0, f64::max)
    }

    fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert(
            "voltages".into(),
            Value::Array(self.voltages.iter().map(|&v| Value::Number(v)).collect()),
        );
        map.insert("trials".into(), Value::Number(self.trials as f64));
        map.insert("test_images".into(), Value::Number(self.test_images as f64));
        map.insert("dense_seconds".into(), Value::Number(self.dense_seconds));
        map.insert("sparse_seconds".into(), Value::Number(self.sparse_seconds));
        map.insert("speedup".into(), Value::Number(self.speedup()));
        map.insert(
            "dense_accuracy".into(),
            Value::Array(
                self.dense_accuracy
                    .iter()
                    .map(|&a| Value::Number(a))
                    .collect(),
            ),
        );
        map.insert(
            "sparse_accuracy".into(),
            Value::Array(
                self.sparse_accuracy
                    .iter()
                    .map(|&a| Value::Number(a))
                    .collect(),
            ),
        );
        map.insert(
            "max_accuracy_delta".into(),
            Value::Number(self.max_accuracy_delta()),
        );
        Value::Object(map)
    }
}

/// The full Monte-Carlo benchmark report serialized to `BENCH_mc.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct McBenchReport {
    /// Whether the run used the quick (CI smoke) scale.
    pub quick: bool,
    /// Overlay generation rows, one per floor voltage.
    pub generation: Vec<GenerationBench>,
    /// Per-trial corruption stage timing.
    pub corruption: CorruptionBench,
    /// Per-trial forward-pass stage timing, scalar vs. batched, one row
    /// per voltage (cliff and tail).
    pub forward_pass: Vec<ForwardPassBench>,
    /// End-to-end accuracy sweep timing.
    pub sweep: SweepBench,
}

impl McBenchReport {
    /// The report as a JSON value (the `BENCH_mc.json` schema).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("bench".into(), Value::String("mc".into()));
        map.insert("quick".into(), Value::Bool(self.quick));
        map.insert(
            "generation".into(),
            Value::Array(
                self.generation
                    .iter()
                    .map(GenerationBench::to_json)
                    .collect(),
            ),
        );
        map.insert("per_trial_corruption".into(), self.corruption.to_json());
        map.insert(
            "forward_pass".into(),
            Value::Array(
                self.forward_pass
                    .iter()
                    .map(ForwardPassBench::to_json)
                    .collect(),
            ),
        );
        map.insert("accuracy_sweep".into(), self.sweep.to_json());
        Value::Object(map)
    }

    /// Pretty-printed `BENCH_mc.json` content (trailing newline included).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }
}

/// Runs the full benchmark suite.
///
/// Quick mode shrinks sample counts and the Monte-Carlo scale so the suite
/// finishes in well under a minute for CI smoke runs; full mode is the
/// scale behind the committed `BENCH_mc.json`.
#[must_use]
pub fn run_mc_bench(quick: bool) -> McBenchReport {
    // Generation: the headline ≥100x claim lives at 0.54 V (deep tail,
    // a handful of faulty cells); 0.44 V shows the cliff-region balance.
    let generation = vec![
        generation_bench(Volt::new(0.54), quick),
        generation_bench(Volt::new(0.44), quick),
    ];

    let (trials, train_n, test_n, epochs) = if quick {
        (6, 2_000, 200, 2)
    } else {
        (20, 5_000, 1_000, 4)
    };
    let (net, test) = trained_mnist_fc(train_n, test_n, epochs);
    let layers = net.weight_layer_indices().len();

    let v_cliff = Volt::new(0.44);
    let assignment = VoltageAssignment::uniform(v_cliff, layers);
    let dense_eval = AccuracyEvaluator::new(trials).with_sampling(OverlaySampling::Dense);
    let sparse_eval = AccuracyEvaluator::new(trials).with_sampling(OverlaySampling::SparseTail);
    let corrupt_ns = |eval: &AccuracyEvaluator| {
        mean_stage_ns(
            eval,
            "corrupt",
            &net,
            &assignment,
            test.images(),
            test.labels(),
        )
    };
    let corruption = CorruptionBench {
        v_volts: v_cliff.volts(),
        trials,
        dense_ns: corrupt_ns(&dense_eval),
        sparse_ns: corrupt_ns(&sparse_eval),
    };

    // Cliff (everything dirty: the pure-GEMM win) and deep tail (a
    // handful of flips: the incremental win), matching the generation
    // bench's two regimes.
    let forward_pass = [v_cliff, Volt::new(0.54)]
        .iter()
        .map(|&v| forward_pass_bench(&net, test.images(), test.labels(), trials, v))
        .collect();

    let voltages: Vec<Volt> = if quick {
        vec![Volt::new(0.38), Volt::new(0.44), Volt::new(0.50)]
    } else {
        (0..=8)
            .map(|i| Volt::new(0.36 + 0.02 * f64::from(i)))
            .collect()
    };
    let mut sweep = SweepBench {
        voltages: voltages.iter().map(|v| v.volts()).collect(),
        trials,
        test_images: test.labels().len(),
        dense_seconds: 0.0,
        sparse_seconds: 0.0,
        dense_accuracy: Vec::new(),
        sparse_accuracy: Vec::new(),
    };
    for (eval, seconds, accuracy) in [
        (
            &dense_eval,
            &mut sweep.dense_seconds,
            &mut sweep.dense_accuracy,
        ),
        (
            &sparse_eval,
            &mut sweep.sparse_seconds,
            &mut sweep.sparse_accuracy,
        ),
    ] {
        let t0 = Instant::now();
        for &v in &voltages {
            let stats = eval.evaluate(
                &net,
                &VoltageAssignment::uniform(v, layers),
                test.images(),
                test.labels(),
                0x000F_1BE0,
            );
            accuracy.push(stats.mean());
        }
        *seconds = t0.elapsed().as_secs_f64();
    }

    McBenchReport {
        quick,
        generation,
        corruption,
        forward_pass,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measure_reports_consistent_stats() {
        let t = Timing::measure(4, 10, || {
            black_box((0..100).sum::<u64>());
        });
        assert_eq!(t.samples, 4);
        assert!(t.min_ns <= t.mean_ns && t.mean_ns <= t.max_ns);
        assert!(t.min_ns > 0.0);
    }

    #[test]
    fn generation_bench_meets_the_sparse_speedup_floor() {
        // The tentpole acceptance: at 0.54 V a 4 Mbit sparse draw must be
        // at least 100x faster than the dense per-cell draw.
        let row = generation_bench(Volt::new(0.54), true);
        assert!(
            row.speedup() >= 100.0,
            "sparse generation speedup {:.0}x below the 100x floor (dense {:.0} ns, sparse {:.0} ns)",
            row.speedup(),
            row.dense.mean_ns,
            row.sparse.mean_ns
        );
    }

    #[test]
    fn report_json_roundtrips_through_the_parser() {
        let report = McBenchReport {
            quick: true,
            generation: vec![GenerationBench {
                v_volts: 0.54,
                bits: OVERLAY_BITS,
                dense: Timing {
                    samples: 3,
                    mean_ns: 5e7,
                    min_ns: 4e7,
                    max_ns: 6e7,
                },
                sparse: Timing {
                    samples: 3,
                    mean_ns: 2e3,
                    min_ns: 1e3,
                    max_ns: 3e3,
                },
            }],
            corruption: CorruptionBench {
                v_volts: 0.44,
                trials: 6,
                dense_ns: 1e8,
                sparse_ns: 1e6,
            },
            forward_pass: vec![ForwardPassBench {
                v_volts: 0.44,
                trials: 6,
                test_images: 200,
                scalar_ns: 8e8,
                batched_ns: 1e8,
            }],
            sweep: SweepBench {
                voltages: vec![0.38, 0.44, 0.50],
                trials: 6,
                test_images: 200,
                dense_seconds: 10.0,
                sparse_seconds: 2.0,
                dense_accuracy: vec![0.5, 0.8, 0.9],
                sparse_accuracy: vec![0.52, 0.79, 0.9],
            },
        };
        let parsed = crate::json::parse(&report.to_json_pretty()).expect("valid JSON");
        assert_eq!(parsed.get("bench").and_then(Value::as_str), Some("mc"));
        let gen = parsed
            .get("generation")
            .and_then(Value::as_array)
            .expect("generation array");
        let speedup = gen[0]
            .get("speedup")
            .and_then(Value::as_f64)
            .expect("speedup");
        assert!((speedup - 25_000.0).abs() < 1.0);
        let sweep_speedup = parsed
            .get("accuracy_sweep")
            .and_then(|s| s.get("speedup"))
            .and_then(Value::as_f64)
            .expect("sweep speedup");
        assert!((sweep_speedup - 5.0).abs() < 1e-9);
        let fwd = &parsed
            .get("forward_pass")
            .and_then(Value::as_array)
            .expect("forward_pass rows")[0];
        let fwd_speedup = fwd
            .get("speedup")
            .and_then(Value::as_f64)
            .expect("forward speedup");
        assert!((fwd_speedup - 8.0).abs() < 1e-9);
        let throughput = fwd
            .get("batched_images_per_sec")
            .and_then(Value::as_f64)
            .expect("throughput");
        assert!((throughput - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn forward_pass_bench_times_both_paths_consistently() {
        // A tiny trained net: the point is that both paths produce positive
        // inference timings over the same trial count, not the speedup
        // itself (that claim is gated at full scale in perf_smoke).
        let (net, test) = trained_mnist_fc(400, 64, 1);
        let row = forward_pass_bench(&net, test.images(), test.labels(), 3, Volt::new(0.44));
        assert_eq!(row.trials, 3);
        assert_eq!(row.test_images, 64);
        assert!(row.scalar_ns > 0.0 && row.batched_ns > 0.0);
        assert!(row.batched_images_per_sec() > 0.0);
    }
}
