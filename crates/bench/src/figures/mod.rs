//! Figure/table regeneration functions, one per paper artifact.

pub mod ablation;
pub mod accuracy;
pub mod circuit;
pub mod energy;
pub mod tables;
pub mod validation;
