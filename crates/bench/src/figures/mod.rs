//! Figure/table regeneration functions, one per paper artifact.

pub mod ablation;
pub mod accuracy;
pub mod circuit;
pub mod energy;
pub mod fleet;
pub mod macro_model;
pub mod retrain;
pub mod tables;
pub mod validation;

use crate::record::FigureRecord;

/// The deterministic paper artifacts covered by the golden snapshot suite
/// (`crates/verify` and `tests/golden_snapshots.rs`).
///
/// Every record here is a *deterministic* function of the models — no
/// environment knobs, no wall-clock, no shared RNG state — so a regenerated
/// record must match its blessed copy in `results/golden/` within tight
/// per-metric tolerance bands. Most records are pure analytic functions;
/// `iso_accuracy` and `retrain` additionally exercise Monte-Carlo trials
/// and a cached trained network (`retrain` also runs the fault-injected
/// fine-tuning loop), which is sound here because the trial engine and the
/// training loop derive every die from counters (same results on any
/// machine and thread count) and the artifact cache pins the base weights. Statistically-accepted
/// Monte-Carlo figures (fig01, fig02, fig13..fig15, validation,
/// ablation_ecc) remain excluded: their acceptance lives in
/// `tests/fault_model_stats.rs`.
#[must_use]
pub fn golden_records() -> Vec<FigureRecord> {
    vec![
        circuit::fig04(),
        circuit::fig06(),
        circuit::fig07(),
        circuit::fig08(),
        circuit::fig09(),
        energy::fig12(),
        energy::table3(),
        energy::headlines(),
        energy::iso_accuracy(),
        fleet::fleet(),
        macro_model::macro_model(),
        retrain::retrain(),
        tables::table1(),
        tables::table2(),
        ablation::ablation_levels(),
        ablation::ablation_dataflow(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_registry_ids_are_unique_and_finite() {
        let recs = golden_records();
        assert_eq!(recs.len(), 16);
        let mut ids: Vec<&str> = recs.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16, "duplicate record ids in golden registry");
        for r in &recs {
            for s in &r.series {
                for &(x, y) in &s.points {
                    assert!(
                        x.is_finite() && y.is_finite(),
                        "{}/{}: non-finite point ({x}, {y})",
                        r.id,
                        s.name
                    );
                }
            }
        }
    }

    #[test]
    fn golden_registry_is_deterministic() {
        // Two back-to-back regenerations must be identical — the property the
        // snapshot suite relies on.
        assert_eq!(golden_records(), golden_records());
    }
}
