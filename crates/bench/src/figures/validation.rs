//! Model-validation experiment: the fast statistical fault-injection path
//! (`dante::accuracy`) against the bit-accurate accelerator simulator
//! (`dante-accel`), across supply voltage.
//!
//! The paper validates its TensorFlow fault model against silicon; we have
//! no silicon, so the reproduction validates its *two independent
//! implementations of the same physics* against each other: the statistical
//! evaluator corrupts quantized weights analytically, the simulator runs
//! every access through boosted banked memories. Agreement across the cliff
//! region is the evidence that the fast path used by the big figures is
//! trustworthy.

use crate::record::{FigureRecord, RunScale, Series};
use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::program::Program;
use dante_circuit::units::Volt;
use dante_nn::data::generate_mnist_like;
use dante_nn::data::synth_mnist::downsample;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_nn::train::{train, SgdConfig};
use dante_sim::{derive_seed, site};
use dante_sram::fault::VminFaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the small pooled-digit network used for validation (49-48-10).
fn pooled_digit_net(train_n: usize) -> (Network, Vec<f32>, Vec<u8>) {
    let ds = generate_mnist_like(train_n, 21);
    let test = generate_mnist_like(160, 22);
    let train_x = downsample(ds.images(), 4);
    let test_x = downsample(test.images(), 4);
    let mut rng = StdRng::seed_from_u64(31);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(49, 48, &mut rng)),
        Layer::Relu(Relu::new(48)),
        Layer::Dense(Dense::new(48, 10, &mut rng)),
    ])
    .expect("static shapes");
    let cfg = SgdConfig {
        epochs: 25,
        batch_size: 20,
        ..SgdConfig::default()
    };
    train(&mut net, &train_x, ds.labels(), &cfg, &mut rng);
    (net, test_x, test.labels().to_vec())
}

/// Runs the validation sweep: weights exposed at the supply voltage,
/// activations protected (input level 3), statistical path vs simulator.
#[must_use]
pub fn validation(scale: RunScale) -> FigureRecord {
    let (net, test_x, labels) = pooled_digit_net(scale.train_images.clamp(400, 1000));
    let n = scale.test_images.min(labels.len());
    let images = &test_x[..49 * n];
    let labels = &labels[..n];

    let evaluator = AccuracyEvaluator::new(scale.trials);
    let program = Program::compile(&net, &images[..49 * 20.min(n)]).expect("dense net");
    let model = VminFaultModel::default_14nm();
    let booster = ChipConfig::dante().booster();

    let mut eval_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for mv in (340..=500).step_by(40) {
        let vdd = Volt::from_millivolts(f64::from(mv));
        // Statistical path: weights at Vdd, inputs at the level-3 rail.
        let safe = booster.boosted_voltage(vdd, 3);
        let assignment = VoltageAssignment::weights_only(vdd, 2, safe);
        let eval_acc = evaluator
            .evaluate(&net, &assignment, images, labels, 0x5A17)
            .mean();

        // Simulator path: fresh dies, weights unboosted, inputs at level 3.
        // Each die's seed is derived the same way the trial engine derives
        // trial seeds, so any die can be regenerated in isolation.
        let dies = scale.trials.clamp(2, 4);
        let mut acc_sum = 0.0;
        for die in 0..dies {
            let mut rng = StdRng::seed_from_u64(derive_seed(0x5A17, site::TRIAL, die as u64));
            let mut dante = Dante::new(ChipConfig::dante(), &model, vdd, &mut rng);
            acc_sum += dante.accuracy(&program, &BoostSchedule::uniform(0, 2, 3), images, labels);
        }
        let sim_acc = acc_sum / dies as f64;
        eval_pts.push((vdd.volts(), eval_acc));
        sim_pts.push((vdd.volts(), sim_acc));
    }

    let max_gap = eval_pts
        .iter()
        .zip(&sim_pts)
        .map(|(e, s)| (e.1 - s.1).abs())
        .fold(0.0f64, f64::max);
    FigureRecord::new(
        "validation",
        "Statistical fault-injection path vs bit-accurate simulator: accuracy vs Vdd",
        "Vdd [V]",
        "accuracy",
    )
    .with_series(Series::new("statistical evaluator", eval_pts))
    .with_series(Series::new("accelerator simulator", sim_pts))
    .with_note(format!("max disagreement across the sweep: {max_gap:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_paths_agree_through_the_cliff() {
        let scale = RunScale {
            trials: 3,
            test_images: 60,
            epochs: 25,
            train_images: 600,
        };
        let rec = validation(scale);
        let eval = &rec.series[0].points;
        let sim = &rec.series[1].points;
        assert_eq!(eval.len(), sim.len());
        // Loose band: at 3 dies x 60 images each path carries ~0.06 of
        // binomial noise, and the dies are independent between the paths.
        for (e, s) in eval.iter().zip(sim) {
            assert!(
                (e.1 - s.1).abs() < 0.25,
                "paths disagree at {} V: evaluator {} vs simulator {}",
                e.0,
                e.1,
                s.1
            );
        }
        // Both show the cliff: low accuracy at 0.34 V, high at 0.50 V.
        assert!(eval.first().unwrap().1 < 0.6 && eval.last().unwrap().1 > 0.85);
        assert!(sim.first().unwrap().1 < 0.6 && sim.last().unwrap().1 > 0.85);
    }
}
