//! Accuracy figures built on the trained FC-DNN: Figs. 1 and 2.

use crate::record::{FigureRecord, RunScale, Series};
use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante_circuit::units::Volt;
use dante_sram::fault::VminFaultModel;

/// A voltage safely above every fault (used to isolate one data class).
const SAFE_V: Volt = Volt::const_new(0.60);

fn accuracy_axis() -> Vec<Volt> {
    (0..=8)
        .map(|i| Volt::new(0.36 + 0.02 * f64::from(i)))
        .collect()
}

/// Fig. 1: the conceptual curve made concrete — SRAM bit failure rate and
/// FC-DNN inference accuracy vs. supply voltage, showing the gap between
/// `V_target-acc` and `V_data-retention`.
#[must_use]
pub fn fig01(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_mnist_fc(scale.train_images, scale.test_images, scale.epochs);
    let eval = AccuracyEvaluator::new(scale.trials);
    let model = VminFaultModel::default_14nm();
    let layers = net.weight_layer_indices().len();

    let mut ber = Vec::new();
    let mut acc = Vec::new();
    for v in accuracy_axis() {
        ber.push((v.volts(), model.bit_error_rate(v)));
        let stats = eval.evaluate(
            &net,
            &VoltageAssignment::uniform(v, layers),
            test.images(),
            test.labels(),
            0x000F_1601,
        );
        acc.push((v.volts(), stats.mean()));
    }
    let target = acc
        .iter()
        .find(|(_, a)| *a >= 0.98 * acc.last().expect("non-empty").1)
        .map_or(0.0, |(v, _)| *v);
    FigureRecord::new(
        "fig01",
        "Bit failure rate and inference accuracy vs supply voltage (baseline, unboosted)",
        "Vdd [V]",
        "BER / accuracy",
    )
    .with_series(Series::new("bit error rate", ber))
    .with_series(Series::new("inference accuracy", acc))
    .with_note(format!(
        "V_target-acc ~= {target:.2} V vs V_data-retention = 0.30 V: the gap boosting closes"
    ))
}

/// Fig. 2: fault injection into inputs, all weights, and single weight
/// layers of the MNIST FC-DNN, against the measured BER curve.
#[must_use]
pub fn fig02(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_mnist_fc(scale.train_images, scale.test_images, scale.epochs);
    let eval = AccuracyEvaluator::new(scale.trials);
    let model = VminFaultModel::default_14nm();
    let layers = net.weight_layer_indices().len();

    type AssignmentFn = Box<dyn Fn(Volt) -> VoltageAssignment>;
    let assignments: Vec<(&str, AssignmentFn)> = vec![
        (
            "weights (all layers)",
            Box::new(move |v| VoltageAssignment::weights_only(v, layers, SAFE_V)),
        ),
        (
            "inputs",
            Box::new(move |v| VoltageAssignment::inputs_only(v, layers, SAFE_V)),
        ),
        (
            "weights L1 only",
            Box::new(move |v| VoltageAssignment::single_layer(v, 0, layers, SAFE_V)),
        ),
        (
            "weights L4 only",
            Box::new(move |v| VoltageAssignment::single_layer(v, layers - 1, layers, SAFE_V)),
        ),
    ];

    let mut rec = FigureRecord::new(
        "fig02",
        "Effect of fault injection in inputs/weights on MNIST FC-DNN accuracy",
        "Vdd [V]",
        "accuracy / BER",
    );
    for (i, (name, make)) in assignments.iter().enumerate() {
        let pts: Vec<(f64, f64)> = accuracy_axis()
            .into_iter()
            .map(|v| {
                let stats = eval.evaluate(
                    &net,
                    &make(v),
                    test.images(),
                    test.labels(),
                    0x000F_1602 ^ (i as u64) << 16,
                );
                (v.volts(), stats.mean())
            })
            .collect();
        rec = rec.with_series(Series::new(*name, pts));
    }
    let ber: Vec<(f64, f64)> = accuracy_axis()
        .into_iter()
        .map(|v| (v.volts(), model.bit_error_rate(v)))
        .collect();
    rec.with_series(Series::new("bit error rate", ber))
        .with_note("expected orderings: inputs tolerate faults far better than weights; cliff between 0.40-0.46 V")
        .with_note("paper reports L1-only slightly worse than L4-only; in this reproduction the two per-layer curves are near-tied (see EXPERIMENTS.md)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> RunScale {
        RunScale {
            trials: 6,
            test_images: 100,
            epochs: 4,
            train_images: 1200,
        }
    }

    #[test]
    fn fig01_accuracy_rises_with_voltage() {
        let rec = fig01(tiny_scale());
        let acc = &rec.series[1].points;
        assert!(acc.last().unwrap().1 > acc.first().unwrap().1);
        assert!(acc.last().unwrap().1 > 0.9, "clean-ish accuracy at 0.52 V");
    }

    #[test]
    fn fig02_sensitivity_orderings_hold() {
        let rec = fig02(tiny_scale());
        let by_name = |n: &str| {
            rec.series
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing series {n}"))
        };
        let weights = by_name("weights (all layers)");
        let inputs = by_name("inputs");
        let l1 = by_name("weights L1 only");
        let l4 = by_name("weights L4 only");
        // Compare at 0.44 V (index of 0.44 in the axis: (0.44-0.36)/0.02 = 4).
        let idx = 4;
        assert!((weights.points[idx].0 - 0.44).abs() < 1e-9);
        assert!(
            inputs.points[idx].1 > weights.points[idx].1,
            "inputs ({}) must tolerate faults better than weights ({})",
            inputs.points[idx].1,
            weights.points[idx].1
        );
        // The two per-layer curves are near-tied in this reproduction (see
        // the fig02 note); at 6 dies the tie only holds to within die noise.
        assert!(
            l4.points[idx].1 >= l1.points[idx].1 - 0.12,
            "L4-only ({}) should be near L1-only ({})",
            l4.points[idx].1,
            l1.points[idx].1
        );
    }
}
