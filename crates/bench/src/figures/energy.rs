//! Energy figures: 12, 13, 14, 15, plus Table 3, the headline summary, and
//! the iso-accuracy supply comparison.

use crate::record::{FigureRecord, RunScale, Series};
use dante::artifacts::{trained_cifar_cnn, trained_mnist_fc};
use dante::experiments::{ConvExperiment, FcExperiment};
use dante::iso::IsoAccuracySpec;
use dante::schedule::NamedBoostConfig;
use dante::sweep::NetworkSpec;
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::fc_dana::DanaFcDataflow;
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::{alexnet_conv, mnist_fc};
use dante_energy::design_space::{default_axes, sweep, DesignSpaceScenario};

/// Fig. 12: the boosted/dual energy ratio over the
/// `Ops_ratio` x `Energy_ratio` design space (one series per energy ratio).
#[must_use]
pub fn fig12() -> FigureRecord {
    let (ops, ers) = default_axes();
    let pts = sweep(DesignSpaceScenario::default(), &ops, &ers);
    let mut rec = FigureRecord::new(
        "fig12",
        "Boosted / dual-Vdd dynamic energy over the accelerator design space (Vdd 0.4 -> Vddv 0.6)",
        "Ops_ratio (SRAM accesses per op)",
        "E_boost / E_dual",
    );
    for &er in &ers {
        let series: Vec<(f64, f64)> = pts
            .iter()
            .filter(|p| (p.energy_ratio - er).abs() < 1e-9)
            .map(|p| (p.ops_ratio, p.boosted_over_dual))
            .collect();
        rec = rec.with_series(Series::new(format!("Energy_ratio={er}"), series));
    }
    rec.with_note("values < 1 mean boosting wins; savings up to ~32% at low ratios")
}

/// Fig. 13: the FC-DNN analysis — dynamic energy of boost vs single vs dual,
/// accuracy per configuration, and leakage per cycle.
#[must_use]
pub fn fig13(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_mnist_fc(scale.train_images, scale.test_images, scale.epochs);
    let exp = FcExperiment::new(&net, test.images(), test.labels(), scale.trials);
    let voltages = FcExperiment::default_voltages();
    let points = exp.run(&voltages, 0x000F_1613);

    let mut rec = FigureRecord::new(
        "fig13",
        "FC-DNN: dynamic energy (normalized to 0.5 V chip), accuracy, and leakage per cycle",
        "Vdd [V]",
        "normalized energy / accuracy / J-per-cycle",
    );
    for config in NamedBoostConfig::all() {
        let of_config: Vec<_> = points.iter().filter(|p| p.config == config).collect();
        let acc: Vec<(f64, f64)> = of_config
            .iter()
            .map(|p| (p.vdd.volts(), p.accuracy_mean))
            .collect();
        let boost: Vec<(f64, f64)> = of_config
            .iter()
            .map(|p| (p.vdd.volts(), p.boost_dynamic))
            .collect();
        rec = rec
            .with_series(Series::new(format!("{} acc", config.name()), acc))
            .with_series(Series::new(format!("{} E_boost", config.name()), boost));
    }
    // Baselines follow the Vddv4 configuration (the paper's comparison).
    let v4: Vec<_> = points
        .iter()
        .filter(|p| p.config == NamedBoostConfig::Vddv4)
        .collect();
    rec = rec
        .with_series(Series::new(
            "single@Vddv4 E",
            v4.iter()
                .map(|p| (p.vdd.volts(), p.single_dynamic))
                .collect(),
        ))
        .with_series(Series::new(
            "dual(Vddv4/Vdd) E",
            v4.iter().map(|p| (p.vdd.volts(), p.dual_dynamic)).collect(),
        ))
        .with_series(Series::new(
            "leak boost [J/cyc]",
            v4.iter()
                .map(|p| (p.vdd.volts(), p.boost_leakage))
                .collect(),
        ))
        .with_series(Series::new(
            "leak single [J/cyc]",
            v4.iter()
                .map(|p| (p.vdd.volts(), p.single_leakage))
                .collect(),
        ))
        .with_series(Series::new(
            "leak dual [J/cyc]",
            v4.iter().map(|p| (p.vdd.volts(), p.dual_leakage)).collect(),
        ));
    rec.with_note(
        "boost vs single: savings grow with boost level; dual only competitive at low boost",
    )
}

/// Fig. 14: AlexNet conv layers — accuracy (CNN proxy) and dynamic energy of
/// boost vs dual per level.
#[must_use]
pub fn fig14(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_cifar_cnn(
        scale.train_images.min(2000),
        scale.test_images.min(1000),
        scale.epochs,
    );
    let exp = ConvExperiment::new(&net, test.images(), test.labels(), scale.trials);
    let voltages = ConvExperiment::default_voltages();
    let points = exp.run(&voltages, 0x000F_1614);

    let mut rec = FigureRecord::new(
        "fig14",
        "AlexNet conv (Eyeriss RS dataflow): accuracy and dynamic energy, boost vs dual",
        "Vdd [V]",
        "accuracy / normalized energy",
    );
    for level in 1..=4 {
        let of_level: Vec<_> = points.iter().filter(|p| p.level == level).collect();
        rec = rec
            .with_series(Series::new(
                format!("Vddv{level} acc"),
                of_level
                    .iter()
                    .map(|p| (p.vdd.volts(), p.accuracy_mean))
                    .collect(),
            ))
            .with_series(Series::new(
                format!("Vddv{level} E_boost"),
                of_level
                    .iter()
                    .map(|p| (p.vdd.volts(), p.boost_dynamic))
                    .collect(),
            ))
            .with_series(Series::new(
                format!("Vddv{level} E_dual"),
                of_level
                    .iter()
                    .map(|p| (p.vdd.volts(), p.dual_dynamic))
                    .collect(),
            ));
    }
    let savings: Vec<f64> = points
        .iter()
        .map(|p| 1.0 - p.boost_dynamic / p.dual_dynamic)
        .collect();
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    rec.with_note(format!(
        "boost beats dual at every level; mean savings {:.0}% (paper: 19% across levels, 26% at Vddv4)",
        avg * 100.0
    ))
}

/// Fig. 15: iso-accuracy comparison — at each Vdd boost to the minimum level
/// reaching the 0.48 V target; compare against dual supply and the 0.48 V
/// single-supply alternative.
#[must_use]
pub fn fig15(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_cifar_cnn(
        scale.train_images.min(2000),
        scale.test_images.min(1000),
        scale.epochs,
    );
    let exp = ConvExperiment::new(&net, test.images(), test.labels(), scale.trials);
    let pts = exp.iso_accuracy_sweep(&ConvExperiment::default_voltages());

    let rec = FigureRecord::new(
        "fig15",
        "AlexNet iso-accuracy dynamic energy: boost (min level reaching 0.48 V) vs dual vs single@0.48",
        "Vdd [V]",
        "normalized energy",
    )
    .with_series(Series::new(
        "boost",
        pts.iter().map(|p| (p.vdd.volts(), p.boost_dynamic)).collect(),
    ))
    .with_series(Series::new(
        "dual",
        pts.iter().map(|p| (p.vdd.volts(), p.dual_dynamic)).collect(),
    ))
    .with_series(Series::new(
        "single@0.48",
        pts.iter().map(|p| (p.vdd.volts(), p.single_at_target)).collect(),
    ))
    .with_series(Series::new(
        "chosen level",
        pts.iter().map(|p| (p.vdd.volts(), p.level as f64)).collect(),
    ));
    let vs_single: Vec<f64> = pts
        .iter()
        .map(|p| 1.0 - p.boost_dynamic / p.single_at_target)
        .collect();
    let vs_dual: Vec<f64> = pts
        .iter()
        .map(|p| 1.0 - p.boost_dynamic / p.dual_dynamic)
        .collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    rec.with_note(format!(
        "mean savings: {:.0}% vs single@0.48 (paper 30%), {:.0}% vs dual (paper 17%)",
        mean(&vs_single) * 100.0,
        mean(&vs_dual) * 100.0
    ))
}

/// The golden-scale iso-accuracy solve: MNIST-FC at a 95% floor, single vs
/// boosted (Vddv4) vs the dual baseline pinned to the boosted rails.
///
/// This is the snapshot that pins the boosted-vs-single energy ratio — the
/// paper's central iso-accuracy claim — against regressions in the sweep,
/// supply, and solver layers at once. Deliberately small (40 test images,
/// 3 trials) so four debug-mode regenerations stay cheap; the Monte-Carlo
/// part is counter-based deterministic, so smallness costs stability
/// nothing.
#[must_use]
pub fn iso_accuracy() -> FigureRecord {
    let spec = IsoAccuracySpec {
        seed: 0x150_ACC,
        voltages_mv: (380..=520).step_by(20).collect(),
        trials: 3,
        floor: 0.95,
        level: 4,
        network: NetworkSpec::MnistFc {
            train_n: 1200,
            test_n: 40,
            epochs: 4,
        },
        ..IsoAccuracySpec::toy_default()
    };
    let r = spec.solve();
    let single = r
        .single
        .expect("single supply meets the floor on this grid");
    let boosted = r
        .boosted
        .expect("boosted supply meets the floor on this grid");
    let dual = r.dual.expect("dual follows the boosted point");
    let configs = [&single, &boosted, &dual];
    let per_config = |f: &dyn Fn(&dante::iso::IsoConfigPoint) -> f64| -> Vec<(f64, f64)> {
        configs
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64, f(p)))
            .collect()
    };
    FigureRecord::new(
        "iso_accuracy",
        "MNIST-FC iso-accuracy operating points: single vs boosted(Vddv4) vs dual baseline",
        "config (0 = single, 1 = boosted, 2 = dual)",
        "V / accuracy / J / ratio",
    )
    .with_series(Series::new("v_min [V]", per_config(&|p| p.v_logic.volts())))
    .with_series(Series::new(
        "sram rail [V]",
        per_config(&|p| p.v_sram.volts()),
    ))
    .with_series(Series::new(
        "accuracy at v_min",
        per_config(&|p| p.accuracy_mean),
    ))
    .with_series(Series::new(
        "dynamic total [J]",
        per_config(&|p| p.energy.dynamic.total().joules()),
    ))
    .with_series(Series::new(
        "dynamic total /ref0.5V",
        per_config(&|p| p.energy.normalized_total()),
    ))
    .with_series(Series::new(
        "accuracy targets",
        vec![(0.0, r.clean_accuracy), (1.0, r.target_accuracy)],
    ))
    .with_series(Series::new(
        "boosted energy ratios",
        vec![
            (0.0, r.boosted_over_single.expect("both points exist")),
            (1.0, r.boosted_over_dual.expect("both points exist")),
        ],
    ))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(
        "ratios < 1 mean boosting wins at iso-accuracy; \
         dual is pinned to the boosted rails (V_h = Vddv4(V_min), V_l = V_min)",
    )
}

/// Table 3: workload characteristics (SRAMAcc / MAC ratios).
#[must_use]
pub fn table3() -> FigureRecord {
    let fc = DanaFcDataflow::new().activity(&mnist_fc());
    let rs = RowStationaryDataflow::new().activity(&alexnet_conv());
    FigureRecord::new(
        "table3",
        "Workload characteristics: SRAM accesses per MAC operation",
        "workload (0 = MNIST/DANA, 1 = AlexNet/RS)",
        "SRAMAcc / MAC",
    )
    .with_series(Series::new(
        "access/MAC ratio",
        vec![(0.0, fc.access_mac_ratio()), (1.0, rs.access_mac_ratio())],
    ))
    .with_note(format!(
        "MNIST/DANA = {:.1}% (paper 75%); AlexNet/RS = {:.2}% (paper 1.67%)",
        fc.access_mac_ratio() * 100.0,
        rs.access_mac_ratio() * 100.0
    ))
}

/// The headline summary (abstract numbers).
#[must_use]
pub fn headlines() -> FigureRecord {
    let h = dante::headlines::compute();
    FigureRecord::new(
        "headlines",
        "Headline results vs the paper's abstract",
        "metric index",
        "fractional savings",
    )
    .with_series(Series::new(
        "measured",
        vec![
            (1.0, h.alexnet_peak_savings_vs_dual),
            (2.0, h.alexnet_avg_savings_vs_dual),
            (3.0, h.alexnet_savings_vs_single_048),
            (4.0, h.leakage_savings_vs_dual),
            (5.0, h.booster_leakage_overhead),
            (6.0, h.mnist_savings_vs_dual),
        ],
    ))
    .with_series(Series::new(
        "paper",
        // Metric 6 (MNIST full-boost vs dual) has no paper-quoted number, so
        // the paper series stops at 5 — keeping every point finite lets the
        // record round-trip through JSON (which has no NaN literal).
        vec![(1.0, 0.26), (2.0, 0.17), (3.0, 0.30), (4.0, 0.32), (5.0, 0.06)],
    ))
    .with_note("1: AlexNet peak vs dual; 2: AlexNet avg vs dual; 3: vs single@0.48; 4: leakage vs dual; 5: booster leakage overhead; 6: MNIST full-boost vs dual (no paper number)")
}

/// Fig. 1 of the paper's boosted Vdd reference: the per-Vdd voltage ladder
/// printed for convenience (used by examples; not a paper figure).
#[must_use]
pub fn voltage_ladder(vdd: Volt) -> Vec<f64> {
    dante_energy::supply::EnergyModel::dante_chip()
        .booster()
        .voltage_ladder(vdd)
        .into_iter()
        .map(Volt::volts)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_has_one_series_per_energy_ratio() {
        let rec = fig12();
        let (_, ers) = default_axes();
        assert_eq!(rec.series.len(), ers.len());
        // Ratios increase with ops_ratio within each series.
        for s in &rec.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
        }
    }

    #[test]
    fn table3_matches_paper_ratios() {
        let rec = table3();
        let pts = &rec.series[0].points;
        assert!((pts[0].1 - 0.75).abs() < 0.01);
        assert!((pts[1].1 - 0.0167).abs() < 0.004);
    }

    #[test]
    fn headlines_record_has_both_series() {
        let rec = headlines();
        assert_eq!(rec.series.len(), 2);
        assert_eq!(rec.series[0].points.len(), 6);
        // Every stored point must be finite so the record survives a JSON
        // round-trip (the golden snapshot store re-parses it).
        for s in &rec.series {
            for &(x, y) in &s.points {
                assert!(x.is_finite() && y.is_finite(), "{}: ({x}, {y})", s.name);
            }
        }
    }

    #[test]
    fn iso_accuracy_record_pins_a_meaningful_comparison() {
        let rec = iso_accuracy();
        let series = |name: &str| {
            rec.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name:?}"))
        };
        let vmin = &series("v_min [V]").points;
        // Boosting restores SRAM margin, so boosted V_min <= single V_min,
        // and the dual baseline shares the boosted logic rail.
        assert!(vmin[1].1 <= vmin[0].1 + 1e-12);
        assert_eq!(vmin[1].1, vmin[2].1);
        let ratios = &series("boosted energy ratios").points;
        assert!(ratios[0].1 > 0.0 && ratios[0].1 < 1.5);
        assert!(ratios[1].1 > 0.0 && ratios[1].1 < 1.5);
        let targets = &series("accuracy targets").points;
        assert!(targets[0].1 > 0.8, "clean MNIST-FC accuracy is high");
        for acc in &series("accuracy at v_min").points {
            assert!(acc.1 >= targets[1].1, "every config clears the target");
        }
    }

    #[test]
    fn voltage_ladder_spans_levels() {
        let l = voltage_ladder(Volt::new(0.4));
        assert_eq!(l.len(), 5);
        assert!((l[0] - 0.4).abs() < 1e-9);
        assert!(l[4] > 0.59);
    }
}
