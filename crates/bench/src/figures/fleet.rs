//! Fleet-scale V_min / yield experiment (paper Sec. 6 scaled out): a
//! population of dies, each with its own counter-derived fault sample,
//! reduced to V_min quantiles and yield-at-voltage curves.
//!
//! The record is a golden artifact: every die's seed derives from the spec
//! seed via `derive_seed(seed, site::FLEET_DIE, die)`, so the population is
//! a pure function of the spec and regenerates bit-identically on any
//! machine and thread count.

use crate::record::{FigureRecord, Series};
use dante::fleet::FleetSpec;
use dante_circuit::units::Volt;

/// Runs the default fleet sweep (1000 dies x 1 Mbit, 500..640 mV) and
/// packages the V_min quantiles and yield curves as a golden record.
#[must_use]
pub fn fleet() -> FigureRecord {
    let spec = FleetSpec::toy_default();
    let result = spec.solve();

    let yield_pts: Vec<(f64, f64)> = result
        .yield_at_voltage
        .iter()
        .map(|&(mv, y)| (f64::from(mv) / 1000.0, y))
        .collect();
    let analytic_pts: Vec<(f64, f64)> = spec
        .voltages_mv
        .iter()
        .map(|&mv| {
            let v = Volt::from_millivolts(f64::from(mv));
            (v.volts(), spec.analytic_yield(v))
        })
        .collect();

    FigureRecord::new(
        "fleet",
        "Fleet-scale V_min distribution and yield vs supply voltage",
        "Vdd [V]",
        "yield",
    )
    .with_series(Series::new("yield", yield_pts))
    .with_series(Series::new("analytic single-die yield", analytic_pts))
    .with_series(Series::new("vmin quantile [V]", result.quantiles.clone()))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(format!(
        "population: {} dies x {} bits, {} censored at the {} mV floor, {} faulty cells",
        result.dies,
        spec.array_bits,
        result.censored_dies,
        spec.voltages_mv[0],
        result.total_fault_cells
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_record_is_deterministic_and_internally_consistent() {
        let rec = fleet();
        assert_eq!(rec, fleet(), "fleet record must be a pure function");
        assert_eq!(rec.id, "fleet");

        // The empirical yield curve must be monotone non-decreasing in
        // voltage and track the analytic single-die curve.
        let empirical = &rec.series[0].points;
        let analytic = &rec.series[1].points;
        assert_eq!(empirical.len(), analytic.len());
        for w in empirical.windows(2) {
            assert!(w[1].1 >= w[0].1, "yield must not fall as voltage rises");
        }
        for (e, a) in empirical.iter().zip(analytic) {
            assert!(
                (e.1 - a.1).abs() < 0.05,
                "empirical yield {:.3} strays from analytic {:.3} at {} V",
                e.1,
                a.1,
                e.0
            );
        }

        // Quantiles are monotone in the level and inside the sweep grid.
        let quantiles = &rec.series[2].points;
        assert_eq!(quantiles.len(), 7);
        for w in quantiles.windows(2) {
            assert!(w[1].1 >= w[0].1, "V_min quantiles must be non-decreasing");
        }
        for &(_, v) in quantiles {
            assert!((0.5..=0.64).contains(&v), "quantile {v} outside the grid");
        }
    }
}
