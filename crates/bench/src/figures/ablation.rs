//! Ablation studies beyond the paper's figures (DESIGN.md Sec. 6):
//! ECC vs boosting, boost-level granularity, and dataflow sensitivity.

use crate::record::{FigureRecord, RunScale, Series};
use dante::accuracy::{AccuracyEvaluator, EccMode, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante_circuit::booster::BoosterBank;
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::baselines::{
    NoLocalReuseDataflow, OutputStationaryDataflow, WeightStationaryDataflow,
};
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::alexnet_conv;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use dante_sram::ecc::word_failure_probability;

/// ECC-vs-boosting ablation: accuracy of the FC-DNN across voltage for the
/// unprotected baseline, SEC-DED per word, and a level-4 boosted rail.
///
/// SEC-DED shifts the accuracy cliff down by a few tens of millivolts at a
/// constant 12.5% storage/energy tax; boosting moves the *rail*, keeping the
/// cliff wherever the application wants it.
#[must_use]
pub fn ablation_ecc(scale: RunScale) -> FigureRecord {
    let (net, test) = trained_mnist_fc(scale.train_images, scale.test_images, scale.epochs);
    let layers = net.weight_layer_indices().len();
    let plain = AccuracyEvaluator::new(scale.trials);
    let ecc = AccuracyEvaluator::new(scale.trials).with_ecc(EccMode::SecDed);
    let booster = BoosterBank::standard();

    let voltages: Vec<Volt> = (0..=8)
        .map(|i| Volt::new(0.34 + 0.02 * f64::from(i)))
        .collect();
    let eval = |e: &AccuracyEvaluator, rail: Volt, seed: u64| {
        e.evaluate(
            &net,
            &VoltageAssignment::uniform(rail, layers),
            test.images(),
            test.labels(),
            seed,
        )
        .mean()
    };

    let unprotected: Vec<(f64, f64)> = voltages
        .iter()
        .map(|&v| (v.volts(), eval(&plain, v, 0xAB1)))
        .collect();
    let secded: Vec<(f64, f64)> = voltages
        .iter()
        .map(|&v| (v.volts(), eval(&ecc, v, 0xAB2)))
        .collect();
    let boosted: Vec<(f64, f64)> = voltages
        .iter()
        .map(|&v| {
            (
                v.volts(),
                eval(&plain, booster.boosted_voltage(v, 4), 0xAB3),
            )
        })
        .collect();

    FigureRecord::new(
        "ablation_ecc",
        "ECC (SEC-DED) vs programmable boosting: FC-DNN accuracy across supply voltage",
        "Vdd [V]",
        "accuracy",
    )
    .with_series(Series::new("unprotected", unprotected))
    .with_series(Series::new("SEC-DED (72,64)", secded))
    .with_series(Series::new("boosted Vddv4", boosted))
    .with_note(format!(
        "SEC-DED word-failure rate at BER 1.4e-2 (0.44 V): {:.1}% per 72-bit word — multi-bit errors defeat it at deep VLV",
        word_failure_probability(0.014 * 0.5) * 100.0
    ))
    .with_note("ECC costs a fixed 12.5% storage/energy on every access; boosting is paid only when enabled")
}

/// Boost-granularity ablation (paper Sec. 6.3: "with finer voltage
/// adjustment (> 4 boost levels), one can obtain even greater energy
/// savings"): iso-accuracy AlexNet energy with 2/4/8/16-level boosters.
#[must_use]
pub fn ablation_levels() -> FigureRecord {
    let energy = EnergyModel::dante_chip();
    let activity = RowStationaryDataflow::new().activity(&alexnet_conv());
    let accesses = activity.total_sram_accesses();
    let macs = activity.total_macs();
    let target = Volt::new(0.48);
    let reference = energy.reference_energy_at_0v5(accesses, macs).joules();

    let mut rec = FigureRecord::new(
        "ablation_levels",
        "Iso-accuracy AlexNet energy vs boost-level granularity (target rail 0.48 V)",
        "Vdd [V]",
        "normalized dynamic energy",
    );
    let mut means = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let bank = BoosterBank::with_levels(p);
        let model = EnergyModel::new(
            dante_energy::params::EnergyParams::dante_chip(),
            bank.clone(),
            dante_circuit::ldo::Ldo::new(),
        );
        let mut pts = Vec::new();
        for mv in (340..=460).step_by(20) {
            let vdd = Volt::from_millivolts(f64::from(mv));
            let Some(level) = bank.min_level_reaching(vdd, target) else {
                continue;
            };
            let e = model
                .dynamic_boosted(vdd, &[BoostedGroup { accesses, level }], macs)
                .joules()
                / reference;
            pts.push((vdd.volts(), e));
        }
        let mean = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
        means.push((p, mean));
        rec = rec.with_series(Series::new(format!("{p} levels"), pts));
    }
    // Binary-weighted variant: 15 distinct levels from the same 4-cell
    // hardware budget (see `BoosterBank::binary_weighted`).
    let bank = BoosterBank::binary_weighted(4);
    let params = dante_energy::params::EnergyParams::dante_chip();
    let mut pts = Vec::new();
    for mv in (340..=460).step_by(20) {
        let vdd = Volt::from_millivolts(f64::from(mv));
        // Cheapest mask whose rail reaches the target.
        let best = (0u32..16)
            .filter_map(|mask| {
                let cfg = dante_circuit::bic::BoostConfig::from_mask(mask, 4);
                let vddv = bank.boosted_voltage_masked(vdd, &cfg);
                (vddv >= target).then(|| {
                    (params.e_sram(vddv) + bank.boost_event_energy_masked(vdd, &cfg)).joules()
                })
            })
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            let e = (best * accesses as f64 + params.e_pe(vdd).joules() * macs as f64) / reference;
            pts.push((vdd.volts(), e));
        }
    }
    let binary_mean = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
    rec = rec.with_series(Series::new("binary-weighted (4 cells)", pts));

    let coarse = means.first().expect("non-empty").1;
    let fine = means.last().expect("non-empty").1;
    rec.with_note(format!(
        "mean normalized energy: {coarse:.4} with 2 levels -> {fine:.4} with 16 levels ({:.1}% further savings from granularity)",
        (1.0 - fine / coarse) * 100.0
    ))
    .with_note(format!(
        "binary-weighted 4-cell bank (15 levels at the 4-level hardware budget): mean {binary_mean:.4}"
    ))
}

/// Dataflow ablation: how the accelerator's dataflow (its position on the
/// Fig. 12 `Ops_ratio` axis) changes what boosting saves over dual supply.
#[must_use]
pub fn ablation_dataflow() -> FigureRecord {
    let energy = EnergyModel::dante_chip();
    let wl = alexnet_conv();
    let vdd = Volt::new(0.40);
    let vddv = energy.vddv(vdd, 4);

    let dataflows: [(&str, Box<dyn Dataflow>); 4] = [
        ("row-stationary", Box::new(RowStationaryDataflow::new())),
        (
            "output-stationary",
            Box::new(OutputStationaryDataflow::new()),
        ),
        (
            "weight-stationary",
            Box::new(WeightStationaryDataflow::new()),
        ),
        ("no-local-reuse", Box::new(NoLocalReuseDataflow::new())),
    ];

    let mut ratios = Vec::new();
    let mut savings = Vec::new();
    for (i, (_, df)) in dataflows.iter().enumerate() {
        let activity = df.activity(&wl);
        let accesses = activity.total_sram_accesses();
        let macs = activity.total_macs();
        let boost = energy
            .dynamic_boosted(vdd, &[BoostedGroup { accesses, level: 4 }], macs)
            .joules();
        let dual = energy.dynamic_dual(vddv, vdd, accesses, macs).joules();
        ratios.push((i as f64, activity.access_mac_ratio()));
        savings.push((i as f64, 1.0 - boost / dual));
    }

    FigureRecord::new(
        "ablation_dataflow",
        "Boost-vs-dual savings at 0.40 V full boost, per conv dataflow (AlexNet)",
        "dataflow (0=RS, 1=OS, 2=WS, 3=NLR)",
        "access/MAC ratio | fractional savings",
    )
    .with_series(Series::new("access/MAC ratio", ratios))
    .with_series(Series::new("boost savings vs dual", savings))
    .with_note("reuse-friendly dataflows (low Ops_ratio) benefit most from boosting — the Fig. 12 story made concrete")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> RunScale {
        RunScale {
            trials: 2,
            test_images: 100,
            epochs: 4,
            train_images: 1200,
        }
    }

    #[test]
    fn ecc_ablation_orderings_hold() {
        let rec = ablation_ecc(tiny_scale());
        let unprotected = &rec.series[0].points;
        let secded = &rec.series[1].points;
        let boosted = &rec.series[2].points;
        // In the transition region (0.42-0.46 V) ECC >= unprotected.
        for i in 4..=6 {
            assert!(
                secded[i].1 >= unprotected[i].1 - 0.03,
                "SEC-DED should help at {} V: {} vs {}",
                secded[i].0,
                secded[i].1,
                unprotected[i].1
            );
        }
        // Boosting beats both everywhere at deep VLV.
        for i in 0..3 {
            assert!(
                boosted[i].1 > secded[i].1 + 0.1,
                "boost must dominate at {} V",
                boosted[i].0
            );
        }
    }

    #[test]
    fn binary_weighted_matches_fine_grained_linear_banks() {
        let rec = ablation_levels();
        let mean = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
        let sixteen = mean(&rec.series[3]);
        let binary = mean(rec.series.last().expect("binary series present"));
        // The 4-cell binary-weighted bank should track the 16-level linear
        // bank closely (within 1%) despite using 1/4 the config cells.
        assert!(
            (binary - sixteen).abs() / sixteen < 0.01,
            "binary {binary} vs 16-level {sixteen}"
        );
    }

    #[test]
    fn finer_levels_save_energy() {
        let rec = ablation_levels();
        assert_eq!(rec.series.len(), 5);
        // The note records coarse -> fine savings; verify the underlying
        // means directly: 16 levels never cost more than 2 levels.
        let mean = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
        let coarse = mean(&rec.series[0]);
        let fine = mean(&rec.series[3]);
        assert!(
            fine <= coarse + 1e-12,
            "16 levels {fine} vs 2 levels {coarse}"
        );
        assert!((1.0 - fine / coarse) > 0.01, "granularity should save >1%");
    }

    #[test]
    fn dataflow_ablation_savings_fall_with_ops_ratio() {
        let rec = ablation_dataflow();
        let ratios = &rec.series[0].points;
        let savings = &rec.series[1].points;
        // RS has the lowest ratio and the highest savings; NLR the opposite.
        assert!(ratios[0].1 < ratios[3].1);
        assert!(savings[0].1 > savings[3].1);
        // NLR is memory-dominated enough that boosting can even lose.
        assert!(savings[3].1 < 0.05);
    }
}
