//! The structural SRAM macro model: geometry-derived access capacitance,
//! replica-bitline timing, and the scalar calibration they reproduce.

use crate::record::{FigureRecord, Series};
use dante_circuit::booster::{BoostScope, BoosterBank};
use dante_circuit::latency::PERIPHERAL_FRACTION;
use dante_circuit::macro_model::{AccessKind, MacroGeometry, SramMacroModel};
use dante_circuit::units::Volt;
use dante_energy::params::{EnergyParams, GeometrySpec};

/// The `macro_model` golden record: the per-access switched-capacitance
/// breakdown of the paper's 64 Kbit energy bank, the replica-timed latency
/// split of the 32 Kbit macro, and the scalar quantities (`Energy_ratio`,
/// peripheral fraction, Fig. 9 boost latency) that *emerge* from the
/// geometry instead of being asserted by calibration.
#[must_use]
pub fn macro_model() -> FigureRecord {
    let bank = SramMacroModel::paper_bank();
    let timing_macro = SramMacroModel::paper_macro();

    let mut rec = FigureRecord::new(
        "macro_model",
        "Structural 32 Kbit/64 Kbit SRAM macro: derived capacitance, timing, and calibration agreement",
        "component index",
        "capacitance [pF] / time [ns] / ratio",
    );
    // Switched-capacitance breakdown per access kind: 1 decoder, 2 wordline,
    // 3 bitline, 4 column periphery, 5 output mux, 6 total.
    for (name, kind) in [
        ("read_pf", AccessKind::Read),
        ("write_pf", AccessKind::Write),
    ] {
        let c = bank.access_capacitance(kind);
        rec = rec.with_series(Series::new(
            name,
            vec![
                (1.0, c.decoder.picofarads()),
                (2.0, c.wordline.picofarads()),
                (3.0, c.bitline.picofarads()),
                (4.0, c.column_periphery.picofarads()),
                (5.0, c.output_mux.picofarads()),
                (6.0, c.total().picofarads()),
            ],
        ));
    }
    // Replica-timed latency split of the timing macro: 1 peripheral,
    // 2 replica bitline, 3 total access.
    rec = rec.with_series(Series::new(
        "timing_ns",
        vec![
            (1.0, timing_macro.peripheral_delay().nanoseconds()),
            (2.0, timing_macro.replica_delay().nanoseconds()),
            (3.0, timing_macro.nominal_access_time().nanoseconds()),
        ],
    ));
    // The scalar calibration, re-derived: 1 Energy_ratio from the structural
    // bank (scalar asserts 3), 2 peripheral fraction (scalar asserts 0.45),
    // 3 replica safety margin (must stay >= 1).
    let params = EnergyParams::dante_chip()
        .with_geometry(GeometrySpec::Structural(MacroGeometry::bank_64kbit()));
    rec = rec.with_series(Series::new(
        "derived_scalars",
        vec![
            (1.0, params.energy_ratio()),
            (2.0, timing_macro.derived_peripheral_fraction()),
            (3.0, timing_macro.replica_margin()),
        ],
    ));
    // Fig. 9 under structural timing: macro-scope level-4 boost latency,
    // normalized to the unboosted access, for Vdd >= 0.5 V.
    let bank_boost = BoosterBank::standard();
    let structural_timing = timing_macro.timing();
    let boosted: Vec<(f64, f64)> = (500..=800)
        .step_by(50)
        .map(|mv| {
            let v = Volt::from_millivolts(f64::from(mv));
            (
                v.volts(),
                structural_timing.boosted_access_fraction(v, &bank_boost, 4, BoostScope::Macro),
            )
        })
        .collect();
    let reduction = 1.0
        - structural_timing.boosted_access_fraction(
            Volt::new(0.5),
            &bank_boost,
            4,
            BoostScope::Macro,
        );
    rec.with_series(Series::new("boost_macro_4", boosted))
        .with_note(format!(
            "structural Energy_ratio {:.3} (scalar calibration: 3); derived peripheral \
             fraction {:.3} (scalar: {PERIPHERAL_FRACTION})",
            params.energy_ratio(),
            timing_macro.derived_peripheral_fraction(),
        ))
        .with_note(format!(
            "structural macro-boost latency reduction {:.0}% at 0.5 V (paper Fig. 9: up to 35%)",
            reduction * 100.0
        ))
        .with_note("capacitance components: 1 decoder, 2 wordline, 3 bitline, 4 column periphery, 5 output mux, 6 total")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_scalars_land_on_the_calibration() {
        let rec = macro_model();
        let scalars = rec
            .series
            .iter()
            .find(|s| s.name == "derived_scalars")
            .unwrap();
        assert!((scalars.points[0].1 - 3.0).abs() < 0.05, "Energy_ratio");
        assert!(
            (scalars.points[1].1 - PERIPHERAL_FRACTION).abs() < 0.02,
            "peripheral fraction"
        );
        assert!(scalars.points[2].1 >= 1.0, "replica margin");
    }

    #[test]
    fn boost_latency_reduction_matches_fig09() {
        let rec = macro_model();
        let boost = rec
            .series
            .iter()
            .find(|s| s.name == "boost_macro_4")
            .unwrap();
        let at_half_volt = boost.points.first().unwrap();
        assert!((at_half_volt.0 - 0.5).abs() < 1e-12);
        let reduction = 1.0 - at_half_volt.1;
        assert!(
            (0.30..=0.40).contains(&reduction),
            "macro boost at 0.5 V should cut latency ~35%, got {:.0}%",
            reduction * 100.0
        );
    }

    #[test]
    fn write_breakdown_exceeds_read() {
        let rec = macro_model();
        let total = |name: &str| rec.series.iter().find(|s| s.name == name).unwrap().points[5].1;
        assert!(total("write_pf") > total("read_pf"));
    }
}
