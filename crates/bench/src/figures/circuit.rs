//! Circuit-level figures: 4, 6, 7, 8, 9.

use crate::record::{FigureRecord, Series};
use dante_circuit::booster::{reference, BoostScope, BoosterBank};
use dante_circuit::latency::SramTiming;
use dante_circuit::transient::TransientSim;
use dante_circuit::units::{Second, Volt};
use dante_sram::fault::VminFaultModel;

fn voltage_axis(lo_mv: u32, hi_mv: u32, step_mv: u32) -> Vec<Volt> {
    (lo_mv..=hi_mv)
        .step_by(step_mv as usize)
        .map(|mv| Volt::from_millivolts(f64::from(mv)))
        .collect()
}

/// Fig. 4: the boosted-rail waveform as the configuration steps through the
/// four levels (one access per cycle, 4 cycles per level).
#[must_use]
pub fn fig04() -> FigureRecord {
    let sim = TransientSim::new(
        BoosterBank::standard(),
        Volt::new(0.4),
        Second::from_nanoseconds(20.0),
        32,
    );
    let wave = sim.level_staircase(4);
    let points: Vec<(f64, f64)> = wave
        .samples()
        .iter()
        .map(|&(t, v)| (t.nanoseconds(), v.volts()))
        .collect();
    FigureRecord::new(
        "fig04",
        "Vddv waveform across 4 programmable boost levels (Vdd = 0.4 V)",
        "time [ns]",
        "Vddv [V]",
    )
    .with_series(Series::new("Vddv", points))
    .with_note("four plateaus ~50 mV apart; adjustment completes within a cycle")
}

/// Fig. 6: boosted voltage and per-event energy of the MIM / no-MIM
/// comparison circuits across supply voltage.
#[must_use]
pub fn fig06() -> FigureRecord {
    let configs: [(&str, BoosterBank); 4] = [
        ("MIMBoost-A", reference::mim_boost_a()),
        ("noMIMBoost-A", reference::no_mim_boost_a()),
        ("MIMBoost-B", reference::mim_boost_b()),
        ("noMIMBoost-B", reference::no_mim_boost_b()),
    ];
    let vs = voltage_axis(300, 800, 50);
    let mut rec = FigureRecord::new(
        "fig06",
        "Boost voltage (V) and boost-event energy (pJ) with/without MIM capacitors",
        "Vdd [V]",
        "Vb [V] / E [pJ]",
    );
    for (name, bank) in &configs {
        let vb: Vec<(f64, f64)> = vs
            .iter()
            .map(|&v| (v.volts(), bank.boost_amount(v, 1).volts()))
            .collect();
        let e: Vec<(f64, f64)> = vs
            .iter()
            .map(|&v| (v.volts(), bank.boost_event_energy(v, 1).picojoules()))
            .collect();
        rec = rec
            .with_series(Series::new(format!("{name} Vb"), vb))
            .with_series(Series::new(format!("{name} E"), e));
    }
    let a_ratio = reference::mim_boost_a().boost_amount(Volt::new(0.4), 1)
        / reference::no_mim_boost_a().boost_amount(Volt::new(0.4), 1);
    let e_ratio = reference::no_mim_boost_b().boost_event_energy(Volt::new(0.4), 1)
        / reference::mim_boost_b().boost_event_energy(Volt::new(0.4), 1);
    rec.with_note(format!(
        "A-pair boost ratio {a_ratio:.1}x at equal area (paper ~14x); B-pair energy penalty {e_ratio:.1}x (paper ~10x)"
    ))
}

/// Fig. 7: measured bit failure rate vs. supply voltage (4 Mbit test chip)
/// and normalized SRAM access latency vs. voltage.
#[must_use]
pub fn fig07() -> FigureRecord {
    let model = VminFaultModel::default_14nm();
    let timing = SramTiming::macro_32kbit();
    let ber: Vec<(f64, f64)> = model
        .measurement_points()
        .into_iter()
        .map(|(v, b)| (v.volts(), b))
        .collect();
    let lat: Vec<(f64, f64)> = voltage_axis(340, 800, 20)
        .into_iter()
        .map(|v| (v.volts(), timing.normalized_access(v)))
        .collect();
    FigureRecord::new(
        "fig07",
        "Bit failure rate (4 Mbit 6T test chip model) and normalized access latency vs Vdd",
        "Vdd [V]",
        "BER / latency (norm.)",
    )
    .with_series(Series::new("bit error rate", ber))
    .with_series(Series::new("normalized latency", lat))
    .with_note("BER anchored at 1.4e-2 @ 0.44 V; zero fails @ 0.6 V on 4 Mbit")
}

/// Fig. 8: peak boosted voltage for the four programmable levels, low and
/// high supply ranges.
#[must_use]
pub fn fig08() -> FigureRecord {
    let bank = BoosterBank::standard();
    let mut rec = FigureRecord::new(
        "fig08",
        "Boosted voltage Vddv1..Vddv4 vs supply voltage (32 Kbit macro)",
        "Vdd [V]",
        "Vddv [V]",
    );
    for level in 1..=4 {
        let pts: Vec<(f64, f64)> = voltage_axis(340, 800, 20)
            .into_iter()
            .map(|v| (v.volts(), bank.boosted_voltage(v, level).volts()))
            .collect();
        rec = rec.with_series(Series::new(format!("Vddv{level}"), pts));
    }
    rec.with_note("peak boost rises monotonically with Vdd (Eq. 1 is linear in Vdd)")
}

/// Fig. 9: normalized access latency under array-only vs whole-macro
/// boosting, per level, for Vdd >= 0.5 V.
#[must_use]
pub fn fig09() -> FigureRecord {
    let bank = BoosterBank::standard();
    let timing = SramTiming::macro_32kbit();
    let mut rec = FigureRecord::new(
        "fig09",
        "Normalized access latency: array-only vs macro boosting",
        "Vdd [V]",
        "latency / unboosted latency",
    );
    for (scope, tag) in [(BoostScope::Array, "array"), (BoostScope::Macro, "macro")] {
        for level in 1..=4 {
            let pts: Vec<(f64, f64)> = voltage_axis(500, 800, 50)
                .into_iter()
                .map(|v| {
                    (
                        v.volts(),
                        timing.boosted_access_fraction(v, &bank, level, scope),
                    )
                })
                .collect();
            rec = rec.with_series(Series::new(format!("Boost-{tag}-{level}"), pts));
        }
    }
    let reduction =
        1.0 - timing.boosted_access_fraction(Volt::new(0.5), &bank, 4, BoostScope::Macro);
    rec.with_note(format!(
        "macro-level boost cuts latency by {:.0}% at 0.5 V (paper: up to 35%)",
        reduction * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_waveform_spans_16_cycles() {
        let rec = fig04();
        assert_eq!(rec.series.len(), 1);
        assert_eq!(rec.series[0].points.len(), 16 * 32);
        let max_v = rec.series[0].points.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!(
            max_v > 0.55,
            "peak plateau should approach 0.6 V, got {max_v}"
        );
    }

    #[test]
    fn fig06_has_eight_series() {
        let rec = fig06();
        assert_eq!(rec.series.len(), 8);
        assert!(rec.notes[0].contains("A-pair"));
    }

    #[test]
    fn fig07_ber_falls_latency_rises_towards_low_voltage() {
        let rec = fig07();
        let ber = &rec.series[0].points;
        let lat = &rec.series[1].points;
        assert!(ber.first().unwrap().1 > ber.last().unwrap().1);
        assert!(lat.first().unwrap().1 > lat.last().unwrap().1);
    }

    #[test]
    fn fig08_levels_are_ordered() {
        let rec = fig08();
        assert_eq!(rec.series.len(), 4);
        for i in 0..rec.series[0].points.len() {
            for l in 1..4 {
                assert!(rec.series[l].points[i].1 > rec.series[l - 1].points[i].1);
            }
        }
    }

    #[test]
    fn fig09_macro_is_faster_than_array() {
        let rec = fig09();
        assert_eq!(rec.series.len(), 8);
        // Series 0..4 are array levels 1..4, series 4..8 macro levels 1..4.
        for l in 0..4 {
            for i in 0..rec.series[l].points.len() {
                assert!(rec.series[l + 4].points[i].1 < rec.series[l].points[i].1);
            }
        }
    }
}
