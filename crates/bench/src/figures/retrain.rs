//! The fault-aware retraining artifact: hardened-vs-baseline `V_min`
//! comparison for the MNIST FC-DNN.

use crate::record::{FigureRecord, Series};
use dante::retrain::{ResamplePolicy, RetrainSpec};
use dante::sweep::NetworkSpec;

/// The golden-scale retraining run: fine-tune the MNIST FC-DNN for two
/// epochs under the default Gaussian fault model's bit errors at 460 mV
/// (one grid step below the baseline's single-supply `V_min`), then score
/// baseline and hardened weights against the *same* absolute accuracy bar
/// (95% of the baseline's clean accuracy).
///
/// This is the snapshot that pins the subsystem's headline claim — the
/// `V_min` the retraining buys back is positive — against regressions in
/// the training loop, the overlay corruption path, and the comparison
/// solver at once. The network/grid/trial sizing matches the
/// `iso_accuracy` record, so the two share one cached trained artifact and
/// regeneration stays cheap; determinism is counter-based end to end
/// (epoch dies, shuffle stream, Monte-Carlo trials).
#[must_use]
pub fn retrain() -> FigureRecord {
    let spec = RetrainSpec {
        seed: 0x12E7_2A17,
        network: NetworkSpec::MnistFc {
            train_n: 1200,
            test_n: 40,
            epochs: 4,
        },
        target_mv: 460,
        epochs: 2,
        resample: ResamplePolicy::EveryEpoch,
        voltages_mv: (380..=520).step_by(20).collect(),
        trials: 3,
        floor: 0.95,
        ..RetrainSpec::toy_default()
    };
    let h = spec.run();
    let pair = |a: Option<f64>, b: Option<f64>| -> Vec<(f64, f64)> {
        vec![
            (0.0, a.expect("single config meets the bar on this grid")),
            (1.0, b.expect("boosted config meets the bar on this grid")),
        ]
    };
    FigureRecord::new(
        "retrain",
        "MNIST-FC fault-aware retraining: V_min bought back at an iso-accuracy bar",
        "config (0 = single, 1 = boosted, 2 = dual) / epoch",
        "V / mV / ratio / loss / accuracy",
    )
    .with_series(Series::new(
        "baseline v_min [V]",
        pair(
            h.baseline_single_vmin_mv().map(|mv| mv / 1000.0),
            h.baseline
                .boosted
                .as_ref()
                .map(|p| p.v_logic.millivolts() / 1000.0),
        ),
    ))
    .with_series(Series::new(
        "hardened v_min [V]",
        pair(
            h.hardened_single_vmin_mv().map(|mv| mv / 1000.0),
            h.hardened
                .boosted
                .as_ref()
                .map(|p| p.v_logic.millivolts() / 1000.0),
        ),
    ))
    .with_series(Series::new(
        "v_min gap [mV]",
        pair(h.single_vmin_gap_mv(), h.boosted_vmin_gap_mv()),
    ))
    .with_series(Series::new(
        "energy ratio hardened/baseline",
        vec![
            (0.0, h.single_energy_ratio().expect("single points exist")),
            (1.0, h.boosted_energy_ratio().expect("boosted points exist")),
            (2.0, h.dual_energy_ratio().expect("dual points exist")),
        ],
    ))
    .with_series(Series::new(
        "accuracy bar",
        vec![
            (0.0, h.baseline.clean_accuracy),
            (1.0, h.baseline.target_accuracy),
        ],
    ))
    .with_series(Series::new(
        "epoch loss",
        h.epochs
            .iter()
            .map(|e| (e.epoch as f64, f64::from(e.loss)))
            .collect::<Vec<_>>(),
    ))
    .with_series(Series::new(
        "epoch clean accuracy",
        h.epochs
            .iter()
            .map(|e| (e.epoch as f64, e.clean_accuracy))
            .collect::<Vec<_>>(),
    ))
    .with_series(Series::new(
        "epoch faulty accuracy",
        h.epochs
            .iter()
            .map(|e| (e.epoch as f64, e.faulty_accuracy))
            .collect::<Vec<_>>(),
    ))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(format!(
        "hardened weight digest: {:016x}",
        h.weight_digest()
    ))
    .with_note(
        "both networks are scored against the SAME absolute bar (floor x \
         baseline clean accuracy); a positive gap means retraining bought \
         real voltage margin, not a lower bar"
            .to_owned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrain_record_pins_a_positive_single_supply_gap() {
        let rec = retrain();
        let gap = rec
            .series
            .iter()
            .find(|s| s.name == "v_min gap [mV]")
            .expect("gap series present");
        assert!(
            gap.points[0].1 > 0.0,
            "single-supply V_min gap must be positive, got {} mV",
            gap.points[0].1
        );
        assert!(
            gap.points[1].1 >= 0.0,
            "boosted gap must not be negative, got {} mV",
            gap.points[1].1
        );
        // The gap is honest: the hardened network clears the baseline's bar.
        let bar = rec
            .series
            .iter()
            .find(|s| s.name == "accuracy bar")
            .expect("bar series present");
        assert!(bar.points[1].1 <= bar.points[0].1, "target <= clean");
        assert_eq!(rec.id, "retrain");
        assert_eq!(retrain(), retrain(), "regeneration is deterministic");
    }
}
