//! Tables 1 and 2: configuration listings.

use crate::record::{FigureRecord, Series};
use dante::schedule::NamedBoostConfig;
use dante_accel::chip::ChipConfig;

/// Table 1: chip configuration parameters, rendered as notes plus checkable
/// numeric series.
#[must_use]
pub fn table1() -> FigureRecord {
    let c = ChipConfig::dante();
    FigureRecord::new(
        "table1",
        "Dante chip configuration parameters",
        "parameter index",
        "value",
    )
    .with_series(Series::new(
        "value",
        vec![
            (1.0, c.die_area_mm2()),
            (2.0, c.total_sram_bytes() as f64 / 1024.0),
            (3.0, c.f_nominal.megahertz()),
            (4.0, c.f_low_voltage.megahertz()),
            (5.0, c.v_min.volts()),
            (6.0, c.v_max.volts()),
            (7.0, c.boost_levels as f64),
            (8.0, c.booster_area_per_macro.square_microns() / 1e6),
            (9.0, c.mim_capacitance_pf),
        ],
    ))
    .with_note("1: die area [mm^2] (2.05 x 1.13)")
    .with_note("2: on-chip SRAM [KB] (128 KB weights + 16 KB inputs)")
    .with_note("3: target frequency @ 0.8 V [MHz]")
    .with_note("4: target frequency @ <= 0.5 V [MHz]")
    .with_note("5-6: operating voltage range [V]")
    .with_note("7: programmable boost levels")
    .with_note("8: booster area per macro [mm^2]")
    .with_note("9: MIM capacitance per macro [pF]")
}

/// Table 2: the boost level of each weight layer under every named
/// configuration.
#[must_use]
pub fn table2() -> FigureRecord {
    let mut rec = FigureRecord::new(
        "table2",
        "Voltage boost level per FC-DNN weight layer per configuration",
        "weight layer (1..4)",
        "boost level",
    );
    for config in NamedBoostConfig::all() {
        let levels = config.weight_levels(4, 4);
        let pts: Vec<(f64, f64)> = levels
            .iter()
            .enumerate()
            .map(|(i, &l)| ((i + 1) as f64, l as f64))
            .collect();
        rec = rec.with_series(Series::new(config.name(), pts));
    }
    rec.with_note(
        "inputs are boosted to the minimum level with Vddv > 0.44 V (paper Table 2 caption)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_the_chip() {
        let rec = table1();
        let pts = &rec.series[0].points;
        assert!((pts[0].1 - 2.3165).abs() < 1e-3); // die area
        assert!((pts[1].1 - 144.0).abs() < 1e-9); // SRAM KB
        assert!((pts[6].1 - 4.0).abs() < 1e-9); // boost levels
    }

    #[test]
    fn table2_diff_configs_ramp() {
        let rec = table2();
        let diff1 = rec.series.iter().find(|s| s.name == "Boost_diff1").unwrap();
        let levels: Vec<f64> = diff1.points.iter().map(|p| p.1).collect();
        assert_eq!(levels, vec![1.0, 2.0, 3.0, 4.0]);
        let diff2 = rec.series.iter().find(|s| s.name == "Boost_diff2").unwrap();
        let levels: Vec<f64> = diff2.points.iter().map(|p| p.1).collect();
        assert_eq!(levels, vec![4.0, 3.0, 2.0, 1.0]);
    }
}
