//! Regenerates paper artifact `fig09` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::circuit::fig09().emit();
}
