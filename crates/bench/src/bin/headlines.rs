//! Regenerates paper artifact `headlines` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::energy::headlines().emit();
}
