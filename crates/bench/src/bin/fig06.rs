//! Regenerates paper artifact `fig06` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::circuit::fig06().emit();
}
