//! Regenerates paper artifact `fig08` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::circuit::fig08().emit();
}
