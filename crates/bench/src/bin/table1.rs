//! Regenerates paper artifact `table1` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::tables::table1().emit();
}
