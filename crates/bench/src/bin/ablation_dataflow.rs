//! Ablation: dataflow reuse vs boosting advantage (the Fig. 12 axis).
fn main() {
    dante_bench::figures::ablation::ablation_dataflow().emit();
}
