//! Regenerates paper figure `fig01`. Scale via DANTE_FULL / DANTE_TRIALS /
//! DANTE_TEST_N / DANTE_TRAIN_N / DANTE_EPOCHS.
fn main() {
    let scale = dante_bench::RunScale::from_env();
    eprintln!("running fig01 at {scale:?}");
    dante_bench::figures::accuracy::fig01(scale).emit();
}
