//! Regenerates paper artifact `fig04` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::circuit::fig04().emit();
}
