//! Cross-validation of the statistical fault path against the bit-accurate
//! accelerator simulator.
fn main() {
    let scale = dante_bench::RunScale::from_env();
    eprintln!("running validation at {scale:?}");
    dante_bench::figures::validation::validation(scale).emit();
}
