//! Regenerates paper artifact `fig12` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::energy::fig12().emit();
}
