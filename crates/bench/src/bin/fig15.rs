//! Regenerates paper figure `fig15`. Scale via DANTE_FULL / DANTE_TRIALS /
//! DANTE_TEST_N / DANTE_TRAIN_N / DANTE_EPOCHS.
fn main() {
    let scale = dante_bench::RunScale::from_env();
    eprintln!("running fig15 at {scale:?}");
    dante_bench::figures::energy::fig15(scale).emit();
}
