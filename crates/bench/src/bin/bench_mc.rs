//! Regenerates `BENCH_mc.json`: the tracked dense-vs-sparse Monte-Carlo
//! performance report (overlay generation, per-trial corruption, per-trial
//! forward pass, full accuracy sweep).
//!
//! `DANTE_BENCH_QUICK=1` selects the CI smoke scale; `DANTE_BENCH_OUT`
//! overrides the output path (default `BENCH_mc.json`).

use dante_bench::perf::{run_mc_bench, McBenchReport, OUT_ENV, QUICK_ENV};

fn main() {
    let quick = std::env::var(QUICK_ENV).is_ok_and(|v| v == "1");
    let out = std::env::var(OUT_ENV).unwrap_or_else(|_| "BENCH_mc.json".into());
    eprintln!(
        "running bench_mc at {} scale -> {out}",
        if quick { "quick" } else { "full" }
    );
    let report: McBenchReport = run_mc_bench(quick);
    for row in &report.generation {
        eprintln!(
            "  generation @ {:.2} V: dense {:>12.0} ns, sparse {:>9.0} ns, speedup {:.0}x",
            row.v_volts,
            row.dense.mean_ns,
            row.sparse.mean_ns,
            row.speedup()
        );
    }
    eprintln!(
        "  per-trial corrupt @ {:.2} V: dense {:.0} ns, sparse {:.0} ns, speedup {:.1}x",
        report.corruption.v_volts,
        report.corruption.dense_ns,
        report.corruption.sparse_ns,
        report.corruption.speedup()
    );
    for row in &report.forward_pass {
        eprintln!(
            "  forward pass @ {:.2} V: scalar {:.0} ns, batched {:.0} ns, speedup {:.1}x, {:.0} img/s",
            row.v_volts,
            row.scalar_ns,
            row.batched_ns,
            row.speedup(),
            row.batched_images_per_sec()
        );
    }
    eprintln!(
        "  accuracy sweep: dense {:.2} s, sparse {:.2} s, speedup {:.2}x, max accuracy delta {:.4}",
        report.sweep.dense_seconds,
        report.sweep.sparse_seconds,
        report.sweep.speedup(),
        report.sweep.max_accuracy_delta()
    );
    std::fs::write(&out, report.to_json_pretty())
        .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    eprintln!("wrote {out}");
}
