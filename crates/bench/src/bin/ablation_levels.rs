//! Ablation: boost-level granularity (paper Sec. 6.3, ">4 boost levels").
fn main() {
    dante_bench::figures::ablation::ablation_levels().emit();
}
