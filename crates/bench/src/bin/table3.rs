//! Regenerates paper artifact `table3` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::energy::table3().emit();
}
