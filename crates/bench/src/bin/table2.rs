//! Regenerates paper artifact `table2` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::tables::table2().emit();
}
