//! Regenerates paper figure `fig13`. Scale via DANTE_FULL / DANTE_TRIALS /
//! DANTE_TEST_N / DANTE_TRAIN_N / DANTE_EPOCHS.
fn main() {
    let scale = dante_bench::RunScale::from_env();
    eprintln!("running fig13 at {scale:?}");
    dante_bench::figures::energy::fig13(scale).emit();
}
