//! Ablation: SEC-DED ECC vs programmable boosting (DESIGN.md Sec. 6).
fn main() {
    let scale = dante_bench::RunScale::from_env();
    eprintln!("running ablation_ecc at {scale:?}");
    dante_bench::figures::ablation::ablation_ecc(scale).emit();
}
