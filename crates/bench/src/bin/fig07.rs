//! Regenerates paper artifact `fig07` (see DESIGN.md experiment index).
fn main() {
    dante_bench::figures::circuit::fig07().emit();
}
