//! A minimal JSON value model, emitter, and parser.
//!
//! The offline build environment has no `serde`/`serde_json`, and the bench
//! harness only needs to round-trip [`crate::record::FigureRecord`]s — flat
//! structures of strings, numbers, arrays, and objects — so this module
//! implements exactly that: an owned [`Value`] tree, a pretty printer with
//! stable key order, and a recursive-descent parser for the same subset
//! (no `\u` escapes beyond BMP pass-through, no exponent-heavy edge cases
//! past `f64` round-trip).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via `f64`; NaN/inf become `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parses one JSON document (convenience alias of the module-level
    /// [`parse`], so callers holding a `Value` type alias need no extra
    /// import).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        parse(input)
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => {
                if n.is_finite() {
                    // Rust's `{}` for f64 is the shortest representation
                    // that round-trips, which is exactly what JSON needs.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Self::String(s) => write_escaped(out, s),
            Self::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Self::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("malformed number"))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "3.25", "-17", "\"hi\\nthere\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Value::Object(BTreeMap::from([
            ("name".into(), Value::String("fig \"x\"".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Number(0.4), Value::Number(0.97)]),
                    Value::Array(vec![Value::Number(0.5), Value::Number(1.0)]),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]));
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = parse(r#"{"a": [1, 2]}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1,"), "got:\n{pretty}");
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Value::String("µs — tab\t, quote \", ctrl \u{0001}".into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"open",
            "[] []",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_string_compact(), "null");
    }
}
