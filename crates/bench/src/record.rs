//! Experiment records: a uniform shape for every regenerated table/figure,
//! printable as aligned text and serializable to JSON for EXPERIMENTS.md
//! bookkeeping.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One named data series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (legend entry).
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

/// A regenerated figure or table.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRecord {
    /// Identifier, e.g. `"fig13"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Free-form notes (comparisons against the paper, caveats).
    pub notes: Vec<String>,
}

impl FigureRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the record as an aligned text table (x column followed by
    /// one column per series).
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if self.series.is_empty() {
            return out;
        }
        // Collect the union of x values in first-series order, then extras.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| (e - x).abs() < 1e-12) {
                    xs.push(x);
                }
            }
        }
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", truncate(&s.name, 18));
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{x:>12.4}");
            for s in &self.series {
                match s.points.iter().find(|(px, _)| (px - x).abs() < 1e-12) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:>18.6}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Prints the table to stdout and, when `DANTE_RESULTS` is set, writes
    /// `{id}.json` into that directory.
    pub fn emit(&self) {
        println!("{}", self.to_table());
        if let Some(dir) = std::env::var_os("DANTE_RESULTS") {
            let dir = PathBuf::from(dir);
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join(format!("{}.json", self.id));
                if let Err(e) = std::fs::write(&path, self.to_json_pretty()) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
        }
    }

    /// Serializes the record as pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Parses a record from the JSON produced by [`Self::to_json_pretty`].
    ///
    /// # Errors
    ///
    /// Returns an error string on malformed JSON or a missing/mistyped
    /// field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let series = v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing array field 'series'")?
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("series missing 'name'")?;
                let points = s
                    .get("points")
                    .and_then(Value::as_array)
                    .ok_or("series missing 'points'")?
                    .iter()
                    .map(|p| match p.as_array() {
                        Some([x, y]) => x
                            .as_f64()
                            .zip(y.as_f64())
                            .ok_or_else(|| "non-numeric point".to_owned()),
                        _ => Err("point is not a 2-element array".to_owned()),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Series::new(name, points))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let notes = v
            .get("notes")
            .and_then(Value::as_array)
            .ok_or("missing array field 'notes'")?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or("non-string note".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            id: str_field("id")?,
            title: str_field("title")?,
            x_label: str_field("x_label")?,
            y_label: str_field("y_label")?,
            series,
            notes,
        })
    }

    fn to_json_value(&self) -> Value {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|&(x, y)| Value::Array(vec![Value::Number(x), Value::Number(y)]))
                    .collect();
                Value::Object(BTreeMap::from([
                    ("name".to_owned(), Value::String(s.name.clone())),
                    ("points".to_owned(), Value::Array(points)),
                ]))
            })
            .collect();
        let notes = self
            .notes
            .iter()
            .map(|n| Value::String(n.clone()))
            .collect();
        Value::Object(BTreeMap::from([
            ("id".to_owned(), Value::String(self.id.clone())),
            ("title".to_owned(), Value::String(self.title.clone())),
            ("x_label".to_owned(), Value::String(self.x_label.clone())),
            ("y_label".to_owned(), Value::String(self.y_label.clone())),
            ("series".to_owned(), Value::Array(series)),
            ("notes".to_owned(), Value::Array(notes)),
        ]))
    }
}

impl FigureRecord {
    /// Renders the record as a rough ASCII line chart (one glyph per
    /// series: `*`, `o`, `+`, `x`, ...), y auto-scaled over all series.
    /// Intended for terminal examples; the JSON output is the real data.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is below 8 (nothing useful fits).
    #[must_use]
    pub fn to_ascii_chart(&self, width: usize, height: usize) -> String {
        assert!(width >= 8 && height >= 8, "chart area too small");
        const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '~'];

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.id);
        }
        let (mut x_min, mut x_max, mut y_min, mut y_max) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);

        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = (((y_max - y) / y_span) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col.min(width - 1)] = glyph;
            }
        }

        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{y_max:>9.3}")
            } else if r == height - 1 {
                format!("{y_min:>9.3}")
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
        let _ = writeln!(
            out,
            "{:>10}{x_min:<.3}{:>pad$}{x_max:.3}",
            "",
            "",
            pad = width.saturating_sub(12)
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Experiment sizing knobs, read from the environment so the same harness
/// scales from smoke test to paper fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Monte-Carlo fault dies per point (paper: 100).
    pub trials: usize,
    /// Test images per accuracy evaluation (paper: 5000).
    pub test_images: usize,
    /// Training epochs for the cached models.
    pub epochs: usize,
    /// Training images for the cached models.
    pub train_images: usize,
}

impl RunScale {
    /// Reads `DANTE_TRIALS`, `DANTE_TEST_N`, `DANTE_EPOCHS`; `DANTE_FULL=1`
    /// selects paper-fidelity defaults, otherwise fast defaults are used
    /// (10 dies x 400 images).
    #[must_use]
    pub fn from_env() -> Self {
        let full = std::env::var("DANTE_FULL").is_ok_and(|v| v == "1");
        let get = |key: &str, dflt: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        };
        if full {
            Self {
                trials: get("DANTE_TRIALS", 100),
                test_images: get("DANTE_TEST_N", 5000),
                epochs: get("DANTE_EPOCHS", 6),
                train_images: get("DANTE_TRAIN_N", 5000),
            }
        } else {
            Self {
                trials: get("DANTE_TRIALS", 10),
                test_images: get("DANTE_TEST_N", 400),
                epochs: get("DANTE_EPOCHS", 4),
                train_images: get("DANTE_TRAIN_N", 5000),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_series() {
        let rec = FigureRecord::new("figX", "test", "V", "acc")
            .with_series(Series::new("a", vec![(0.4, 1.0), (0.5, 2.0)]))
            .with_series(Series::new("b", vec![(0.4, 3.0)]))
            .with_note("hello");
        let t = rec.to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("note: hello"));
        assert!(t.lines().count() >= 5);
        // Missing point renders as '-'.
        assert!(t.contains('-'));
    }

    #[test]
    fn json_round_trips() {
        let rec = FigureRecord::new("fig1", "t", "x", "y")
            .with_series(Series::new("s", vec![(1.0, 2.0)]))
            .with_note("a \"quoted\" note");
        let json = rec.to_json_pretty();
        let back = FigureRecord::from_json(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn ascii_chart_places_extremes_on_borders() {
        let rec = FigureRecord::new("c", "chart", "x", "y")
            .with_series(Series::new("rise", vec![(0.0, 0.0), (1.0, 1.0)]))
            .with_series(Series::new("fall", vec![(0.0, 1.0), (1.0, 0.0)]));
        let chart = rec.to_ascii_chart(20, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // Row 1 (y max) must contain a mark at both the left ('o' from fall)
        // and right ('*' from rise) edges.
        let top = lines[1];
        assert!(top.contains('o') && top.contains('*'), "top row: {top}");
        // Legend lists both series.
        assert!(chart.contains("* rise") && chart.contains("o fall"));
        // Axis labels include the extremes.
        assert!(chart.contains("1.000") && chart.contains("0.000"));
    }

    #[test]
    fn ascii_chart_handles_nan_and_empty() {
        let rec = FigureRecord::new("n", "nan", "x", "y")
            .with_series(Series::new("s", vec![(0.0, f64::NAN)]));
        assert!(rec.to_ascii_chart(16, 8).contains("no data"));
    }

    #[test]
    #[should_panic(expected = "chart area too small")]
    fn ascii_chart_rejects_tiny_area() {
        let _ = FigureRecord::new("t", "t", "x", "y").to_ascii_chart(4, 4);
    }

    #[test]
    fn run_scale_defaults_are_fast() {
        std::env::remove_var("DANTE_FULL");
        std::env::remove_var("DANTE_TRIALS");
        let s = RunScale::from_env();
        assert!(s.trials <= 20);
        assert!(s.test_images <= 1000);
    }
}
