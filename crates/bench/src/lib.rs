//! # dante-bench
//!
//! The figure/table regeneration harness of the *Dante* reproduction:
//!
//! * [`record`] — experiment records ([`record::FigureRecord`])
//!   printable as tables and serializable to JSON, plus the
//!   [`record::RunScale`] sizing knobs (`DANTE_FULL=1` for
//!   paper-fidelity Monte-Carlo).
//! * [`figures`] — one function per paper artifact (`fig01`..`fig15`,
//!   `table1`..`table3`, `headlines`).
//! * [`perf`] — the tracked Monte-Carlo performance harness behind
//!   `BENCH_mc.json` (`cargo run -p dante-bench --release --bin bench_mc`):
//!   dense-vs-sparse overlay generation, per-trial corruption, and the
//!   end-to-end accuracy sweep.
//!
//! Each artifact also has a binary (`cargo run -p dante-bench --release
//! --bin fig13`) and a criterion bench (`cargo bench -p dante-bench`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod json;
pub mod perf;
pub mod record;

pub use record::{FigureRecord, RunScale, Series};
