//! Property tests for the `dante-bench::json` round-trip: any value tree
//! the emitter can produce must decode back to an identical tree, through
//! both the compact and the pretty renderer.

use dante_bench::json::{parse, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// SplitMix64 step — the same mixer the repo's seed derivation uses; good
/// enough to expand one proptest-drawn `u64` into a whole value tree.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characters the generator draws strings from: ASCII, every escape class
/// the emitter special-cases (quote, backslash, control characters), and
/// multi-byte unicode including an astral-plane scalar.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0000}', '\u{0001}', '\u{000B}',
    '\u{001F}', '\u{0008}', '\u{000C}', 'µ', 'é', '—', '日', '\u{FFFD}', '😀',
];

/// Numbers stressing the float formatter: huge magnitudes, subnormals,
/// large positive and negative exponents, negative zero.
const NUMBER_POOL: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -17.0,
    3.25,
    1e300,
    -1e300,
    1e-300,
    -2.5e-308,
    5e-324,
    f64::MAX,
    f64::MIN,
    f64::MIN_POSITIVE,
    0.1,
    -123_456_789.012_345_68,
];

fn gen_string(state: &mut u64) -> String {
    let len = (mix(state) % 12) as usize;
    (0..len)
        .map(|_| CHAR_POOL[(mix(state) as usize) % CHAR_POOL.len()])
        .collect()
}

fn gen_number(state: &mut u64) -> f64 {
    // Half the draws come from the stress pool, half are arbitrary finite
    // bit patterns (non-finite draws fall back to the pool: the emitter
    // collapses them to `null`, which is deliberately not an identity).
    if mix(state).is_multiple_of(2) {
        NUMBER_POOL[(mix(state) as usize) % NUMBER_POOL.len()]
    } else {
        let f = f64::from_bits(mix(state));
        if f.is_finite() {
            f
        } else {
            NUMBER_POOL[(mix(state) as usize) % NUMBER_POOL.len()]
        }
    }
}

fn gen_value(state: &mut u64, depth: usize) -> Value {
    let scalar_only = depth == 0;
    match mix(state) % if scalar_only { 4 } else { 6 } {
        0 => Value::Null,
        1 => Value::Bool(mix(state).is_multiple_of(2)),
        2 => Value::Number(gen_number(state)),
        3 => Value::String(gen_string(state)),
        4 => {
            let len = (mix(state) % 5) as usize;
            Value::Array((0..len).map(|_| gen_value(state, depth - 1)).collect())
        }
        _ => {
            let len = (mix(state) % 5) as usize;
            Value::Object(
                (0..len)
                    .map(|_| (gen_string(state), gen_value(state, depth - 1)))
                    .collect::<BTreeMap<_, _>>(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Compact rendering of an arbitrary tree parses back to the same tree.
    #[test]
    fn compact_round_trips(seed in any::<u64>()) {
        let mut state = seed;
        let v = gen_value(&mut state, 3);
        let text = v.to_string_compact();
        let back = Value::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&v), "compact text: {}", text);
    }

    /// Pretty rendering agrees with compact: same tree back, and the two
    /// renderings re-render identically after a parse cycle.
    #[test]
    fn pretty_round_trips(seed in any::<u64>()) {
        let mut state = seed.rotate_left(17);
        let v = gen_value(&mut state, 3);
        let pretty = v.to_string_pretty();
        let back = parse(&pretty);
        prop_assert_eq!(back.as_ref(), Ok(&v), "pretty text: {}", pretty);
        let reparsed = parse(&pretty).unwrap();
        prop_assert_eq!(reparsed.to_string_compact(), v.to_string_compact());
    }

    /// Numbers survive the trip exactly — bit-for-bit except the sign of
    /// zero (JSON has one zero; `-0.0 == 0.0` under `PartialEq`).
    #[test]
    fn numbers_round_trip_exactly(bits in any::<u64>()) {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            let v = Value::Number(f);
            let back = parse(&v.to_string_compact()).unwrap();
            let got = back.as_f64().expect("number expected");
            prop_assert!(
                got == f,
                "{f:?} (bits {bits:#x}) came back as {got:?}"
            );
        }
    }

    /// Strings of arbitrary pool characters — control bytes, escapes,
    /// unicode — survive both renderers.
    #[test]
    fn strings_round_trip(seed in any::<u64>()) {
        let mut state = seed ^ 0x5151_5151;
        let s = gen_string(&mut state);
        let v = Value::String(s.clone());
        prop_assert_eq!(parse(&v.to_string_compact()).unwrap(), v.clone(), "string: {:?}", s);
        prop_assert_eq!(parse(&v.to_string_pretty()).unwrap(), v, "string: {:?}", s);
    }
}

#[test]
fn exponent_edge_cases_parse() {
    for (text, expect) in [
        ("1e300", 1e300),
        ("-1E300", -1e300),
        ("2.5e-308", 2.5e-308),
        ("-2.5e-308", -2.5e-308),
        ("5e-324", 5e-324),
        ("1.7976931348623157e308", f64::MAX),
        ("-0", -0.0),
        ("0.0001e6", 100.0),
    ] {
        let v = Value::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(v.as_f64(), Some(expect), "{text}");
        // And the re-rendered form round-trips again.
        assert_eq!(Value::parse(&v.to_string_compact()).unwrap(), v, "{text}");
    }
}

#[test]
fn control_character_escapes_render_as_u_sequences() {
    let v = Value::String("\u{0000}\u{0001}\u{001F}".into());
    let text = v.to_string_compact();
    assert_eq!(text, "\"\\u0000\\u0001\\u001f\"");
    assert_eq!(Value::parse(&text).unwrap(), v);
}
