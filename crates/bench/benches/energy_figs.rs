//! Criterion benches for the analytic energy artifacts (Fig. 12, Table 3,
//! headlines) and the underlying energy-equation kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use dante_bench::figures::energy;
use dante_circuit::units::Volt;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use std::hint::black_box;

fn bench_energy_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy-figures");
    g.sample_size(10);
    g.bench_function("fig12_design_space_sweep", |b| {
        b.iter(|| black_box(energy::fig12()))
    });
    g.bench_function("table3_activity_models", |b| {
        b.iter(|| black_box(energy::table3()))
    });
    g.bench_function("headlines", |b| b.iter(|| black_box(energy::headlines())));
    g.finish();

    let mut g = c.benchmark_group("energy-kernels");
    let m = EnergyModel::dante_chip();
    let groups = [
        BoostedGroup {
            accesses: 100_000,
            level: 4,
        },
        BoostedGroup {
            accesses: 50_000,
            level: 1,
        },
    ];
    g.bench_function("eq3_dynamic_boosted", |b| {
        b.iter(|| black_box(m.dynamic_boosted(Volt::new(0.4), &groups, 10_000_000)))
    });
    g.bench_function("eq6_dynamic_dual", |b| {
        b.iter(|| black_box(m.dynamic_dual(Volt::new(0.6), Volt::new(0.4), 150_000, 10_000_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_energy_figures);
criterion_main!(benches);
