//! Criterion benches for the circuit-level paper artifacts
//! (Figs. 4, 6, 7, 8, 9): how long each figure's data generation takes.

use criterion::{criterion_group, criterion_main, Criterion};
use dante_bench::figures::circuit;
use std::hint::black_box;

fn bench_circuit_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit-figures");
    g.sample_size(10);
    g.bench_function("fig04_transient_staircase", |b| {
        b.iter(|| black_box(circuit::fig04()))
    });
    g.bench_function("fig06_mim_comparison", |b| {
        b.iter(|| black_box(circuit::fig06()))
    });
    g.bench_function("fig07_ber_and_latency", |b| {
        b.iter(|| black_box(circuit::fig07()))
    });
    g.bench_function("fig08_boost_ladder", |b| {
        b.iter(|| black_box(circuit::fig08()))
    });
    g.bench_function("fig09_latency_scopes", |b| {
        b.iter(|| black_box(circuit::fig09()))
    });
    g.finish();
}

criterion_group!(benches, bench_circuit_figures);
criterion_main!(benches);
