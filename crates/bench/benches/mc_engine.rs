//! Serial-vs-parallel Monte-Carlo engine bench: the same 100-trial
//! `AccuracyEvaluator::evaluate` on the trained MNIST FC-DNN, run through
//! the trial engine at increasing worker counts. The per-trial results are
//! identical at every thread count (that's the engine's contract — see
//! `tests/determinism.rs`); only the wall clock moves.
//!
//! Besides the criterion timings, the bench emits a `mc_engine` figure
//! record (thread count vs. wall time per sweep, plus the measured speedup
//! as a note) through the usual `DANTE_RESULTS` machinery so the scaling
//! curve lands next to the paper figures.

use criterion::{criterion_group, criterion_main, Criterion};
use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante_bench::record::{FigureRecord, Series};
use dante_circuit::units::Volt;
use std::hint::black_box;
use std::time::Instant;

/// Dies per evaluation; defaults to the paper's per-point count, with
/// `DANTE_TRIALS` as the usual override for smoke runs.
fn trials() -> usize {
    std::env::var("DANTE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

fn bench_mc_engine(c: &mut Criterion) {
    let trials = trials();
    let (net, test) = trained_mnist_fc(1200, 100, 4);
    let layers = net.weight_layer_indices().len();
    let assignment = VoltageAssignment::uniform(Volt::new(0.42), layers);
    let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);

    let mut g = c.benchmark_group("mc-engine");
    g.sample_size(5);
    let thread_counts: Vec<usize> = [1usize, 2, 4, cores]
        .into_iter()
        .scan(0usize, |prev, t| {
            let keep = t > *prev;
            *prev = (*prev).max(t);
            Some((t, keep))
        })
        .filter_map(|(t, keep)| keep.then_some(t))
        .collect();

    let mut points = Vec::new();
    let mut baseline = None;
    for &threads in &thread_counts {
        let eval = AccuracyEvaluator::new(trials).with_threads(threads);
        g.bench_function(
            &format!("evaluate_{trials}_trials_{threads}_threads"),
            |b| {
                b.iter(|| {
                    black_box(eval.evaluate(&net, &assignment, test.images(), test.labels(), 7))
                })
            },
        );
        // One extra timed run outside the harness for the figure record.
        let start = Instant::now();
        black_box(eval.evaluate(&net, &assignment, test.images(), test.labels(), 7));
        let secs = start.elapsed().as_secs_f64();
        baseline.get_or_insert(secs);
        points.push((threads as f64, secs));
    }
    g.finish();

    let serial = baseline.unwrap_or(f64::NAN);
    let best = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    FigureRecord::new(
        "mc_engine",
        "Monte-Carlo trial engine scaling: wall time per full Monte-Carlo evaluation vs worker threads",
        "worker threads",
        "wall time [s]",
    )
    .with_series(Series::new("evaluate wall time", points))
    .with_note(format!(
        "speedup over serial at best thread count: {:.2}x ({cores} cores available)",
        serial / best
    ))
    .emit();
}

criterion_group!(benches, bench_mc_engine);
criterion_main!(benches);
