//! Criterion benches for the evaluation-section experiments
//! (Figs. 13, 14, 15): one experiment point each at reduced Monte-Carlo
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use dante::artifacts::{trained_cifar_cnn, trained_mnist_fc};
use dante::experiments::{ConvExperiment, FcExperiment};
use dante::schedule::NamedBoostConfig;
use dante_circuit::units::Volt;
use std::hint::black_box;

fn bench_experiment_figures(c: &mut Criterion) {
    let (fc_net, fc_test) = trained_mnist_fc(1200, 100, 4);
    let (cnn_net, cnn_test) = trained_cifar_cnn(600, 100, 2);

    let mut g = c.benchmark_group("experiment-figures");
    g.sample_size(10);
    g.bench_function("fig13_point", |b| {
        let exp = FcExperiment::new(&fc_net, fc_test.images(), fc_test.labels(), 1);
        b.iter(|| black_box(exp.point(Volt::new(0.40), NamedBoostConfig::Vddv4, 1)))
    });
    g.bench_function("fig14_point", |b| {
        let exp = ConvExperiment::new(&cnn_net, cnn_test.images(), cnn_test.labels(), 1);
        b.iter(|| black_box(exp.point(Volt::new(0.40), 4, 1)))
    });
    g.bench_function("fig15_iso_accuracy_sweep", |b| {
        let exp = ConvExperiment::new(&cnn_net, cnn_test.images(), cnn_test.labels(), 1);
        b.iter(|| black_box(exp.iso_accuracy_sweep(&ConvExperiment::default_voltages())))
    });
    g.finish();
}

criterion_group!(benches, bench_experiment_figures);
criterion_main!(benches);
