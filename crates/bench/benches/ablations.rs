//! Criterion benches for the ablation studies (ECC filter kernel, level
//! granularity, dataflow sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use dante_bench::figures::ablation;
use dante_sram::ecc;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ablation_levels", |b| {
        b.iter(|| black_box(ablation::ablation_levels()))
    });
    g.bench_function("ablation_dataflow", |b| {
        b.iter(|| black_box(ablation::ablation_dataflow()))
    });
    g.finish();

    let mut g = c.benchmark_group("ecc-kernels");
    g.bench_function("secded_encode_decode", |b| {
        b.iter(|| {
            let cw = ecc::encode(black_box(0xDEAD_BEEF_CAFE_F00D));
            black_box(ecc::decode(cw.with_flip(37)))
        })
    });
    g.bench_function("secded_filter_4k_words", |b| {
        let corruption: Vec<u64> = (0..4096u64)
            .map(|i| if i % 97 == 0 { 1 << (i % 64) } else { 0 })
            .collect();
        let checks = vec![0u32; 4096];
        b.iter(|| {
            let mut c = corruption.clone();
            black_box(ecc::filter_corruption(&mut c, &checks))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
