//! Criterion benches for the fault-injection accuracy artifacts
//! (Figs. 1, 2): the cost of one Monte-Carlo point at a reduced scale, and
//! the corruption kernel itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante_circuit::units::Volt;
use std::hint::black_box;

fn bench_accuracy_figures(c: &mut Criterion) {
    let (net, test) = trained_mnist_fc(1200, 100, 4);
    let layers = net.weight_layer_indices().len();
    let eval = AccuracyEvaluator::new(1);

    let mut g = c.benchmark_group("accuracy-figures");
    g.sample_size(10);
    g.bench_function("fig02_point_weights_0v44", |b| {
        let a = VoltageAssignment::weights_only(Volt::new(0.44), layers, Volt::new(0.6));
        b.iter(|| black_box(eval.evaluate(&net, &a, test.images(), test.labels(), 1)))
    });
    g.bench_function("fig01_point_uniform_0v40", |b| {
        let a = VoltageAssignment::uniform(Volt::new(0.40), layers);
        b.iter(|| black_box(eval.evaluate(&net, &a, test.images(), test.labels(), 1)))
    });
    g.bench_function("corrupt_network_die", |b| {
        let a = VoltageAssignment::uniform(Volt::new(0.40), layers);
        let mut die = 0u64;
        b.iter(|| {
            die += 1;
            black_box(eval.corrupt_network(&net, &a, die))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_accuracy_figures);
criterion_main!(benches);
