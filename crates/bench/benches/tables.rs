//! Criterion benches for Tables 1 and 2 (configuration rendering; trivially
//! fast, included for full artifact coverage).

use criterion::{criterion_group, criterion_main, Criterion};
use dante_bench::figures::tables;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_chip_config", |b| {
        b.iter(|| black_box(tables::table1()))
    });
    g.bench_function("table2_boost_schedules", |b| {
        b.iter(|| black_box(tables::table2()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
