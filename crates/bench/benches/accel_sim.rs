//! Criterion benches for the accelerator simulator itself: the cost of one
//! bit-accurate boosted inference and of the raw memory path.

use criterion::{criterion_group, criterion_main, Criterion};
use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::program::Program;
use dante_circuit::units::Volt;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sram::fault::VminFaultModel;
use dante_sram::storage::FaultOverlay;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_accelerator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(64, 64, &mut rng)),
        Layer::Relu(Relu::new(64)),
        Layer::Dense(Dense::new(64, 10, &mut rng)),
    ])
    .expect("static shapes");
    let calib: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
    let program = Program::compile(&net, &calib).expect("dense network compiles");

    let mut g = c.benchmark_group("accelerator-sim");
    g.sample_size(10);
    g.bench_function("boosted_inference_64x64x10", |b| {
        let mut dante = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.40),
            &mut rng,
        );
        let schedule = BoostSchedule::uniform(4, 2, 1);
        b.iter(|| black_box(dante.run(&program, &schedule, &calib)))
    });
    g.bench_function("fault_overlay_generate_32kbit", |b| {
        let model = VminFaultModel::default_14nm();
        let mut orng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(FaultOverlay::generate(32 * 1024, &model, &mut orng)))
    });
    g.finish();
}

criterion_group!(benches, bench_accelerator);
criterion_main!(benches);
