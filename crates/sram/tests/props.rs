//! Property tests for the SRAM fault models.

use dante_circuit::units::Volt;
use dante_sim::{derive_seed, site};
use dante_sram::ber_fit::fit_vmin_model;
use dante_sram::ecc;
use dante_sram::fault::VminFaultModel;
use dante_sram::geometry::{BankGeometry, MacroGeometry, MemoryGeometry};
use dante_sram::math::{norm_ppf, phi_cdf, q_tail, q_tail_inv};
use dante_sram::sparse::SparseOverlay;
use dante_sram::storage::{CorruptionOverlay, FaultOverlay, FaultyMacro};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wilson score interval for an observed binomial proportion (local copy:
/// `dante-verify` depends on this crate, so its helper can't be used here).
fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    let n = n as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    (center - half, center + half)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The BER curve is strictly decreasing in voltage.
    #[test]
    fn ber_monotone(mv in 300u32..640) {
        let m = VminFaultModel::default_14nm();
        let v = Volt::from_millivolts(f64::from(mv));
        let hv = Volt::from_millivolts(f64::from(mv + 10));
        prop_assert!(m.bit_error_rate(hv) < m.bit_error_rate(v));
    }

    /// voltage_for_ber and bit_error_rate are mutual inverses.
    #[test]
    fn ber_inverse_roundtrip(log_ber in -8.0f64..-0.31) {
        let m = VminFaultModel::default_14nm();
        let ber = 10f64.powf(log_ber);
        let v = m.voltage_for_ber(ber);
        let back = m.bit_error_rate(v);
        prop_assert!((back - ber).abs() / ber < 1e-2, "ber {ber} -> {v} -> {back}");
    }

    /// Probit regression recovers arbitrary generating models from their
    /// own noiseless curves.
    #[test]
    fn probit_fit_recovers_model(mu_mv in 340u32..420, sigma_mv in 20u32..80) {
        let truth = VminFaultModel::new(
            Volt::from_millivolts(f64::from(mu_mv)),
            Volt::from_millivolts(f64::from(sigma_mv)),
            0.5,
        );
        let points: Vec<_> = (0..10)
            .map(|i| {
                let v = Volt::from_millivolts(f64::from(mu_mv) - 40.0 + 14.0 * f64::from(i));
                (v, truth.bit_error_rate(v).clamp(1e-12, 0.999_999))
            })
            .collect();
        let fitted = fit_vmin_model(&points).expect("valid synthetic data");
        prop_assert!((fitted.mu().volts() - truth.mu().volts()).abs() < 2e-3);
        prop_assert!((fitted.sigma().volts() - truth.sigma().volts()).abs() < 2e-3);
    }

    /// Normal tail helpers are consistent: Q(Q^{-1}(p)) == p.
    #[test]
    fn tail_inverse_consistency(p in 1e-9f64..0.999) {
        let z = q_tail_inv(p);
        let back = q_tail(z);
        prop_assert!((back - p).abs() / p < 2e-2, "p {p} z {z} back {back}");
        // And the CDF/quantile pair agrees.
        let z2 = norm_ppf(p);
        prop_assert!((phi_cdf(z2) - p).abs() < 1e-5);
    }

    /// Memory address decode is a bijection onto (bank, word).
    #[test]
    fn address_decode_bijective(banks in 1usize..8, addr_frac in 0.0f64..1.0) {
        let geom = MemoryGeometry::new(BankGeometry::dante_64kbit(), banks);
        let addr = ((geom.words() - 1) as f64 * addr_frac) as usize;
        let (bank, word) = geom.decode(addr);
        prop_assert!(bank < banks);
        prop_assert!(word < geom.bank_geometry().words());
        prop_assert_eq!(bank * geom.bank_geometry().words() + word, addr);
    }

    /// Data written to a fault-free macro reads back exactly, for any
    /// geometry and pattern.
    #[test]
    fn fault_free_storage_roundtrip(
        words_log2 in 2u32..9,
        bits in 8usize..=64,
        pattern in any::<u64>(),
    ) {
        let geom = MacroGeometry::new(1 << words_log2, bits);
        let mut m = FaultyMacro::fault_free(geom);
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        for w in 0..geom.words() {
            m.write(w, pattern.rotate_left(w as u32));
        }
        for w in 0..geom.words() {
            prop_assert_eq!(m.read(w, Volt::new(0.3)), pattern.rotate_left(w as u32) & mask);
        }
    }

    /// SEC-DED corrects any single flip of any codeword.
    #[test]
    fn secded_single_correction(data in any::<u64>(), pos in 0u32..72) {
        let cw = ecc::encode(data);
        let (back, corr) = ecc::decode(cw.with_flip(pos));
        prop_assert_eq!(back, data);
        prop_assert_eq!(corr, ecc::Correction::Corrected { position: pos });
    }

    /// SEC-DED detects any double flip without silently corrupting.
    #[test]
    fn secded_double_detection(data in any::<u64>(), a in 0u32..72, b in 0u32..72) {
        prop_assume!(a != b);
        let cw = ecc::encode(data);
        let (_, corr) = ecc::decode(cw.with_flip(a).with_flip(b));
        prop_assert_eq!(corr, ecc::Correction::Uncorrectable);
    }

    /// Fault maps are pure functions of their derived seed: regenerating an
    /// overlay from the same `(root_seed, trial)` pair yields an identical
    /// die, bit for bit.
    #[test]
    fn fault_overlay_is_pure_in_its_seed(root in any::<u64>(), trial in 0u64..1000) {
        let model = VminFaultModel::default_14nm();
        let seed = derive_seed(root, site::TRIAL, trial);
        let a = FaultOverlay::from_seed(4096, &model, seed);
        let b = FaultOverlay::from_seed(4096, &model, seed);
        let v = Volt::new(0.40);
        prop_assert_eq!(a.corruption_words(v), b.corruption_words(v));
        prop_assert_eq!(
            a.vmins().fault_mask(v).words(),
            b.vmins().fault_mask(v).words()
        );
        // Distinct trials draw distinct dies (collisions on a 4096-bit
        // pattern at cliff-region BER are astronomically unlikely).
        let other = FaultOverlay::from_seed(4096, &model, derive_seed(root, site::TRIAL, trial + 1));
        prop_assert!(
            a.vmins().fault_mask(v) != other.vmins().fault_mask(v)
                || a.corruption_words(v) != other.corruption_words(v)
        );
    }

    /// Fault sets are inclusive across voltage: every cell that fails at a
    /// higher supply also fails at any lower one, so lowering Vdd only adds
    /// faults to a die — it never repairs one.
    #[test]
    fn fault_sets_are_inclusive_across_voltage(
        seed in any::<u64>(),
        lo_mv in 300u32..500,
        delta_mv in 1u32..150,
    ) {
        let model = VminFaultModel::default_14nm();
        let overlay = FaultOverlay::from_seed(2048, &model, seed);
        let lo = Volt::from_millivolts(f64::from(lo_mv));
        let hi = Volt::from_millivolts(f64::from(lo_mv + delta_mv));
        let at_lo = overlay.vmins().fault_mask(lo);
        let at_hi = overlay.vmins().fault_mask(hi);
        prop_assert!(
            at_lo.is_superset_of(&at_hi),
            "die gained working cells going down from {hi} to {lo}"
        );
        prop_assert!(at_lo.count() >= at_hi.count());
    }

    /// Sparse and dense overlays of the same size both put their observed
    /// flip rate inside the Wilson band around the analytic expectation
    /// `BER(v) * p_flip` — the two samplers target the same distribution.
    #[test]
    fn sparse_and_dense_flip_counts_agree_within_wilson_bounds(
        seed in 0u64..200,
        mv in 360u32..460,
    ) {
        let model = VminFaultModel::default_14nm();
        let bits = 50_000usize;
        let v = Volt::from_millivolts(f64::from(mv));
        let expected = model.bit_error_rate(v) * model.read_flip_probability();
        let dense = FaultOverlay::from_seed(bits, &model, seed);
        let sparse = SparseOverlay::from_seed(bits, &model, v, seed);
        for (name, count) in [
            ("dense", CorruptionOverlay::flip_count(&dense, v)),
            ("sparse", CorruptionOverlay::flip_count(&sparse, v)),
        ] {
            let (lo, hi) = wilson_interval(count as u64, bits as u64, 5.0);
            prop_assert!(
                (lo - 1e-4..=hi + 1e-4).contains(&expected),
                "{name} flip rate {}/{bits} puts analytic {expected:.4e} outside \
                 Wilson [{lo:.4e}, {hi:.4e}] at {v}",
                count
            );
        }
    }

    /// Sparse fault sets are inclusive across voltage, exactly like dense
    /// ones: above the sampling floor, lowering Vdd only adds corruption.
    #[test]
    fn sparse_fault_sets_are_inclusive_across_voltage(
        seed in any::<u64>(),
        floor_mv in 340u32..440,
        d1_mv in 0u32..60,
        d2_mv in 1u32..60,
    ) {
        let model = VminFaultModel::default_14nm();
        let v_floor = Volt::from_millivolts(f64::from(floor_mv));
        let overlay = SparseOverlay::from_seed(8_192, &model, v_floor, seed);
        let lo = Volt::from_millivolts(f64::from(floor_mv + d1_mv));
        let hi = Volt::from_millivolts(f64::from(floor_mv + d1_mv + d2_mv));
        prop_assert!(overlay.fault_count(lo) >= overlay.fault_count(hi));
        let words = 8_192usize.div_ceil(64);
        let mut at_lo = Vec::new();
        let mut at_hi = Vec::new();
        overlay.corruption_words_into(lo, words, &mut at_lo);
        overlay.corruption_words_into(hi, words, &mut at_hi);
        for (w, (&l, &h)) in at_lo.iter().zip(&at_hi).enumerate() {
            prop_assert!(
                l & h == h,
                "word {w} lost corruption going down from {hi} to {lo}: {h:#x} -> {l:#x}"
            );
        }
    }

    /// Evaluating a sparse overlay below its sampling floor panics with a
    /// message naming the floor — faults below it were never sampled, so
    /// silently returning a too-small fault set would be wrong.
    #[test]
    fn sparse_overlay_rejects_voltages_below_its_floor(
        seed in any::<u64>(),
        floor_mv in 360u32..460,
        below_mv in 1u32..50,
    ) {
        let model = VminFaultModel::default_14nm();
        let v_floor = Volt::from_millivolts(f64::from(floor_mv));
        let overlay = SparseOverlay::from_seed(1_024, &model, v_floor, seed);
        let v = Volt::from_millivolts(f64::from(floor_mv - below_mv));
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            overlay.fault_count(v)
        }))
        .expect_err("evaluation below the floor must panic");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        prop_assert!(
            message.contains("below this sparse overlay's sampling floor"),
            "panic message should name the floor, got: {message}"
        );
    }

    /// Empirical die BER tracks the analytic model within binomial noise.
    #[test]
    fn die_ber_tracks_model(seed in 0u64..100) {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(seed);
        let field = dante_sram::fault_map::VminField::generate(50_000, &model, &mut rng);
        let v = Volt::new(0.40);
        let analytic = model.bit_error_rate(v);
        let empirical = field.empirical_ber(v);
        let sigma = (analytic * (1.0 - analytic) / 50_000.0).sqrt();
        prop_assert!((empirical - analytic).abs() < 6.0 * sigma + 1e-4);
    }
}

/// Promoted proptest regression (shrunk to `mu_mv = 300, sigma_mv = 20`):
/// `probit_fit_recovers_model` once generated a model whose lowest curve
/// sample (`mu - 40 mV = 260 mV`) dipped below [`V_DATA_RETENTION`], where a
/// bit error *rate* is meaningless. The generator range now stays above the
/// floor; this pins the shrunk case and the loud failure mode it exposed.
#[test]
#[should_panic(expected = "below the data-retention voltage")]
fn probit_curve_below_retention_panics_regression() {
    let truth = VminFaultModel::new(
        Volt::from_millivolts(300.0),
        Volt::from_millivolts(20.0),
        0.5,
    );
    let _points: Vec<_> = (0..10)
        .map(|i| {
            let v = Volt::from_millivolts(300.0 - 40.0 + 14.0 * f64::from(i));
            (v, truth.bit_error_rate(v).clamp(1e-12, 0.999_999))
        })
        .collect();
}
