//! SRAM macro and bank geometry of the taped-out chip (paper Sec. 4).
//!
//! The chip's 144 KB of on-chip memory is built from 36 identical 4 KB
//! macros of 512 words x 64 bits. Two macros gang into one 64 Kbit *bank*,
//! the granularity at which the booster column and BIC block attach.

use core::fmt;

/// Geometry of one SRAM macro.
///
/// # Examples
///
/// ```
/// use dante_sram::geometry::MacroGeometry;
///
/// let m = MacroGeometry::dante_4kb();
/// assert_eq!(m.capacity_bits(), 32 * 1024);
/// assert_eq!(m.capacity_bytes(), 4 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacroGeometry {
    words: usize,
    bits_per_word: usize,
}

impl MacroGeometry {
    /// The chip's macro: 512 words x 64 bits = 4 KB (32 Kbit).
    #[must_use]
    pub fn dante_4kb() -> Self {
        Self {
            words: 512,
            bits_per_word: 64,
        }
    }

    /// Creates a custom geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `bits_per_word > 64` (one
    /// storage word per SRAM word keeps the model simple and matches the
    /// chip).
    #[must_use]
    pub fn new(words: usize, bits_per_word: usize) -> Self {
        assert!(words > 0, "macro must have at least one word");
        assert!(
            (1..=64).contains(&bits_per_word),
            "bits per word must be in 1..=64"
        );
        Self {
            words,
            bits_per_word,
        }
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Bits per word.
    #[must_use]
    pub fn bits_per_word(&self) -> usize {
        self.bits_per_word
    }

    /// Total capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        self.words * self.bits_per_word
    }

    /// Total capacity in bytes (rounded down).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }

    /// Linear bit index of `(word, bit)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    #[must_use]
    pub fn bit_index(&self, word: usize, bit: usize) -> usize {
        assert!(word < self.words, "word {word} out of range");
        assert!(bit < self.bits_per_word, "bit {bit} out of range");
        word * self.bits_per_word + bit
    }
}

impl fmt::Display for MacroGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}b ({} KB)",
            self.words,
            self.bits_per_word,
            self.capacity_bytes() / 1024
        )
    }
}

/// Geometry of a boosted bank: a group of macros sharing one boosted rail
/// and one BIC block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankGeometry {
    macro_geometry: MacroGeometry,
    macros_per_bank: usize,
}

impl BankGeometry {
    /// The chip's bank: two 4 KB macros = 64 Kbit.
    #[must_use]
    pub fn dante_64kbit() -> Self {
        Self {
            macro_geometry: MacroGeometry::dante_4kb(),
            macros_per_bank: 2,
        }
    }

    /// Creates a custom bank geometry.
    ///
    /// # Panics
    ///
    /// Panics if `macros_per_bank` is zero.
    #[must_use]
    pub fn new(macro_geometry: MacroGeometry, macros_per_bank: usize) -> Self {
        assert!(macros_per_bank > 0, "a bank needs at least one macro");
        Self {
            macro_geometry,
            macros_per_bank,
        }
    }

    /// Geometry of the constituent macros.
    #[must_use]
    pub fn macro_geometry(&self) -> MacroGeometry {
        self.macro_geometry
    }

    /// Number of macros ganged per bank.
    #[must_use]
    pub fn macros_per_bank(&self) -> usize {
        self.macros_per_bank
    }

    /// Words addressable in the bank (macros are word-interleaved end to
    /// end).
    #[must_use]
    pub fn words(&self) -> usize {
        self.macro_geometry.words * self.macros_per_bank
    }

    /// Capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        self.macro_geometry.capacity_bits() * self.macros_per_bank
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }
}

impl fmt::Display for BankGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} macros of {} ({} Kbit/bank)",
            self.macros_per_bank,
            self.macro_geometry,
            self.capacity_bits() / 1024
        )
    }
}

/// Layout of a multi-bank memory (e.g. the 128 KB weight memory = 16 banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryGeometry {
    bank_geometry: BankGeometry,
    banks: usize,
}

impl MemoryGeometry {
    /// Creates a memory of `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(bank_geometry: BankGeometry, banks: usize) -> Self {
        assert!(banks > 0, "a memory needs at least one bank");
        Self {
            bank_geometry,
            banks,
        }
    }

    /// The chip's 128 KB weight memory: 16 banks of 64 Kbit.
    #[must_use]
    pub fn dante_weight_memory() -> Self {
        Self::new(BankGeometry::dante_64kbit(), 16)
    }

    /// The chip's 16 KB input memory: 2 banks of 64 Kbit.
    #[must_use]
    pub fn dante_input_memory() -> Self {
        Self::new(BankGeometry::dante_64kbit(), 2)
    }

    /// Per-bank geometry.
    #[must_use]
    pub fn bank_geometry(&self) -> BankGeometry {
        self.bank_geometry
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total number of macros.
    #[must_use]
    pub fn total_macros(&self) -> usize {
        self.banks * self.bank_geometry.macros_per_bank()
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.bank_geometry.capacity_bytes()
    }

    /// Total addressable words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.banks * self.bank_geometry.words()
    }

    /// Decomposes a flat word address into `(bank, word-within-bank)`.
    ///
    /// Addresses are banked contiguously (bank 0 holds the first
    /// `bank.words()` addresses), matching the chip's per-layer weight
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn decode(&self, addr: usize) -> (usize, usize) {
        assert!(
            addr < self.words(),
            "address {addr} out of range ({})",
            self.words()
        );
        let per_bank = self.bank_geometry.words();
        (addr / per_bank, addr % per_bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dante_macro_is_4kb() {
        let m = MacroGeometry::dante_4kb();
        assert_eq!(m.words(), 512);
        assert_eq!(m.bits_per_word(), 64);
        assert_eq!(m.capacity_bytes(), 4096);
    }

    #[test]
    fn dante_chip_totals_match_table1() {
        // Table 1 / Sec. 4: 128 KB weight + 16 KB input memory from 36
        // 4 KB macros.
        let w = MemoryGeometry::dante_weight_memory();
        let i = MemoryGeometry::dante_input_memory();
        assert_eq!(w.capacity_bytes(), 128 * 1024);
        assert_eq!(i.capacity_bytes(), 16 * 1024);
        assert_eq!(w.total_macros() + i.total_macros(), 36);
    }

    #[test]
    fn bit_index_is_row_major() {
        let m = MacroGeometry::dante_4kb();
        assert_eq!(m.bit_index(0, 0), 0);
        assert_eq!(m.bit_index(0, 63), 63);
        assert_eq!(m.bit_index(1, 0), 64);
        assert_eq!(m.bit_index(511, 63), m.capacity_bits() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_index_bounds_checked() {
        let _ = MacroGeometry::dante_4kb().bit_index(512, 0);
    }

    #[test]
    fn address_decode_round_trips() {
        let mem = MemoryGeometry::dante_weight_memory();
        let per_bank = mem.bank_geometry().words();
        for addr in [
            0,
            1,
            per_bank - 1,
            per_bank,
            5 * per_bank + 17,
            mem.words() - 1,
        ] {
            let (bank, word) = mem.decode(addr);
            assert_eq!(bank * per_bank + word, addr);
            assert!(bank < mem.banks());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_bounds_checked() {
        let mem = MemoryGeometry::dante_input_memory();
        let _ = mem.decode(mem.words());
    }

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(format!("{}", MacroGeometry::dante_4kb()), "512x64b (4 KB)");
        let b = BankGeometry::dante_64kbit();
        assert!(format!("{b}").contains("64 Kbit"));
    }

    #[test]
    #[should_panic(expected = "bits per word")]
    fn oversized_word_rejected() {
        let _ = MacroGeometry::new(16, 65);
    }
}
