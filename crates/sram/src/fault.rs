//! The low-voltage SRAM bitcell fault model (paper Sec. 5.1, Fig. 11).
//!
//! On account of inter-cell threshold-voltage (`V_t`) variation, each bitcell
//! has its own minimum reliable operating voltage. The paper models cell
//! vulnerability as normally distributed; equivalently, each cell draws a
//! *cell V_min* `v_c ~ N(mu, sigma)` and is **faulty** at any supply voltage
//! `v < v_c`. The macro-level bit error rate at voltage `v` is then the
//! Gaussian tail
//!
//! ```text
//! F(v) = P(v_c > v) = Q((v - mu) / sigma)
//! ```
//!
//! which rises exponentially as the supply drops — the measured behaviour of
//! Fig. 7 (top). This construction makes fault maps *inclusive* by
//! definition: the set of faulty cells at `V_1` contains the set at `V_2`
//! whenever `V_1 < V_2`, exactly the property the paper requires.
//!
//! A faulty cell does not deterministically corrupt data: on read it
//! produces the wrong value with probability `p` (0.5 by default).

use crate::math::{q_tail, q_tail_inv};
use dante_circuit::units::Volt;

/// Default probability that reading a *faulty* cell yields a flipped bit.
pub const DEFAULT_READ_FLIP_PROBABILITY: f64 = 0.5;

/// Minimum voltage at which the SRAM still retains its stored data
/// (`V_data-retention` of paper Fig. 1); below this the model refuses to
/// operate.
pub const V_DATA_RETENTION: Volt = Volt::const_new(0.30);

/// Gaussian cell-V_min fault model for one SRAM design in one technology.
///
/// # Examples
///
/// ```
/// use dante_sram::fault::VminFaultModel;
/// use dante_circuit::units::Volt;
///
/// let model = VminFaultModel::default_14nm();
/// // The paper's quoted operating point: BER ~ 0.014 at 0.44 V.
/// let ber = model.bit_error_rate(Volt::new(0.44));
/// assert!((ber - 0.014).abs() < 0.002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VminFaultModel {
    mu: Volt,
    sigma: Volt,
    read_flip_probability: f64,
}

impl VminFaultModel {
    /// The calibrated 14nm 6T-SRAM model (DESIGN.md Sec. 4):
    /// `mu = 0.352 V`, `sigma = 0.040 V`, anchored to the paper's measured
    /// BER of ~1.4e-2 at 0.44 V and zero fails at 0.6 V on a 4 Mbit array.
    #[must_use]
    pub fn default_14nm() -> Self {
        Self {
            mu: Volt::const_new(0.352),
            sigma: Volt::const_new(0.040),
            read_flip_probability: DEFAULT_READ_FLIP_PROBABILITY,
        }
    }

    /// Creates a model from a cell-V_min distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is non-positive or `read_flip_probability` is
    /// outside `(0, 1]`.
    #[must_use]
    pub fn new(mu: Volt, sigma: Volt, read_flip_probability: f64) -> Self {
        assert!(sigma.volts() > 0.0, "sigma must be positive");
        assert!(
            read_flip_probability > 0.0 && read_flip_probability <= 1.0,
            "read flip probability must be in (0, 1]"
        );
        Self {
            mu,
            sigma,
            read_flip_probability,
        }
    }

    /// Mean of the cell-V_min distribution.
    #[must_use]
    pub fn mu(&self) -> Volt {
        self.mu
    }

    /// Standard deviation of the cell-V_min distribution.
    #[must_use]
    pub fn sigma(&self) -> Volt {
        self.sigma
    }

    /// Probability that a faulty cell flips on read.
    #[must_use]
    pub fn read_flip_probability(&self) -> f64 {
        self.read_flip_probability
    }

    /// Returns a copy with a different read-flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn with_read_flip_probability(self, p: f64) -> Self {
        Self::new(self.mu, self.sigma, p)
    }

    /// The bitcell failure rate `F(v)` at supply voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below [`V_DATA_RETENTION`]: the array no longer
    /// holds data there, so a bit error *rate* is meaningless.
    #[must_use]
    pub fn bit_error_rate(&self, v: Volt) -> f64 {
        assert!(
            v >= V_DATA_RETENTION,
            "{v} is below the data-retention voltage {V_DATA_RETENTION}"
        );
        let z = (v - self.mu).volts() / self.sigma.volts();
        q_tail(z)
    }

    /// Effective probability that a single stored bit reads back flipped at
    /// voltage `v`: `F(v) * p_read_flip`.
    #[must_use]
    pub fn bit_flip_rate(&self, v: Volt) -> f64 {
        self.bit_error_rate(v) * self.read_flip_probability
    }

    /// Inverse of [`Self::bit_error_rate`]: the voltage at which the failure
    /// rate equals `ber`.
    ///
    /// # Panics
    ///
    /// Panics unless `ber` is in `(0, 1)`.
    #[must_use]
    pub fn voltage_for_ber(&self, ber: f64) -> Volt {
        let z = q_tail_inv(ber);
        self.mu + self.sigma * z
    }

    /// The voltage at which the *expected* number of failing cells in an
    /// array of `capacity_bits` first reaches one — `V_1st-error` of Fig. 1.
    #[must_use]
    pub fn v_first_error(&self, capacity_bits: u64) -> Volt {
        assert!(capacity_bits > 0, "array capacity must be positive");
        self.voltage_for_ber(1.0 / capacity_bits as f64)
    }

    /// Expected number of faulty cells in an array of `capacity_bits` at `v`.
    #[must_use]
    pub fn expected_failures(&self, v: Volt, capacity_bits: u64) -> f64 {
        self.bit_error_rate(v) * capacity_bits as f64
    }

    /// Synthetic "hardware measurement" dataset: `(voltage, BER)` points in
    /// the paper's measured range (0.34–0.60 V), as plotted in Fig. 7 (top).
    /// Used by [`crate::ber_fit`] round-trip tests and by the figure
    /// harnesses.
    #[must_use]
    pub fn measurement_points(&self) -> Vec<(Volt, f64)> {
        (0..=13)
            .map(|i| {
                let v = Volt::new(0.34 + 0.02 * f64::from(i));
                (v, self.bit_error_rate(v))
            })
            .collect()
    }
}

impl Default for VminFaultModel {
    fn default() -> Self {
        Self::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors_match_the_paper() {
        let m = VminFaultModel::default_14nm();
        // ~1.4% BER at 0.44 V (Sec. 2: "the same bit error rate, say at
        // 0.014 at 0.44 V").
        let ber_044 = m.bit_error_rate(Volt::new(0.44));
        assert!((ber_044 - 0.014).abs() < 0.002, "BER(0.44) = {ber_044}");
        // Zero fails at 0.6 V on a 4 Mbit test array (Sec. 3.3): expected
        // failures well below one.
        assert!(m.expected_failures(Volt::new(0.60), 4 * 1024 * 1024) < 0.1);
    }

    #[test]
    fn ber_rises_exponentially_as_voltage_drops() {
        let m = VminFaultModel::default_14nm();
        let mut prev = 0.0;
        let mut ratios = Vec::new();
        for mv in (340..=600).rev().step_by(20) {
            let ber = m.bit_error_rate(Volt::from_millivolts(f64::from(mv)));
            if prev > 0.0 {
                ratios.push(ber / prev);
            }
            assert!(ber >= prev, "BER must grow as V drops");
            prev = ber;
        }
        // Exponential-like: each 20 mV step multiplies the BER substantially
        // in the steep region.
        assert!(ratios.iter().take(5).all(|&r| r > 2.0), "ratios {ratios:?}");
    }

    #[test]
    fn voltage_for_ber_inverts_bit_error_rate() {
        let m = VminFaultModel::default_14nm();
        for &ber in &[1e-7, 1e-4, 0.014, 0.1, 0.4] {
            let v = m.voltage_for_ber(ber);
            let back = m.bit_error_rate(v);
            assert!(
                (back - ber).abs() / ber < 1e-2,
                "ber={ber} v={v} back={back}"
            );
        }
    }

    #[test]
    fn v_first_error_decreases_for_smaller_arrays() {
        let m = VminFaultModel::default_14nm();
        let big = m.v_first_error(4 * 1024 * 1024);
        let small = m.v_first_error(32 * 1024);
        assert!(
            big > small,
            "bigger arrays hit their first error at higher V"
        );
        // The 4 Mbit array's first error appears somewhere below 0.6 V.
        assert!(big < Volt::new(0.60) && big > Volt::new(0.45));
    }

    #[test]
    fn flip_rate_halves_error_rate_by_default() {
        let m = VminFaultModel::default_14nm();
        let v = Volt::new(0.42);
        assert!((m.bit_flip_rate(v) - 0.5 * m.bit_error_rate(v)).abs() < 1e-15);
        let certain = m.with_read_flip_probability(1.0);
        assert!((certain.bit_flip_rate(v) - m.bit_error_rate(v)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "below the data-retention voltage")]
    fn below_retention_panics() {
        let _ = VminFaultModel::default_14nm().bit_error_rate(Volt::new(0.25));
    }

    #[test]
    fn measurement_points_span_the_measured_range() {
        let pts = VminFaultModel::default_14nm().measurement_points();
        assert_eq!(pts.len(), 14);
        assert!((pts[0].0.volts() - 0.34).abs() < 1e-9);
        assert!((pts[13].0.volts() - 0.60).abs() < 1e-9);
        // Monotonically decreasing BER with rising voltage.
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn invalid_sigma_rejected() {
        let _ = VminFaultModel::new(Volt::new(0.35), Volt::new(0.0), 0.5);
    }
}
