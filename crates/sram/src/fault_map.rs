//! Monte-Carlo fault maps: per-cell `V_min` fields and the voltage-indexed
//! fault masks derived from them (paper Fig. 11).
//!
//! One [`VminField`] is one Monte-Carlo *die instance*: every bitcell gets a
//! concrete minimum reliable voltage drawn from the
//! [`crate::fault::VminFaultModel`]'s Gaussian. Evaluating
//! the same field at several supply voltages yields **inclusive** fault maps
//! — the fault set at a lower voltage is a superset of the fault set at any
//! higher voltage — exactly the property the paper's methodology demands
//! ("failures present in a fault map at voltage V1 will also include
//! failures present at voltage V2, where V1 < V2").

use crate::fault::VminFaultModel;
use dante_circuit::units::Volt;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// A packed bitmask of faulty cells at one voltage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMask {
    words: Vec<u64>,
    len: usize,
}

/// Index of the 64-bit word holding cell `idx`.
#[inline]
#[must_use]
pub fn word_index(idx: usize) -> usize {
    idx / 64
}

/// Single-bit mask selecting cell `idx` within its word.
#[inline]
#[must_use]
pub fn bit_mask(idx: usize) -> u64 {
    1u64 << (idx % 64)
}

impl FaultMask {
    fn with_len(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of cells covered by the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether cell `idx` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "cell index {idx} out of range");
        self.words[word_index(idx)] & bit_mask(idx) != 0
    }

    /// Number of faulty cells: a single `count_ones` pass over the packed
    /// words (bits past `len` are structurally zero — the fault-word stream
    /// never sets them — so the final partial word needs no extra masking).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed 64-bit words of the mask (cell `i` is bit `i % 64` of word
    /// `i / 64`); useful for XOR-style overlay onto packed data words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether every faulty cell of `other` is also faulty in `self` — the
    /// inclusivity check.
    ///
    /// # Panics
    ///
    /// Panics if the masks cover different cell counts.
    #[must_use]
    pub fn is_superset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }
}

/// A per-cell `V_min` field: one Monte-Carlo die instance.
#[derive(Debug, Clone, PartialEq)]
pub struct VminField {
    vmins: Vec<f32>,
}

impl VminField {
    /// Draws a fresh die: `bits` i.i.d. cell V_mins from `model`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(bits: usize, model: &VminFaultModel, rng: &mut R) -> Self {
        assert!(bits > 0, "a die needs at least one cell");
        let normal = Normal::new(model.mu().volts(), model.sigma().volts())
            .expect("validated sigma is positive");
        let vmins = (0..bits).map(|_| normal.sample(rng) as f32).collect();
        Self { vmins }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vmins.len()
    }

    /// Whether the field has zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vmins.is_empty()
    }

    /// Whether cell `idx` is faulty at supply voltage `v`
    /// (`v < v_c(idx)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn is_faulty(&self, idx: usize, v: Volt) -> bool {
        (v.volts() as f32) < self.vmins[idx]
    }

    /// The fault mask of this die at supply voltage `v`.
    #[must_use]
    pub fn fault_mask(&self, v: Volt) -> FaultMask {
        let mut mask = FaultMask::with_len(self.len());
        for (w, word) in self.fault_words(v).zip(mask.words.iter_mut()) {
            *word = w;
        }
        mask
    }

    /// The packed fault words of this die at `v`, streamed one 64-bit word
    /// at a time without materializing a [`FaultMask`] (cell `i` is bit
    /// `i % 64` of word `i / 64`; bits past the last cell are zero).
    pub fn fault_words(&self, v: Volt) -> impl Iterator<Item = u64> + '_ {
        let vf = v.volts() as f32;
        self.vmins.chunks(64).map(move |chunk| {
            let mut w = 0u64;
            for (bit, &vmin) in chunk.iter().enumerate() {
                if vf < vmin {
                    w |= 1u64 << bit;
                }
            }
            w
        })
    }

    /// Number of faulty cells at `v` without materializing a mask.
    #[must_use]
    pub fn fault_count(&self, v: Volt) -> usize {
        let vf = v.volts() as f32;
        self.vmins.iter().filter(|&&m| vf < m).count()
    }

    /// Empirical bit error rate of this die at `v`.
    #[must_use]
    pub fn empirical_ber(&self, v: Volt) -> f64 {
        self.fault_count(v) as f64 / self.len() as f64
    }

    /// The raw per-cell V_min draws, in volts — the sample set that
    /// statistical acceptance tests (KS, chi-square) compare against the
    /// analytic Gaussian.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.vmins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field(bits: usize, seed: u64) -> VminField {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(seed);
        VminField::generate(bits, &model, &mut rng)
    }

    #[test]
    fn empirical_ber_matches_analytic_model() {
        let model = VminFaultModel::default_14nm();
        let f = field(200_000, 7);
        for mv in [380, 400, 420, 440] {
            let v = Volt::from_millivolts(f64::from(mv));
            let analytic = model.bit_error_rate(v);
            let empirical = f.empirical_ber(v);
            let tol = 4.0 * (analytic / 200_000.0).sqrt() + 1e-4;
            assert!(
                (empirical - analytic).abs() < tol,
                "at {v}: empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fault_maps_are_inclusive_across_voltages() {
        let f = field(50_000, 11);
        let low = f.fault_mask(Volt::new(0.36));
        let mid = f.fault_mask(Volt::new(0.42));
        let high = f.fault_mask(Volt::new(0.50));
        assert!(low.is_superset_of(&mid));
        assert!(mid.is_superset_of(&high));
        assert!(low.count() > mid.count());
        assert!(mid.count() >= high.count());
    }

    #[test]
    fn mask_count_matches_field_count() {
        let f = field(10_000, 3);
        let v = Volt::new(0.40);
        assert_eq!(f.fault_mask(v).count(), f.fault_count(v));
    }

    #[test]
    fn mask_get_agrees_with_is_faulty() {
        let f = field(1_000, 5);
        let v = Volt::new(0.38);
        let mask = f.fault_mask(v);
        for idx in 0..f.len() {
            assert_eq!(mask.get(idx), f.is_faulty(idx, v));
        }
    }

    #[test]
    fn high_voltage_has_no_faults() {
        let f = field(100_000, 9);
        // 0.60 V is ~6 sigma above the mean cell V_min.
        assert_eq!(f.fault_count(Volt::new(0.60)), 0);
    }

    #[test]
    fn different_seeds_give_different_dies() {
        let a = field(1_000, 1);
        let b = field(1_000, 2);
        assert_ne!(a, b);
        // But the same seed reproduces the same die (determinism for
        // Monte-Carlo repeatability).
        let a2 = field(1_000, 1);
        assert_eq!(a, a2);
    }

    #[test]
    fn mask_words_pack_little_endian_bit_order() {
        let f = field(130, 13);
        let v = Volt::new(0.34);
        let mask = f.fault_mask(v);
        for idx in 0..130 {
            let w = mask.words()[idx / 64];
            assert_eq!(w & (1 << (idx % 64)) != 0, mask.get(idx));
        }
    }

    #[test]
    fn fault_words_stream_matches_materialized_mask() {
        let f = field(1_000, 17);
        for mv in [340, 400, 460] {
            let v = Volt::from_millivolts(f64::from(mv));
            let streamed: Vec<u64> = f.fault_words(v).collect();
            assert_eq!(streamed, f.fault_mask(v).words());
        }
    }

    #[test]
    fn word_helpers_address_the_expected_bit() {
        assert_eq!(word_index(0), 0);
        assert_eq!(word_index(63), 0);
        assert_eq!(word_index(64), 1);
        assert_eq!(bit_mask(0), 1);
        assert_eq!(bit_mask(65), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn superset_requires_equal_lengths() {
        let a = field(100, 1).fault_mask(Volt::new(0.4));
        let b = field(101, 1).fault_mask(Volt::new(0.4));
        let _ = a.is_superset_of(&b);
    }
}
