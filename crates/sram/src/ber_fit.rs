//! Fitting measured bit-error-rate data to the Gaussian V_min model.
//!
//! The paper obtains `F(v)` "by fitting failure data measured across
//! different memory banks" (Sec. 5.1). Under the Gaussian cell-V_min model
//! `F(v) = Q((v - mu)/sigma)`, the probit transform `z = Q^{-1}(F)`
//! linearizes the curve: `v = mu + sigma * z`. This module performs that
//! probit regression by ordinary least squares, recovering a calibrated
//! [`VminFaultModel`] from `(voltage, BER)` measurements.

use crate::fault::{VminFaultModel, DEFAULT_READ_FLIP_PROBABILITY};
use crate::math::q_tail_inv;
use dante_circuit::units::Volt;

/// Error from [`fit_vmin_model`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitBerError {
    /// Fewer than two usable measurement points were provided.
    TooFewPoints {
        /// Number of usable points found.
        usable: usize,
    },
    /// A measured BER was outside `(0, 1)`.
    BerOutOfRange {
        /// The offending value.
        ber: f64,
    },
    /// The measurements have no voltage spread, so the slope is undefined.
    DegenerateSpread,
    /// The fitted sigma came out non-positive (BER increasing with voltage).
    NonPhysicalFit {
        /// The fitted (invalid) sigma in volts.
        sigma: f64,
    },
}

impl core::fmt::Display for FitBerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TooFewPoints { usable } => {
                write!(f, "need at least two measurement points, got {usable}")
            }
            Self::BerOutOfRange { ber } => {
                write!(f, "measured BER {ber} is outside (0, 1)")
            }
            Self::DegenerateSpread => write!(f, "measurements have no probit spread"),
            Self::NonPhysicalFit { sigma } => {
                write!(
                    f,
                    "fitted sigma {sigma} V is non-physical (BER must fall as V rises)"
                )
            }
        }
    }
}

impl std::error::Error for FitBerError {}

/// Fits a [`VminFaultModel`] to measured `(voltage, BER)` points by probit
/// regression.
///
/// Points with `BER == 0` are skipped (they carry no probit information —
/// the measurement saturated); any point with `BER < 0` or `BER >= 1` is an
/// error.
///
/// # Errors
///
/// Returns [`FitBerError`] if fewer than two usable points remain, a BER is
/// out of range, or the fit is degenerate/non-physical.
///
/// # Examples
///
/// ```
/// use dante_sram::ber_fit::fit_vmin_model;
/// use dante_sram::fault::VminFaultModel;
///
/// let truth = VminFaultModel::default_14nm();
/// let fitted = fit_vmin_model(&truth.measurement_points())?;
/// assert!((fitted.mu().volts() - truth.mu().volts()).abs() < 1e-3);
/// # Ok::<(), dante_sram::ber_fit::FitBerError>(())
/// ```
pub fn fit_vmin_model(points: &[(Volt, f64)]) -> Result<VminFaultModel, FitBerError> {
    let mut zs = Vec::new();
    let mut vs = Vec::new();
    for &(v, ber) in points {
        if ber == 0.0 {
            continue; // saturated measurement, no information
        }
        if !(0.0..1.0).contains(&ber) {
            return Err(FitBerError::BerOutOfRange { ber });
        }
        zs.push(q_tail_inv(ber));
        vs.push(v.volts());
    }
    if zs.len() < 2 {
        return Err(FitBerError::TooFewPoints { usable: zs.len() });
    }

    let n = zs.len() as f64;
    let mean_z = zs.iter().sum::<f64>() / n;
    let mean_v = vs.iter().sum::<f64>() / n;
    let var_z: f64 = zs.iter().map(|z| (z - mean_z).powi(2)).sum();
    if var_z < 1e-12 {
        return Err(FitBerError::DegenerateSpread);
    }
    let cov: f64 = zs
        .iter()
        .zip(&vs)
        .map(|(z, v)| (z - mean_z) * (v - mean_v))
        .sum();
    let sigma = cov / var_z;
    if sigma <= 0.0 {
        return Err(FitBerError::NonPhysicalFit { sigma });
    }
    let mu = mean_v - sigma * mean_z;
    Ok(VminFaultModel::new(
        Volt::new(mu),
        Volt::new(sigma),
        DEFAULT_READ_FLIP_PROBABILITY,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_the_generating_model() {
        let truth = VminFaultModel::default_14nm();
        let fitted = fit_vmin_model(&truth.measurement_points()).unwrap();
        assert!((fitted.mu().volts() - truth.mu().volts()).abs() < 2e-3);
        assert!((fitted.sigma().volts() - truth.sigma().volts()).abs() < 2e-3);
    }

    #[test]
    fn fit_tolerates_measurement_noise() {
        let truth = VminFaultModel::default_14nm();
        // Multiplicative noise on the BER, like die-to-die variation.
        let noisy: Vec<_> = truth
            .measurement_points()
            .into_iter()
            .enumerate()
            .map(|(i, (v, ber))| {
                let jitter = 1.0 + 0.2 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (v, (ber * jitter).min(0.999))
            })
            .collect();
        let fitted = fit_vmin_model(&noisy).unwrap();
        assert!((fitted.mu().volts() - truth.mu().volts()).abs() < 0.01);
        assert!((fitted.sigma().volts() - truth.sigma().volts()).abs() < 0.01);
    }

    #[test]
    fn zero_ber_points_are_skipped() {
        let truth = VminFaultModel::default_14nm();
        let mut pts = truth.measurement_points();
        pts.push((Volt::new(0.70), 0.0));
        pts.push((Volt::new(0.75), 0.0));
        let fitted = fit_vmin_model(&pts).unwrap();
        assert!((fitted.mu().volts() - truth.mu().volts()).abs() < 2e-3);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let pts = [(Volt::new(0.4), 0.1)];
        assert_eq!(
            fit_vmin_model(&pts),
            Err(FitBerError::TooFewPoints { usable: 1 })
        );
    }

    #[test]
    fn out_of_range_ber_is_an_error() {
        let pts = [(Volt::new(0.4), 0.1), (Volt::new(0.45), 1.5)];
        assert_eq!(
            fit_vmin_model(&pts),
            Err(FitBerError::BerOutOfRange { ber: 1.5 })
        );
    }

    #[test]
    fn increasing_ber_with_voltage_is_non_physical() {
        let pts = [(Volt::new(0.40), 0.001), (Volt::new(0.50), 0.1)];
        assert!(matches!(
            fit_vmin_model(&pts),
            Err(FitBerError::NonPhysicalFit { .. })
        ));
    }

    #[test]
    fn degenerate_spread_detected() {
        let pts = [(Volt::new(0.40), 0.01), (Volt::new(0.42), 0.01)];
        assert_eq!(fit_vmin_model(&pts), Err(FitBerError::DegenerateSpread));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FitBerError::TooFewPoints { usable: 0 };
        assert!(format!("{e}").contains("at least two"));
    }
}
