//! Sparse tail-sampled fault overlays: O(faulty bits) Monte-Carlo dies.
//!
//! A dense [`crate::fault_map::VminField`] draws a Gaussian V_min for
//! *every* cell of a die, even though at any operating voltage only the
//! upper tail of the distribution — `F(v) = Q((v - mu) / sigma)`, at most
//! ~1.4e-2 at 0.44 V and as little as 1e-9 near the top of the sweep — can
//! ever fault. A [`SparseOverlay`] samples only that tail: given a *floor
//! voltage* `v_floor` (the lowest voltage the sweep will evaluate), it draws
//! the faulty-at-floor cell set directly via geometric-gap Bernoulli
//! skipping (the count is exactly Binomial(bits, F(v_floor))-distributed)
//! and gives each faulty cell a V_min from the Gaussian tail above `v_floor`
//! via the inverse CDF, plus the paper's Bernoulli read-flip decision.
//!
//! The result is behaviorally interchangeable with a dense
//! [`FaultOverlay`] for any voltage `v >= v_floor` — same fault-count
//! distribution, same V_min distribution above the floor, same inclusivity
//! (the fault set at V1 is a superset of the fault set at V2 for V1 < V2,
//! because both filter one fixed V_min set by threshold) — at O(K) cost per
//! trial instead of O(bits), where `K ~ bits * F(v_floor)`.
//!
//! Voltages *below* the floor are a contract violation (those cells were
//! never sampled) and panic loudly; see [`SparseOverlay::assert_voltage`].

use crate::fault::VminFaultModel;
use crate::fault_map::{bit_mask, word_index};
use crate::math::{
    sample_bernoulli_indices_buffered, sample_bernoulli_indices_into, sample_unit_open,
    truncated_tail_normal,
};
use crate::storage::{CorruptionOverlay, FaultOverlay};
use dante_circuit::units::Volt;
use rand::Rng;

/// One faulty cell of a sparse overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseCell {
    /// Cell index within the packed bit image.
    pub index: u64,
    /// The cell's minimum reliable voltage, in volts (always above the
    /// overlay's floor).
    pub vmin: f32,
    /// Whether the cell's Bernoulli read-flip decision fired.
    pub flip: bool,
}

/// The smallest `f32` strictly greater than a positive finite `x`.
#[inline]
fn next_up(x: f32) -> f32 {
    f32::from_bits(x.to_bits() + 1)
}

/// A sparse fault overlay: only the cells faulty at the floor voltage, as
/// sorted `(index, vmin, flip)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseOverlay {
    bits: usize,
    v_floor: Volt,
    cells: Vec<SparseCell>,
}

impl SparseOverlay {
    /// Draws a fresh die of `bits` cells, keeping only the cells faulty at
    /// `v_floor`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below the model's
    /// data-retention voltage (where a fault *rate* is meaningless).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        bits: usize,
        model: &VminFaultModel,
        v_floor: Volt,
        rng: &mut R,
    ) -> Self {
        let mut indices = Vec::new();
        let mut cells = Vec::new();
        Self::sample_cells_into(bits, model, v_floor, rng, &mut indices, &mut cells);
        Self {
            bits,
            v_floor,
            cells,
        }
    }

    /// Draws the die deterministically from an explicit seed (the sparse
    /// counterpart of [`FaultOverlay::from_seed`]): the overlay is a pure
    /// function of `(bits, model, v_floor, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    #[must_use]
    pub fn from_seed(bits: usize, model: &VminFaultModel, v_floor: Volt, seed: u64) -> Self {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::sample(bits, model, v_floor, &mut rng)
    }

    /// The allocation-free sampling core: draws one die's faulty-at-floor
    /// cells into `cells` (cleared first), using `indices` as scratch for
    /// the Bernoulli index walk. Both buffers retain their capacity across
    /// calls, so a steady-state Monte-Carlo loop allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn sample_cells_into<R: Rng + ?Sized>(
        bits: usize,
        model: &VminFaultModel,
        v_floor: Volt,
        rng: &mut R,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
    ) {
        assert!(bits > 0, "a die needs at least one cell");
        // bit_error_rate both computes F(v_floor) and enforces the
        // data-retention lower bound with its own clear panic.
        let p_floor = model.bit_error_rate(v_floor);
        let (mu, sigma) = (model.mu().volts(), model.sigma().volts());
        let floor = v_floor.volts();
        let floor_f32 = floor as f32;
        let p_flip = model.read_flip_probability();
        sample_bernoulli_indices_into(bits, p_floor, rng, indices);
        cells.clear();
        cells.reserve(indices.len());
        for &index in indices.iter() {
            // The f64 draw is strictly above the floor; the f32 round can
            // land exactly on it, which would silently drop the cell from
            // its own floor voltage — nudge up one ULP instead.
            let mut vmin = truncated_tail_normal(mu, sigma, floor, rng) as f32;
            if vmin <= floor_f32 {
                vmin = next_up(floor_f32);
            }
            cells.push(SparseCell {
                index,
                vmin,
                flip: rng.gen_bool(p_flip),
            });
        }
    }

    /// The floor fast path of [`Self::sample_cells_into`]: same faulty-cell
    /// indices, same flip decisions, same RNG stream — but every cell's
    /// `vmin` is pinned one ULP above the floor instead of drawn from the
    /// Gaussian tail, eliding the inverse-CDF math (the dominant cost at
    /// deep floors, where nearly half the die can be in the tail).
    ///
    /// The elision is exact *only for a consumer that applies the overlay
    /// at precisely `v_floor`*: there every sampled cell satisfies
    /// `v < vmin` regardless of where in the tail its V_min landed, so the
    /// flip words are bit-identical to the slow path's. Anything that reads
    /// the V_min values themselves (fleet V_min quantiles, multi-voltage
    /// reuse of one overlay) must keep using [`Self::sample_cells_into`].
    ///
    /// Stream alignment: `truncated_tail_normal` consumes exactly one
    /// [`sample_unit_open`] draw per cell, so this path draws and discards
    /// the same uniform, keeping every subsequent `gen_bool` — and any
    /// caller continuing on the same RNG — bit-identical to the slow path.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn sample_cells_at_floor_into<R: Rng + Clone>(
        bits: usize,
        model: &VminFaultModel,
        v_floor: Volt,
        rng: &mut R,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
    ) {
        assert!(bits > 0, "a die needs at least one cell");
        let p_floor = model.bit_error_rate(v_floor);
        let floor_f32 = v_floor.volts() as f32;
        let p_flip = model.read_flip_probability();
        sample_bernoulli_indices_buffered(bits, p_floor, rng, indices);
        cells.clear();
        cells.reserve(indices.len());
        let vmin = next_up(floor_f32);
        for &index in indices.iter() {
            let _ = sample_unit_open(rng);
            cells.push(SparseCell {
                index,
                vmin,
                flip: rng.gen_bool(p_flip),
            });
        }
    }

    /// The streaming form of [`Self::sample_cells_at_floor_into`]: instead
    /// of materializing `SparseCell`s, groups the flip decisions word by
    /// word and calls `emit(word_index, mask)` for every 64-bit word with a
    /// non-zero flip mask, in ascending word order. `indices` still buffers
    /// the faulty-index walk (the slow path draws *all* gap uniforms before
    /// any per-cell draw, and matching that order exactly is what keeps the
    /// RNG stream bit-identical), but no cell vector is built or re-scanned
    /// — the hot Monte-Carlo corrupt loop reads each faulty index once.
    ///
    /// Same contract as the cell-building fast path: exact only for a
    /// consumer applying the overlay at precisely `v_floor`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn for_each_flip_word_at_floor<R: Rng + Clone>(
        bits: usize,
        model: &VminFaultModel,
        v_floor: Volt,
        rng: &mut R,
        indices: &mut Vec<u64>,
        mut emit: impl FnMut(usize, u64),
    ) {
        assert!(bits > 0, "a die needs at least one cell");
        let p_floor = model.bit_error_rate(v_floor);
        let p_flip = model.read_flip_probability();
        sample_bernoulli_indices_buffered(bits, p_floor, rng, indices);
        let mut word = usize::MAX;
        let mut mask = 0u64;
        for &index in indices.iter() {
            let _ = sample_unit_open(rng);
            let flip = rng.gen_bool(p_flip);
            let w = word_index(index as usize);
            if w != word {
                if mask != 0 {
                    emit(word, mask);
                }
                word = w;
                mask = 0;
            }
            if flip {
                mask |= bit_mask(index as usize);
            }
        }
        if mask != 0 {
            emit(word, mask);
        }
    }

    /// Extracts the sparse view of a dense overlay: exactly the dense die's
    /// cells faulty at `v_floor`, with their dense V_mins and flip
    /// decisions. Corrupts *identically* to the dense overlay at any
    /// `v >= v_floor` (the differential check in `dante-verify` pins this).
    #[must_use]
    pub fn from_dense(dense: &FaultOverlay, v_floor: Volt) -> Self {
        let floor_f32 = v_floor.volts() as f32;
        let flips = dense.flip_words();
        let cells = dense
            .vmins()
            .values()
            .iter()
            .enumerate()
            .filter(|&(_, &vmin)| floor_f32 < vmin)
            .map(|(idx, &vmin)| SparseCell {
                index: idx as u64,
                vmin,
                flip: flips[word_index(idx)] & bit_mask(idx) != 0,
            })
            .collect();
        Self {
            bits: dense.len(),
            v_floor,
            cells,
        }
    }

    /// Builds an overlay from pre-sampled cells (the zero-alloc hot path:
    /// sample into reused buffers, borrow them here only when an owned
    /// overlay is actually needed).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or any cell index is out of range or the
    /// cells are not strictly increasing by index.
    #[must_use]
    pub fn from_cells(bits: usize, v_floor: Volt, cells: Vec<SparseCell>) -> Self {
        assert!(bits > 0, "a die needs at least one cell");
        assert!(
            cells.windows(2).all(|w| w[0].index < w[1].index),
            "cells must be sorted by strictly increasing index"
        );
        if let Some(last) = cells.last() {
            assert!(
                (last.index as usize) < bits,
                "cell index {} out of range for {bits} bits",
                last.index
            );
        }
        Self {
            bits,
            v_floor,
            cells,
        }
    }

    /// The floor voltage this overlay was sampled for.
    #[must_use]
    pub fn v_floor(&self) -> Volt {
        self.v_floor
    }

    /// The sampled faulty-at-floor cells, sorted by index.
    #[must_use]
    pub fn cells(&self) -> &[SparseCell] {
        &self.cells
    }

    /// Checks that `v` is covered by this overlay.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the sampling floor: cells faulty only below
    /// `v_floor` were never drawn, so evaluating there would silently
    /// under-report faults. Resample the overlay with a lower floor instead.
    pub fn assert_voltage(&self, v: Volt) {
        assert!(
            v.volts() >= self.v_floor.volts(),
            "voltage {v} is below this sparse overlay's sampling floor {}: \
             cells faulty only below the floor were never sampled; \
             rebuild the overlay with a lower v_floor",
            self.v_floor
        );
    }

    /// Number of cells faulty at `v` (`v >= v_floor`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the floor.
    #[must_use]
    pub fn fault_count(&self, v: Volt) -> usize {
        self.assert_voltage(v);
        let vf = v.volts() as f32;
        self.cells.iter().filter(|c| vf < c.vmin).count()
    }

    /// Streams the non-zero corruption words at `v` as `(word index, mask)`
    /// pairs, grouping the sorted cells word by word — the lazily
    /// materialized per-voltage flip words.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the floor.
    pub fn for_each_corruption_word(&self, v: Volt, mut f: impl FnMut(usize, u64)) {
        self.assert_voltage(v);
        let vf = v.volts() as f32;
        let mut i = 0;
        while i < self.cells.len() {
            let w = word_index(self.cells[i].index as usize);
            let mut mask = 0u64;
            while i < self.cells.len() && word_index(self.cells[i].index as usize) == w {
                let c = &self.cells[i];
                if c.flip && vf < c.vmin {
                    mask |= bit_mask(c.index as usize);
                }
                i += 1;
            }
            if mask != 0 {
                f(w, mask);
            }
        }
    }

    /// Materializes the full corruption word vector at `v` into `out`
    /// (cleared and zero-filled to `words` words) — the scratch-buffer form
    /// the SEC-DED path needs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the floor or `words` is too short for the
    /// overlay's cells.
    pub fn corruption_words_into(&self, v: Volt, words: usize, out: &mut Vec<u64>) {
        assert!(
            words * 64 >= self.bits,
            "corruption buffer ({words} words) shorter than overlay ({} bits)",
            self.bits
        );
        out.clear();
        out.resize(words, 0);
        self.for_each_corruption_word(v, |w, mask| out[w] ^= mask);
    }
}

impl CorruptionOverlay for SparseOverlay {
    fn len(&self) -> usize {
        self.bits
    }

    fn flip_count(&self, v: Volt) -> usize {
        self.assert_voltage(v);
        let vf = v.volts() as f32;
        self.cells.iter().filter(|c| c.flip && vf < c.vmin).count()
    }

    fn apply(&self, words: &mut [u64], v: Volt) {
        let needed = self.bits.div_ceil(64);
        assert!(
            words.len() >= needed,
            "bit image ({} words) shorter than overlay ({needed} words)",
            words.len()
        );
        self.for_each_corruption_word(v, |w, mask| words[w] ^= mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> VminFaultModel {
        VminFaultModel::default_14nm()
    }

    #[test]
    fn from_seed_is_deterministic_and_sorted() {
        let floor = Volt::new(0.38);
        let a = SparseOverlay::from_seed(50_000, &model(), floor, 42);
        let b = SparseOverlay::from_seed(50_000, &model(), floor, 42);
        assert_eq!(a, b);
        assert!(a.cells().windows(2).all(|w| w[0].index < w[1].index));
        let c = SparseOverlay::from_seed(50_000, &model(), floor, 43);
        assert_ne!(a, c, "different seeds draw different dies");
    }

    #[test]
    fn every_sampled_cell_is_faulty_at_the_floor() {
        let floor = Volt::new(0.40);
        let o = SparseOverlay::from_seed(100_000, &model(), floor, 7);
        assert!(!o.cells().is_empty());
        assert_eq!(o.fault_count(floor), o.cells().len());
    }

    #[test]
    fn fault_sets_are_voltage_inclusive() {
        let floor = Volt::new(0.36);
        let o = SparseOverlay::from_seed(200_000, &model(), floor, 11);
        let mut prev = usize::MAX;
        for mv in [360, 400, 440, 480, 520] {
            let n = o.fault_count(Volt::from_millivolts(f64::from(mv)));
            assert!(n <= prev, "fault count rose with voltage at {mv} mV");
            prev = n;
        }
    }

    #[test]
    fn sampled_count_tracks_the_binomial_mean() {
        // E[K] = bits * F(v_floor); at 0.40 V, F ~ 1.15e-1... use 0.44 V
        // where F(0.44) ~ 1.39e-2 so 200k cells expect ~2780, sd ~52.
        let floor = Volt::new(0.44);
        let bits = 200_000;
        let expect = model().bit_error_rate(floor) * bits as f64;
        let sd = (expect * (1.0 - expect / bits as f64)).sqrt();
        let o = SparseOverlay::from_seed(bits, &model(), floor, 5);
        let k = o.cells().len() as f64;
        assert!(
            (k - expect).abs() < 5.0 * sd,
            "K = {k} vs expected {expect} (sd {sd})"
        );
    }

    #[test]
    fn from_dense_corrupts_identically_to_the_dense_overlay() {
        let dense = FaultOverlay::from_seed(4096, &model(), 99);
        let floor = Volt::new(0.36);
        let sparse = SparseOverlay::from_dense(&dense, floor);
        for mv in [360, 380, 420, 460, 540] {
            let v = Volt::from_millivolts(f64::from(mv));
            let mut a = vec![0u64; 64];
            let mut b = vec![0u64; 64];
            dense.apply(&mut a, v);
            CorruptionOverlay::apply(&sparse, &mut b, v);
            assert_eq!(a, b, "divergence at {mv} mV");
            assert_eq!(
                dense.flip_count(v),
                CorruptionOverlay::flip_count(&sparse, v)
            );
            assert_eq!(dense.vmins().fault_count(v), sparse.fault_count(v));
        }
    }

    #[test]
    fn corruption_words_into_matches_apply() {
        let floor = Volt::new(0.38);
        let o = SparseOverlay::from_seed(10_000, &model(), floor, 21);
        let v = Volt::new(0.40);
        let words = 10_000usize.div_ceil(64);
        let mut scattered = Vec::new();
        o.corruption_words_into(v, words, &mut scattered);
        let mut applied = vec![0u64; words];
        CorruptionOverlay::apply(&o, &mut applied, v);
        assert_eq!(scattered, applied);
        // Applying twice cancels (XOR overlay).
        CorruptionOverlay::apply(&o, &mut applied, v);
        assert!(applied.iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "below this sparse overlay's sampling floor")]
    fn voltages_below_the_floor_are_rejected() {
        let o = SparseOverlay::from_seed(1024, &model(), Volt::new(0.44), 1);
        let _ = o.fault_count(Volt::new(0.40));
    }

    #[test]
    #[should_panic(expected = "shorter than overlay")]
    fn apply_bounds_checked() {
        let o = SparseOverlay::from_seed(256, &model(), Volt::new(0.40), 2);
        let mut image = vec![0u64; 2];
        CorruptionOverlay::apply(&o, &mut image, Volt::new(0.40));
    }

    #[test]
    fn scratch_sampling_allocates_into_reused_buffers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut indices = Vec::new();
        let mut cells = Vec::new();
        SparseOverlay::sample_cells_into(
            50_000,
            &model(),
            Volt::new(0.40),
            &mut rng,
            &mut indices,
            &mut cells,
        );
        let first = cells.clone();
        assert!(!first.is_empty());
        let cap = cells.capacity();
        SparseOverlay::sample_cells_into(
            50_000,
            &model(),
            Volt::new(0.40),
            &mut rng,
            &mut indices,
            &mut cells,
        );
        assert_ne!(first, cells, "fresh randomness per call");
        assert!(cells.capacity() >= cap.min(cells.len()));
        // from_cells round-trips the buffers into an owned overlay.
        let o = SparseOverlay::from_cells(50_000, Volt::new(0.40), cells.clone());
        assert_eq!(o.cells(), cells.as_slice());
    }

    #[test]
    fn floor_fast_path_matches_slow_path_flips_and_stream() {
        // Across floors spanning deep (p ~ 0.3) to shallow (p ~ 1e-4)
        // tails: identical indices and flips, identical corruption words at
        // the floor, and an identically positioned RNG stream afterwards.
        for &mv in &[360u32, 400, 440, 480, 520] {
            let floor = Volt::new(f64::from(mv) / 1000.0);
            for seed in 0..4u64 {
                let mut slow_rng = StdRng::seed_from_u64(seed);
                let mut fast_rng = StdRng::seed_from_u64(seed);
                let (mut si, mut sc) = (Vec::new(), Vec::new());
                let (mut fi, mut fc) = (Vec::new(), Vec::new());
                SparseOverlay::sample_cells_into(
                    20_000,
                    &model(),
                    floor,
                    &mut slow_rng,
                    &mut si,
                    &mut sc,
                );
                SparseOverlay::sample_cells_at_floor_into(
                    20_000,
                    &model(),
                    floor,
                    &mut fast_rng,
                    &mut fi,
                    &mut fc,
                );
                assert_eq!(si, fi, "faulty index walk diverged at {mv} mV");
                assert_eq!(sc.len(), fc.len());
                for (s, f) in sc.iter().zip(fc.iter()) {
                    assert_eq!(s.index, f.index);
                    assert_eq!(s.flip, f.flip, "flip diverged at {mv} mV");
                    assert!(f.vmin > floor.volts() as f32);
                }
                let words = 20_000usize.div_ceil(64);
                let slow = SparseOverlay::from_cells(20_000, floor, sc);
                let fast = SparseOverlay::from_cells(20_000, floor, fc);
                let (mut sw, mut fw) = (Vec::new(), Vec::new());
                slow.corruption_words_into(floor, words, &mut sw);
                fast.corruption_words_into(floor, words, &mut fw);
                assert_eq!(sw, fw, "corruption words diverged at {mv} mV");
                // The streams stay aligned for any caller drawing further.
                assert_eq!(slow_rng.gen::<u64>(), fast_rng.gen::<u64>());
            }
        }
    }

    #[test]
    fn streaming_flip_words_match_cell_building_fast_path() {
        for &mv in &[360u32, 440, 500] {
            let floor = Volt::new(f64::from(mv) / 1000.0);
            for seed in 0..3u64 {
                let mut cell_rng = StdRng::seed_from_u64(seed);
                let mut word_rng = StdRng::seed_from_u64(seed);
                let (mut ci, mut cc) = (Vec::new(), Vec::new());
                SparseOverlay::sample_cells_at_floor_into(
                    20_000,
                    &model(),
                    floor,
                    &mut cell_rng,
                    &mut ci,
                    &mut cc,
                );
                let words = 20_000usize.div_ceil(64);
                let mut expected = vec![0u64; words];
                for c in &cc {
                    if c.flip {
                        expected[(c.index / 64) as usize] |= 1u64 << (c.index % 64);
                    }
                }
                let mut wi = Vec::new();
                let mut streamed = vec![0u64; words];
                let mut last = None;
                SparseOverlay::for_each_flip_word_at_floor(
                    20_000,
                    &model(),
                    floor,
                    &mut word_rng,
                    &mut wi,
                    |w, mask| {
                        assert_ne!(mask, 0, "only non-zero masks are emitted");
                        assert!(last.is_none_or(|p| w > p), "ascending word order");
                        last = Some(w);
                        streamed[w] = mask;
                    },
                );
                assert_eq!(ci, wi, "index walk diverged at {mv} mV");
                assert_eq!(expected, streamed, "flip words diverged at {mv} mV");
                assert_eq!(cell_rng.gen::<u64>(), word_rng.gen::<u64>());
            }
        }
    }

    #[test]
    fn high_floor_yields_an_empty_overlay() {
        // F(0.60 V) ~ Q(6.2) ~ 3e-10: 10k cells are virtually always clean.
        let o = SparseOverlay::from_seed(10_000, &model(), Volt::new(0.60), 3);
        assert!(o.cells().is_empty());
        assert_eq!(CorruptionOverlay::flip_count(&o, Volt::new(0.60)), 0);
        assert_eq!(o.len(), 10_000);
        assert!(
            !o.is_empty(),
            "is_empty reports zero *cells*, not zero faults"
        );
    }
}
