//! Bit-accurate faulty SRAM storage.
//!
//! A [`FaultyMacro`] holds real data bits plus one Monte-Carlo die instance
//! ([`VminField`]) and a *flip field*: the paper's per-cell Bernoulli(p)
//! decision of whether a faulty cell actually manifests as a bit flip when
//! read ("the probability of a bit flip in a faulty bitcell is p, assumed to
//! be 0.5 by default"). Reading a word at supply voltage `v` XORs the stored
//! data with `faulty_at(v) & flips` — so a given die corrupts
//! deterministically, and Monte-Carlo variation comes from regenerating the
//! die, exactly as in the paper's 100-fault-map methodology.
//!
//! [`FaultOverlay`] exposes the same corruption as a bulk operation over
//! packed `u64` words, which the higher-level crates use to corrupt
//! quantized weight tensors without materializing a full SRAM.

use crate::fault::VminFaultModel;
use crate::fault_map::VminField;
use crate::geometry::MacroGeometry;
use dante_circuit::units::Volt;
use rand::Rng;

/// Behavior shared by the dense [`FaultOverlay`] and the sparse
/// [`crate::sparse::SparseOverlay`]: one Monte-Carlo die, applicable to a
/// packed bit image at a chosen supply voltage. Code written against this
/// trait is agnostic to *how* the die was sampled — per-cell Gaussian draws
/// or tail-only sparse sampling.
pub trait CorruptionOverlay {
    /// Number of cells the overlay covers.
    fn len(&self) -> usize;

    /// Whether the overlay covers zero cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of bits that would flip at voltage `v` (faulty *and* the
    /// read-flip decision fired).
    fn flip_count(&self, v: Volt) -> usize;

    /// XORs the corruption at voltage `v` into a packed bit image, in
    /// place and without allocating.
    fn apply(&self, words: &mut [u64], v: Volt);
}

/// Read/write counters for one macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Number of word reads served.
    pub reads: u64,
    /// Number of word writes served.
    pub writes: u64,
}

impl AccessStats {
    /// Total accesses (reads + writes).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A reusable fault overlay: one die's V_min field plus its read-flip
/// decisions, applicable to any packed bit image.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOverlay {
    vmins: VminField,
    flips: Vec<u64>,
}

impl FaultOverlay {
    /// Draws a fresh die of `bits` cells from `model`, including the
    /// per-cell flip decisions at the model's read-flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(bits: usize, model: &VminFaultModel, rng: &mut R) -> Self {
        let vmins = VminField::generate(bits, model, rng);
        let p = model.read_flip_probability();
        let mut flips = vec![0u64; bits.div_ceil(64)];
        for (idx, word) in flips.iter_mut().enumerate() {
            for bit in 0..64 {
                if idx * 64 + bit < bits && rng.gen_bool(p) {
                    *word |= 1 << bit;
                }
            }
        }
        Self { vmins, flips }
    }

    /// Draws the die deterministically from an explicit seed: the overlay is
    /// a pure function of `(bits, model, seed)`, so Monte-Carlo trials can
    /// regenerate their die from a derived seed on any thread in any order.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn from_seed(bits: usize, model: &VminFaultModel, seed: u64) -> Self {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::generate(bits, model, &mut rng)
    }

    /// Number of cells covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vmins.len()
    }

    /// Whether the overlay covers zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vmins.is_empty()
    }

    /// The underlying V_min field.
    #[must_use]
    pub fn vmins(&self) -> &VminField {
        &self.vmins
    }

    /// The packed per-cell read-flip decisions (bit `i % 64` of word
    /// `i / 64`), voltage-independent; the corruption at `v` is
    /// `fault_mask(v) & flips`.
    #[must_use]
    pub fn flip_words(&self) -> &[u64] {
        &self.flips
    }

    /// Streams the corruption words at voltage `v` — bit `i` set iff cell
    /// `i` is faulty at `v` *and* its flip decision fired — one 64-bit word
    /// at a time, without materializing a mask or a `Vec`.
    pub fn corruption_iter(&self, v: Volt) -> impl Iterator<Item = u64> + '_ {
        self.vmins
            .fault_words(v)
            .zip(&self.flips)
            .map(|(f, fl)| f & fl)
    }

    /// The corruption mask at voltage `v` as an owned vector (allocating
    /// convenience form of [`Self::corruption_iter`]).
    #[must_use]
    pub fn corruption_words(&self, v: Volt) -> Vec<u64> {
        self.corruption_iter(v).collect()
    }

    /// Materializes the corruption words at `v` into a caller-provided
    /// scratch buffer (cleared first, capacity reused) — the zero-realloc
    /// form the Monte-Carlo hot path uses.
    pub fn corruption_words_into(&self, v: Volt, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.corruption_iter(v));
    }

    /// Applies the corruption at voltage `v` in place to a packed bit image,
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than the overlay requires.
    pub fn apply(&self, words: &mut [u64], v: Volt) {
        let needed = self.flips.len();
        assert!(
            words.len() >= needed,
            "bit image ({} words) shorter than overlay ({needed} words)",
            words.len()
        );
        for (w, c) in words.iter_mut().zip(self.corruption_iter(v)) {
            *w ^= c;
        }
    }

    /// Number of bits that would flip at voltage `v`: a single `count_ones`
    /// pass over the streamed corruption words (the partial final word is
    /// already masked by the fault-word stream), no allocation.
    #[must_use]
    pub fn flip_count(&self, v: Volt) -> usize {
        self.corruption_iter(v)
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

impl CorruptionOverlay for FaultOverlay {
    fn len(&self) -> usize {
        self.vmins.len()
    }

    fn flip_count(&self, v: Volt) -> usize {
        Self::flip_count(self, v)
    }

    fn apply(&self, words: &mut [u64], v: Volt) {
        Self::apply(self, words, v);
    }
}

/// One SRAM macro with data, a fault die, and access statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyMacro {
    geometry: MacroGeometry,
    data: Vec<u64>,
    overlay: Option<FaultOverlay>,
    stats: AccessStats,
}

impl FaultyMacro {
    /// Creates a macro with a freshly drawn fault die.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        geometry: MacroGeometry,
        model: &VminFaultModel,
        rng: &mut R,
    ) -> Self {
        let overlay = FaultOverlay::generate(geometry.capacity_bits(), model, rng);
        Self {
            geometry,
            data: vec![0; geometry.words()],
            overlay: Some(overlay),
            stats: AccessStats::default(),
        }
    }

    /// Creates a macro whose die is drawn deterministically from `seed`
    /// (see [`FaultOverlay::from_seed`]).
    #[must_use]
    pub fn from_seed(geometry: MacroGeometry, model: &VminFaultModel, seed: u64) -> Self {
        Self {
            geometry,
            data: vec![0; geometry.words()],
            overlay: Some(FaultOverlay::from_seed(
                geometry.capacity_bits(),
                model,
                seed,
            )),
            stats: AccessStats::default(),
        }
    }

    /// Creates an ideal, fault-free macro (for reference runs).
    #[must_use]
    pub fn fault_free(geometry: MacroGeometry) -> Self {
        Self {
            geometry,
            data: vec![0; geometry.words()],
            overlay: None,
            stats: AccessStats::default(),
        }
    }

    /// The macro geometry.
    #[must_use]
    pub fn geometry(&self) -> MacroGeometry {
        self.geometry
    }

    /// Access statistics so far.
    #[must_use]
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the access counters.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    fn word_mask(&self) -> u64 {
        if self.geometry.bits_per_word() == 64 {
            u64::MAX
        } else {
            (1u64 << self.geometry.bits_per_word()) - 1
        }
    }

    /// Writes a word. Bits beyond the word width are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn write(&mut self, word: usize, value: u64) {
        assert!(word < self.geometry.words(), "word {word} out of range");
        self.data[word] = value & self.word_mask();
        self.stats.writes += 1;
    }

    /// Reads a word at effective supply voltage `v`: faulty cells whose flip
    /// decision fired return corrupted bits.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    pub fn read(&mut self, word: usize, v: Volt) -> u64 {
        assert!(word < self.geometry.words(), "word {word} out of range");
        self.stats.reads += 1;
        let raw = self.data[word];
        let Some(overlay) = &self.overlay else {
            return raw;
        };
        let bpw = self.geometry.bits_per_word();
        let mut out = raw;
        let base = word * bpw;
        // Cells are indexed row-major; fetch this word's slice of the
        // corruption mask.
        for bit in 0..bpw {
            let idx = base + bit;
            if overlay.vmins().is_faulty(idx, v) && overlay.flips[idx / 64] & (1 << (idx % 64)) != 0
            {
                out ^= 1 << bit;
            }
        }
        out & self.word_mask()
    }

    /// Reads the stored word with no fault injection (debug/reference).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    pub fn read_reliable(&self, word: usize) -> u64 {
        assert!(word < self.geometry.words(), "word {word} out of range");
        self.data[word]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_macro(seed: u64) -> FaultyMacro {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultyMacro::new(
            MacroGeometry::dante_4kb(),
            &VminFaultModel::default_14nm(),
            &mut rng,
        )
    }

    #[test]
    fn reads_are_clean_at_high_voltage() {
        let mut m = test_macro(1);
        for w in 0..512 {
            m.write(w, 0xDEAD_BEEF_CAFE_F00D ^ w as u64);
        }
        for w in 0..512 {
            assert_eq!(m.read(w, Volt::new(0.60)), 0xDEAD_BEEF_CAFE_F00D ^ w as u64);
        }
    }

    #[test]
    fn reads_corrupt_at_low_voltage_at_roughly_model_rate() {
        let mut m = test_macro(2);
        for w in 0..512 {
            m.write(w, 0);
        }
        let v = Volt::new(0.40);
        let mut flipped = 0usize;
        for w in 0..512 {
            flipped += m.read(w, v).count_ones() as usize;
        }
        let expected = VminFaultModel::default_14nm().bit_flip_rate(v) * 32_768.0;
        // Loose 4-sigma binomial band.
        let tol = 4.0 * expected.sqrt() + 5.0;
        assert!(
            ((flipped as f64) - expected).abs() < tol,
            "flipped {flipped} vs expected {expected}"
        );
    }

    #[test]
    fn corruption_is_deterministic_per_die() {
        let mut m = test_macro(3);
        m.write(7, 0x1234_5678_9ABC_DEF0);
        let v = Volt::new(0.38);
        let a = m.read(7, v);
        let b = m.read(7, v);
        assert_eq!(a, b, "same die must corrupt the same way on every read");
    }

    #[test]
    fn fault_free_macro_never_corrupts() {
        let mut m = FaultyMacro::fault_free(MacroGeometry::dante_4kb());
        m.write(0, u64::MAX);
        assert_eq!(m.read(0, Volt::new(0.30)), u64::MAX);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut m = test_macro(4);
        m.write(0, 1);
        m.write(1, 2);
        let _ = m.read(0, Volt::new(0.6));
        assert_eq!(
            m.stats(),
            AccessStats {
                reads: 1,
                writes: 2
            }
        );
        assert_eq!(m.stats().total(), 3);
        m.reset_stats();
        assert_eq!(m.stats().total(), 0);
    }

    #[test]
    fn narrow_words_mask_high_bits() {
        let mut m = FaultyMacro::fault_free(MacroGeometry::new(4, 16));
        m.write(0, 0xFFFF_FFFF);
        assert_eq!(m.read_reliable(0), 0xFFFF);
    }

    #[test]
    fn overlay_apply_matches_flip_count() {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(5);
        let overlay = FaultOverlay::generate(4096, &model, &mut rng);
        let v = Volt::new(0.36);
        let mut image = vec![0u64; 64];
        overlay.apply(&mut image, v);
        let set: usize = image.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(set, overlay.flip_count(v));
        // Applying twice cancels (XOR overlay).
        overlay.apply(&mut image, v);
        assert!(image.iter().all(|&w| w == 0));
    }

    #[test]
    fn overlay_flip_count_is_about_half_fault_count() {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(6);
        let overlay = FaultOverlay::generate(100_000, &model, &mut rng);
        let v = Volt::new(0.38);
        let faults = overlay.vmins().fault_count(v);
        let flips = overlay.flip_count(v);
        let ratio = flips as f64 / faults as f64;
        assert!(
            (0.42..=0.58).contains(&ratio),
            "flip/fault ratio {ratio} should be ~0.5 (p = 0.5)"
        );
    }

    #[test]
    fn corruption_words_into_reuses_the_buffer() {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(9);
        let overlay = FaultOverlay::generate(4096, &model, &mut rng);
        let v = Volt::new(0.38);
        let mut buf = vec![u64::MAX; 3]; // stale garbage must be cleared
        overlay.corruption_words_into(v, &mut buf);
        assert_eq!(buf, overlay.corruption_words(v));
        let streamed: Vec<u64> = overlay.corruption_iter(v).collect();
        assert_eq!(buf, streamed);
    }

    #[test]
    fn trait_object_form_matches_inherent_methods() {
        let model = VminFaultModel::default_14nm();
        let overlay = FaultOverlay::from_seed(2048, &model, 77);
        let dyn_overlay: &dyn CorruptionOverlay = &overlay;
        let v = Volt::new(0.40);
        assert_eq!(dyn_overlay.len(), 2048);
        assert!(!dyn_overlay.is_empty());
        assert_eq!(dyn_overlay.flip_count(v), overlay.flip_count(v));
        let mut a = vec![0u64; 32];
        let mut b = vec![0u64; 32];
        dyn_overlay.apply(&mut a, v);
        overlay.apply(&mut b, v);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_bounds_checked() {
        let mut m = test_macro(7);
        let _ = m.read(512, Volt::new(0.5));
    }

    #[test]
    #[should_panic(expected = "shorter than overlay")]
    fn overlay_apply_bounds_checked() {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(8);
        let overlay = FaultOverlay::generate(256, &model, &mut rng);
        let mut image = vec![0u64; 2];
        overlay.apply(&mut image, Volt::new(0.4));
    }
}
