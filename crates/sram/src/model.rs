//! Pluggable fault models: the versioned spec layer above the Gaussian
//! cell-V_min workhorse of [`crate::fault`].
//!
//! The paper (and the original reproduction stack) assumes i.i.d. Gaussian
//! per-cell V_min. MoRS-style measurements of real reduced-voltage SRAMs
//! show two further effects this module captures:
//!
//! * **spatially correlated bursts** — faults cluster along rows and
//!   columns of the physical array rather than falling independently per
//!   cell ([`FaultModel::CorrelatedBurst`]);
//! * **chip-to-chip variation** — each die's `(mu, sigma)` is itself a
//!   draw from a hyper-distribution, so V_min varies strongly across a
//!   fleet ([`FaultModel::ChipVariation`]).
//!
//! A [`FaultModel`] is a *spec*: a sealed enum with integral
//! (millivolt/ppm) parameters so it derives `Eq + Hash` and has an
//! injective, versioned canonical encoding ([`FaultModel::canonical_token`])
//! suitable for content-addressed caching. Resolving a spec against a die
//! seed ([`FaultModel::resolve_die`]) yields a [`DieFaultModel`] — the
//! sampleable per-die form. The Gaussian resolution path is **byte-for-byte
//! identical** to the pre-refactor hard-wired [`VminFaultModel`] pipeline:
//! it executes exactly the same `StdRng::seed_from_u64` +
//! [`SparseOverlay::sample_cells_into`] call sequence, so every golden
//! record and cache key predating this layer stays valid.

use crate::fault::{VminFaultModel, V_DATA_RETENTION};
use crate::geometry::MacroGeometry;
use crate::math::{q_tail, sample_bernoulli_indices_into, truncated_tail_normal};
use crate::sparse::{SparseCell, SparseOverlay};
use dante_circuit::units::Volt;
use dante_sim::seed::{derive_seed, site};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Anything that exposes a marginal (array-average) bit error rate at a
/// supply voltage — the quantity the closed-form yield expressions of
/// [`crate::yield_model`] are written against. Implemented by the direct
/// Gaussian handle, by fault-model specs, and by resolved dies, so yield
/// code is agnostic to which layer it is handed.
pub trait CellFaultRate {
    /// Probability that a uniformly chosen cell of the array is faulty at
    /// supply voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the data-retention voltage.
    fn marginal_ber(&self, v: Volt) -> f64;
}

impl CellFaultRate for VminFaultModel {
    fn marginal_ber(&self, v: Volt) -> f64 {
        self.bit_error_rate(v)
    }
}

/// Millivolt parameter as a [`Volt`]. `352 mV -> 0.352 V` is exact: the
/// division of two exactly-representable values rounds to the nearest
/// `f64`, which is the same value the `0.352` literal denotes.
fn mv(millivolts: u32) -> Volt {
    Volt::from_millivolts(f64::from(millivolts))
}

/// Parts-per-million parameter as a probability. `500_000 ppm -> 0.5`
/// exactly.
fn ppm(parts: u32) -> f64 {
    f64::from(parts) / 1e6
}

/// Default `mu` of the calibrated 14nm model, in millivolts.
pub const DEFAULT_MU_MV: u32 = 352;
/// Default `sigma` of the calibrated 14nm model, in millivolts.
pub const DEFAULT_SIGMA_MV: u32 = 40;
/// Default read-flip probability, in parts per million (`0.5`).
pub const DEFAULT_FLIP_PPM: u32 = 500_000;

/// A versioned, cache-keyable fault-model spec.
///
/// All parameters are integral (millivolts / parts-per-million), so the
/// enum derives `Eq + Hash` and its canonical encoding is injective without
/// any float-formatting ambiguity. The default value is the spec form of
/// [`VminFaultModel::default_14nm`] — bit-identical once resolved.
///
/// # Examples
///
/// ```
/// use dante_sram::model::FaultModel;
/// use dante_sram::fault::VminFaultModel;
///
/// let spec = FaultModel::default();
/// assert!(spec.is_default());
/// assert_eq!(spec.base_gaussian(), VminFaultModel::default_14nm());
/// assert_eq!(
///     spec.canonical_token(),
///     "gaussian.v1(mu=352,sigma=40,flip=500000)"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// The paper's i.i.d. Gaussian cell-V_min model: every cell of every
    /// die draws `v_c ~ N(mu, sigma)` independently.
    Gaussian {
        /// Mean cell V_min, in millivolts.
        mu_mv: u32,
        /// Cell V_min standard deviation, in millivolts.
        sigma_mv: u32,
        /// Read-flip probability of a faulty cell, in parts per million.
        flip_ppm: u32,
    },
    /// Spatially correlated row/column bursts on top of the i.i.d.
    /// Gaussian background, laid out against the chip's
    /// [`MacroGeometry::dante_4kb`] bit-index mapping: a *row* is one
    /// 64-bit word, a *column* is one bit position within a
    /// 512-word macro tile. Weak rows/columns draw their cells' V_min from
    /// the Gaussian shifted up by `shift_mv`, so faults cluster along them.
    CorrelatedBurst {
        /// Background mean cell V_min, in millivolts.
        mu_mv: u32,
        /// Background cell V_min standard deviation, in millivolts.
        sigma_mv: u32,
        /// Read-flip probability of a faulty cell, in parts per million.
        flip_ppm: u32,
        /// Probability that a 64-bit row (word) is weak, in ppm.
        row_weak_ppm: u32,
        /// Probability that a bit column of a 512-word macro tile is weak,
        /// in ppm.
        col_weak_ppm: u32,
        /// Upward V_min shift of weak cells, in millivolts.
        shift_mv: u32,
    },
    /// Chip-to-chip variation: each die draws its own `(mu, sigma)` from a
    /// hyper-distribution (`mu ~ N(mu, mu_spread)`,
    /// `sigma ~ N(sigma, sigma * sigma_spread_pct / 100)`) via the
    /// counter-seeded derivation, then behaves as an i.i.d. Gaussian die.
    ChipVariation {
        /// Hyper-mean of the per-die `mu`, in millivolts.
        mu_mv: u32,
        /// Hyper-mean of the per-die `sigma`, in millivolts.
        sigma_mv: u32,
        /// Read-flip probability of a faulty cell, in parts per million.
        flip_ppm: u32,
        /// Standard deviation of the per-die `mu` draw, in millivolts.
        mu_spread_mv: u32,
        /// Standard deviation of the per-die `sigma` draw, as a percentage
        /// of `sigma_mv`.
        sigma_spread_pct: u32,
    },
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::gaussian_default()
    }
}

impl FaultModel {
    /// The spec form of the calibrated 14nm Gaussian
    /// ([`VminFaultModel::default_14nm`]).
    #[must_use]
    pub fn gaussian_default() -> Self {
        Self::Gaussian {
            mu_mv: DEFAULT_MU_MV,
            sigma_mv: DEFAULT_SIGMA_MV,
            flip_ppm: DEFAULT_FLIP_PPM,
        }
    }

    /// A representative correlated-burst model over the default Gaussian
    /// background: 0.2% of rows and 0.1% of macro-tile columns weak, weak
    /// cells shifted up by 120 mV.
    #[must_use]
    pub fn burst_default() -> Self {
        Self::CorrelatedBurst {
            mu_mv: DEFAULT_MU_MV,
            sigma_mv: DEFAULT_SIGMA_MV,
            flip_ppm: DEFAULT_FLIP_PPM,
            row_weak_ppm: 2_000,
            col_weak_ppm: 1_000,
            shift_mv: 120,
        }
    }

    /// A representative chip-variation model around the default Gaussian:
    /// per-die `mu` spread of 15 mV, per-die `sigma` spread of 10%.
    #[must_use]
    pub fn chip_variation_default() -> Self {
        Self::ChipVariation {
            mu_mv: DEFAULT_MU_MV,
            sigma_mv: DEFAULT_SIGMA_MV,
            flip_ppm: DEFAULT_FLIP_PPM,
            mu_spread_mv: 15,
            sigma_spread_pct: 10,
        }
    }

    /// Whether this spec is the default Gaussian — the condition under
    /// which higher layers keep their pre-fault-model cache-key encodings.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == Self::gaussian_default()
    }

    /// The base (background / hyper-mean) Gaussian of any variant.
    ///
    /// For the default spec this equals [`VminFaultModel::default_14nm`]
    /// bit-for-bit (pinned by test), which is what keeps the Gaussian
    /// resolution path byte-identical.
    #[must_use]
    pub fn base_gaussian(&self) -> VminFaultModel {
        let (mu_mv, sigma_mv, flip_ppm) = match *self {
            Self::Gaussian {
                mu_mv,
                sigma_mv,
                flip_ppm,
            }
            | Self::CorrelatedBurst {
                mu_mv,
                sigma_mv,
                flip_ppm,
                ..
            }
            | Self::ChipVariation {
                mu_mv,
                sigma_mv,
                flip_ppm,
                ..
            } => (mu_mv, sigma_mv, flip_ppm),
        };
        VminFaultModel::new(mv(mu_mv), mv(sigma_mv), ppm(flip_ppm))
    }

    /// Validates the spec's bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        let (mu_mv, sigma_mv, flip_ppm) = match *self {
            Self::Gaussian {
                mu_mv,
                sigma_mv,
                flip_ppm,
            }
            | Self::CorrelatedBurst {
                mu_mv,
                sigma_mv,
                flip_ppm,
                ..
            }
            | Self::ChipVariation {
                mu_mv,
                sigma_mv,
                flip_ppm,
                ..
            } => (mu_mv, sigma_mv, flip_ppm),
        };
        if !(300..=600).contains(&mu_mv) {
            return Err(format!("fault model mu = {mu_mv} mV outside 300..=600"));
        }
        if !(1..=200).contains(&sigma_mv) {
            return Err(format!("fault model sigma = {sigma_mv} mV outside 1..=200"));
        }
        if !(1..=1_000_000).contains(&flip_ppm) {
            return Err(format!(
                "fault model flip probability = {flip_ppm} ppm outside 1..=1000000"
            ));
        }
        match *self {
            Self::Gaussian { .. } => Ok(()),
            Self::CorrelatedBurst {
                row_weak_ppm,
                col_weak_ppm,
                shift_mv,
                ..
            } => {
                if row_weak_ppm > 100_000 {
                    return Err(format!(
                        "weak-row rate = {row_weak_ppm} ppm above 100000 (10%)"
                    ));
                }
                if col_weak_ppm > 100_000 {
                    return Err(format!(
                        "weak-column rate = {col_weak_ppm} ppm above 100000 (10%)"
                    ));
                }
                if row_weak_ppm == 0 && col_weak_ppm == 0 {
                    return Err("a burst model needs a non-zero row or column rate".into());
                }
                if !(1..=300).contains(&shift_mv) {
                    return Err(format!("burst shift = {shift_mv} mV outside 1..=300"));
                }
                Ok(())
            }
            Self::ChipVariation {
                mu_spread_mv,
                sigma_spread_pct,
                ..
            } => {
                if !(1..=100).contains(&mu_spread_mv) {
                    return Err(format!("mu spread = {mu_spread_mv} mV outside 1..=100"));
                }
                if sigma_spread_pct > 50 {
                    return Err(format!("sigma spread = {sigma_spread_pct}% above 50%"));
                }
                Ok(())
            }
        }
    }

    /// The versioned canonical encoding of this spec: variant-tagged,
    /// every parameter printed, so the mapping spec -> token is injective.
    /// This is the `fault=` component of higher-level cache keys.
    #[must_use]
    pub fn canonical_token(&self) -> String {
        match *self {
            Self::Gaussian {
                mu_mv,
                sigma_mv,
                flip_ppm,
            } => format!("gaussian.v1(mu={mu_mv},sigma={sigma_mv},flip={flip_ppm})"),
            Self::CorrelatedBurst {
                mu_mv,
                sigma_mv,
                flip_ppm,
                row_weak_ppm,
                col_weak_ppm,
                shift_mv,
            } => format!(
                "burst.v1(mu={mu_mv},sigma={sigma_mv},flip={flip_ppm},\
                 row={row_weak_ppm},col={col_weak_ppm},shift={shift_mv})"
            ),
            Self::ChipVariation {
                mu_mv,
                sigma_mv,
                flip_ppm,
                mu_spread_mv,
                sigma_spread_pct,
            } => format!(
                "chip.v1(mu={mu_mv},sigma={sigma_mv},flip={flip_ppm},\
                 dmu={mu_spread_mv},dsig={sigma_spread_pct})"
            ),
        }
    }

    /// Resolves the spec against a die seed into the sampleable per-die
    /// form.
    ///
    /// * `Gaussian` resolves to the same [`VminFaultModel`] for every die
    ///   and consumes no randomness.
    /// * `ChipVariation` draws the die's `(mu, sigma)` profile from the
    ///   hyper-distribution via `derive_seed(die_seed, CHIP_PROFILE, 0)`,
    ///   then behaves as a Gaussian die.
    /// * `CorrelatedBurst` carries its burst parameters through; the weak
    ///   row/column sets are drawn per overlay (they are a property of each
    ///   physical array instance).
    #[must_use]
    pub fn resolve_die(&self, die_seed: u64) -> DieFaultModel {
        match *self {
            Self::Gaussian { .. } => DieFaultModel::Gaussian(self.base_gaussian()),
            Self::CorrelatedBurst {
                row_weak_ppm,
                col_weak_ppm,
                shift_mv,
                ..
            } => DieFaultModel::CorrelatedBurst(BurstDie {
                base: self.base_gaussian(),
                row_weak: ppm(row_weak_ppm),
                col_weak: ppm(col_weak_ppm),
                shift: mv(shift_mv),
            }),
            Self::ChipVariation {
                mu_mv,
                sigma_mv,
                flip_ppm,
                mu_spread_mv,
                sigma_spread_pct,
            } => {
                let mut rng = StdRng::seed_from_u64(derive_seed(die_seed, site::CHIP_PROFILE, 0));
                let unit = Normal::new(0.0, 1.0).expect("unit normal is valid");
                let z_mu: f64 = unit.sample(&mut rng);
                let z_sigma: f64 = unit.sample(&mut rng);
                let sigma0 = mv(sigma_mv).volts();
                // Clamps keep a pathological tail draw physical: mu stays
                // above data retention, sigma stays positive.
                let mu = (mv(mu_mv).volts() + mv(mu_spread_mv).volts() * z_mu)
                    .max(V_DATA_RETENTION.volts() + 0.01);
                let sigma = (sigma0 * (1.0 + f64::from(sigma_spread_pct) / 100.0 * z_sigma))
                    .max(0.25 * sigma0);
                DieFaultModel::Gaussian(VminFaultModel::new(
                    Volt::new(mu),
                    Volt::new(sigma),
                    ppm(flip_ppm),
                ))
            }
        }
    }
}

impl CellFaultRate for FaultModel {
    /// The fleet-marginal BER: exact for `Gaussian` (delegates to
    /// [`VminFaultModel::bit_error_rate`]) and `CorrelatedBurst` (a
    /// two-component mixture), and the Gaussian-convolution closed form
    /// `Q((v - mu) / sqrt(sigma^2 + mu_spread^2))` for `ChipVariation`
    /// (exact in the `mu` spread; the `sigma` spread enters only at second
    /// order).
    fn marginal_ber(&self, v: Volt) -> f64 {
        match *self {
            Self::Gaussian { .. } => self.base_gaussian().bit_error_rate(v),
            Self::CorrelatedBurst {
                row_weak_ppm,
                col_weak_ppm,
                shift_mv,
                ..
            } => {
                let base = self.base_gaussian();
                let ber_base = base.bit_error_rate(v);
                let (mu, sigma) = (base.mu().volts(), base.sigma().volts());
                let ber_weak = q_tail((v.volts() - mu - mv(shift_mv).volts()) / sigma);
                // A cell is weak if its row or its column is weak
                // (independent draws).
                let (r, c) = (ppm(row_weak_ppm), ppm(col_weak_ppm));
                let p_weak = r + c - r * c;
                (1.0 - p_weak) * ber_base + p_weak * ber_weak
            }
            Self::ChipVariation {
                mu_mv,
                sigma_mv,
                mu_spread_mv,
                ..
            } => {
                assert!(
                    v >= V_DATA_RETENTION,
                    "{v} is below the data-retention voltage {V_DATA_RETENTION}"
                );
                let sigma = mv(sigma_mv).volts();
                let spread = mv(mu_spread_mv).volts();
                let eff = sigma.hypot(spread);
                q_tail((v - mv(mu_mv)).volts() / eff)
            }
        }
    }
}

/// A fault model resolved against one die: the form overlays are sampled
/// from.
#[derive(Debug, Clone, PartialEq)]
pub enum DieFaultModel {
    /// An i.i.d. Gaussian die (from a `Gaussian` or `ChipVariation` spec).
    Gaussian(VminFaultModel),
    /// A correlated-burst die: Gaussian background plus weak rows/columns.
    CorrelatedBurst(BurstDie),
}

/// The resolved per-die parameters of a correlated-burst model.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstDie {
    /// The i.i.d. Gaussian background.
    pub base: VminFaultModel,
    /// Probability that a 64-bit row (word) is weak.
    pub row_weak: f64,
    /// Probability that a macro-tile bit column is weak.
    pub col_weak: f64,
    /// Upward V_min shift of weak cells.
    pub shift: Volt,
}

/// The smallest `f32` strictly greater than a positive finite `x` (local
/// copy of the sparse sampler's ULP nudge).
#[inline]
fn next_up(x: f32) -> f32 {
    f32::from_bits(x.to_bits() + 1)
}

impl DieFaultModel {
    /// The die's Gaussian form, when it has one — the dense-overlay fast
    /// path keys off this.
    #[must_use]
    pub fn as_gaussian(&self) -> Option<&VminFaultModel> {
        match self {
            Self::Gaussian(m) => Some(m),
            Self::CorrelatedBurst(_) => None,
        }
    }

    /// The die's read-flip probability.
    #[must_use]
    pub fn read_flip_probability(&self) -> f64 {
        match self {
            Self::Gaussian(m) => m.read_flip_probability(),
            Self::CorrelatedBurst(b) => b.base.read_flip_probability(),
        }
    }

    /// Samples the die's faulty-at-floor cells into `cells` (sorted by
    /// strictly increasing index), using `indices` as scratch — the
    /// model-polymorphic form of [`SparseOverlay::sample_cells_into`].
    ///
    /// For a Gaussian die this executes **exactly** the legacy call
    /// sequence (`StdRng::seed_from_u64(seed)` feeding
    /// `SparseOverlay::sample_cells_into`), so the sampled cells — and
    /// every downstream golden artifact — are byte-identical to the
    /// pre-refactor pipeline. A burst die first runs that same background
    /// pass, then merges in its weak-row/column cells from a disjoint
    /// counter-derived stream (`derive_seed(seed, FAULT_BURST, 0)`), so
    /// the background remains comparable across models sharing a seed.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn sample_cells_into(
        &self,
        bits: usize,
        v_floor: Volt,
        seed: u64,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
    ) {
        match self {
            Self::Gaussian(m) => {
                let mut rng = StdRng::seed_from_u64(seed);
                SparseOverlay::sample_cells_into(bits, m, v_floor, &mut rng, indices, cells);
            }
            Self::CorrelatedBurst(b) => {
                let mut rng = StdRng::seed_from_u64(seed);
                SparseOverlay::sample_cells_into(bits, &b.base, v_floor, &mut rng, indices, cells);
                let mut brng = StdRng::seed_from_u64(derive_seed(seed, site::FAULT_BURST, 0));
                b.sample_burst_cells(bits, v_floor, &mut brng, indices, cells);
            }
        }
    }

    /// The floor fast path of [`Self::sample_cells_into`]: identical cell
    /// indices and flip decisions, but V_min values are pinned one ULP
    /// above the floor instead of drawn from the tail — valid only for a
    /// consumer that applies the overlay at exactly `v_floor` (there the
    /// corruption words are bit-identical to the slow path's; see
    /// [`SparseOverlay::sample_cells_at_floor_into`]).
    ///
    /// A Gaussian die elides its quantile math; a correlated-burst die
    /// falls back to the exact slow path, because its weak-cell merge keeps
    /// the *higher* of two tail draws when a burst lands on a background
    /// cell — a comparison that needs the real V_min values to pick the
    /// surviving flip bit.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn sample_cells_at_floor_into(
        &self,
        bits: usize,
        v_floor: Volt,
        seed: u64,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
    ) {
        match self {
            Self::Gaussian(m) => {
                let mut rng = StdRng::seed_from_u64(seed);
                SparseOverlay::sample_cells_at_floor_into(
                    bits, m, v_floor, &mut rng, indices, cells,
                );
            }
            Self::CorrelatedBurst(_) => {
                self.sample_cells_into(bits, v_floor, seed, indices, cells);
            }
        }
    }

    /// Streaming form of [`Self::sample_cells_at_floor_into`]: emits
    /// `(word_index, flip_mask)` for every word with at least one flipped
    /// bit, ascending, without materializing cells on the Gaussian path
    /// (see [`SparseOverlay::for_each_flip_word_at_floor`]). A burst die
    /// samples exactly as the slow path and groups its cells' flips —
    /// every sampled cell's V_min is strictly above the floor, so at the
    /// floor the flip mask is just the flip bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `v_floor` is below data retention.
    pub fn for_each_flip_word_at_floor(
        &self,
        bits: usize,
        v_floor: Volt,
        seed: u64,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
        mut emit: impl FnMut(usize, u64),
    ) {
        match self {
            Self::Gaussian(m) => {
                let mut rng = StdRng::seed_from_u64(seed);
                SparseOverlay::for_each_flip_word_at_floor(
                    bits, m, v_floor, &mut rng, indices, emit,
                );
            }
            Self::CorrelatedBurst(_) => {
                self.sample_cells_into(bits, v_floor, seed, indices, cells);
                let mut word = usize::MAX;
                let mut mask = 0u64;
                for c in cells.iter() {
                    let w = (c.index / 64) as usize;
                    if w != word {
                        if mask != 0 {
                            emit(word, mask);
                        }
                        word = w;
                        mask = 0;
                    }
                    if c.flip {
                        mask |= 1u64 << (c.index % 64);
                    }
                }
                if mask != 0 {
                    emit(word, mask);
                }
            }
        }
    }

    /// Owned-overlay convenience form of [`Self::sample_cells_into`].
    #[must_use]
    pub fn overlay_from_seed(&self, bits: usize, v_floor: Volt, seed: u64) -> SparseOverlay {
        let mut indices = Vec::new();
        let mut cells = Vec::new();
        self.sample_cells_into(bits, v_floor, seed, &mut indices, &mut cells);
        SparseOverlay::from_cells(bits, v_floor, cells)
    }
}

impl CellFaultRate for DieFaultModel {
    fn marginal_ber(&self, v: Volt) -> f64 {
        match self {
            Self::Gaussian(m) => m.bit_error_rate(v),
            Self::CorrelatedBurst(b) => {
                let ber_base = b.base.bit_error_rate(v);
                let (mu, sigma) = (b.base.mu().volts(), b.base.sigma().volts());
                let ber_weak = q_tail((v.volts() - mu - b.shift.volts()) / sigma);
                let p_weak = b.row_weak + b.col_weak - b.row_weak * b.col_weak;
                (1.0 - p_weak) * ber_base + p_weak * ber_weak
            }
        }
    }
}

impl BurstDie {
    /// Draws the weak-row/column cells faulty at `v_floor` and merges them
    /// into the background `cells` (keeping the higher V_min where a burst
    /// cell lands on a background cell). `indices` is reused as scratch for
    /// the weak-row Bernoulli walk.
    fn sample_burst_cells(
        &self,
        bits: usize,
        v_floor: Volt,
        rng: &mut StdRng,
        indices: &mut Vec<u64>,
        cells: &mut Vec<SparseCell>,
    ) {
        let geom = MacroGeometry::dante_4kb();
        let bpw = geom.bits_per_word() as u64; // 64: a row is one word
        let tile_bits = geom.capacity_bits(); // 512 words x 64 bits
        let (mu, sigma) = (self.base.mu().volts(), self.base.sigma().volts());
        let mu_weak = mu + self.shift.volts();
        let floor = v_floor.volts();
        let floor_f32 = floor as f32;
        // Probability that a weak cell is faulty at the floor — the shifted
        // Gaussian's tail, typically orders of magnitude above background.
        let p_weak_cell = q_tail((floor - mu_weak) / sigma);
        let p_flip = self.base.read_flip_probability();
        let background = cells.len();

        let draw_cell = |index: u64, rng: &mut StdRng, out: &mut Vec<SparseCell>| {
            if rng.gen_bool(p_weak_cell) {
                let mut vmin = truncated_tail_normal(mu_weak, sigma, floor, rng) as f32;
                if vmin <= floor_f32 {
                    vmin = next_up(floor_f32);
                }
                out.push(SparseCell {
                    index,
                    vmin,
                    flip: rng.gen_bool(p_flip),
                });
            }
        };

        // Weak rows: each 64-bit word is weak independently; all its cells
        // draw from the shifted distribution.
        let rows = bits.div_ceil(bpw as usize);
        sample_bernoulli_indices_into(rows, self.row_weak, rng, indices);
        let weak_rows = std::mem::take(indices);
        for &row in &weak_rows {
            for bit in 0..bpw {
                let index = row * bpw + bit;
                if index as usize >= bits {
                    break;
                }
                draw_cell(index, rng, cells);
            }
        }
        *indices = weak_rows;

        // Weak columns: tile the array into 512x64 macros; within each
        // tile, each bit column is weak independently and elevates its 512
        // cells.
        let tiles = bits.div_ceil(tile_bits);
        let mut weak_cols = Vec::new();
        for tile in 0..tiles {
            sample_bernoulli_indices_into(bpw as usize, self.col_weak, rng, &mut weak_cols);
            for &col in &weak_cols {
                for word in 0..geom.words() as u64 {
                    let index = (tile * tile_bits) as u64 + word * bpw + col;
                    if index as usize >= bits {
                        break;
                    }
                    draw_cell(index, rng, cells);
                }
            }
        }

        // Merge bursts into the sorted background: sort, then collapse
        // duplicate indices keeping the cell with the higher V_min (the
        // weak draw replaces the cell's background draw when it dominates).
        if cells.len() > background {
            cells.sort_unstable_by_key(|c| c.index);
            let mut write = 0;
            for read in 0..cells.len() {
                if write > 0 && cells[write - 1].index == cells[read].index {
                    if cells[read].vmin > cells[write - 1].vmin {
                        cells[write - 1] = cells[read];
                    }
                } else {
                    cells[write] = cells[read];
                    write += 1;
                }
            }
            cells.truncate(write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_fast_paths_match_slow_sampling_for_both_die_kinds() {
        let floor = Volt::new(0.42);
        let bits = 30_000usize;
        let words = bits.div_ceil(64);
        for die in [
            FaultModel::default().resolve_die(3),
            FaultModel::burst_default().resolve_die(3),
        ] {
            for seed in 0..3u64 {
                let (mut si, mut sc) = (Vec::new(), Vec::new());
                die.sample_cells_into(bits, floor, seed, &mut si, &mut sc);
                let mut expected = vec![0u64; words];
                for c in &sc {
                    // Every sampled V_min is strictly above the floor, so
                    // at the floor the corruption is exactly the flip bits.
                    assert!(f64::from(c.vmin) > floor.volts());
                    if c.flip {
                        expected[(c.index / 64) as usize] |= 1u64 << (c.index % 64);
                    }
                }
                let (mut fi, mut fc) = (Vec::new(), Vec::new());
                die.sample_cells_at_floor_into(bits, floor, seed, &mut fi, &mut fc);
                assert_eq!(sc.len(), fc.len());
                assert!(sc
                    .iter()
                    .zip(fc.iter())
                    .all(|(s, f)| s.index == f.index && s.flip == f.flip));
                let (mut wi, mut wc) = (Vec::new(), Vec::new());
                let mut streamed = vec![0u64; words];
                die.for_each_flip_word_at_floor(bits, floor, seed, &mut wi, &mut wc, |w, m| {
                    streamed[w] = m;
                });
                assert_eq!(expected, streamed, "streamed flips diverged ({die:?})");
            }
        }
    }

    #[test]
    fn default_spec_resolves_to_the_calibrated_14nm_model_exactly() {
        assert_eq!(
            FaultModel::default().base_gaussian(),
            VminFaultModel::default_14nm()
        );
        assert!(matches!(
            FaultModel::default().resolve_die(42),
            DieFaultModel::Gaussian(m) if m == VminFaultModel::default_14nm()
        ));
    }

    #[test]
    fn integral_params_reconstruct_the_float_defaults_bit_for_bit() {
        // The whole byte-identity argument rests on these equalities.
        let base = FaultModel::default().base_gaussian();
        let legacy = VminFaultModel::default_14nm();
        assert_eq!(base.mu().volts().to_bits(), legacy.mu().volts().to_bits());
        assert_eq!(
            base.sigma().volts().to_bits(),
            legacy.sigma().volts().to_bits()
        );
        assert_eq!(
            base.read_flip_probability().to_bits(),
            legacy.read_flip_probability().to_bits()
        );
    }

    #[test]
    fn gaussian_die_samples_byte_identically_to_the_legacy_path() {
        let spec = FaultModel::default();
        let die = spec.resolve_die(derive_seed(7, site::TRIAL, 3));
        let floor = Volt::new(0.40);
        let ours = die.overlay_from_seed(100_000, floor, 1234);
        let legacy =
            SparseOverlay::from_seed(100_000, &VminFaultModel::default_14nm(), floor, 1234);
        assert_eq!(ours.cells(), legacy.cells());
    }

    #[test]
    fn canonical_tokens_are_versioned_and_distinct() {
        let toks = [
            FaultModel::gaussian_default().canonical_token(),
            FaultModel::burst_default().canonical_token(),
            FaultModel::chip_variation_default().canonical_token(),
            FaultModel::Gaussian {
                mu_mv: 360,
                sigma_mv: 40,
                flip_ppm: 500_000,
            }
            .canonical_token(),
        ];
        for t in &toks {
            assert!(t.contains(".v1("), "token {t} must carry a version");
        }
        let mut uniq = toks.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), toks.len(), "tokens must be distinct: {toks:?}");
    }

    #[test]
    fn validation_names_the_violated_bound() {
        let bad = FaultModel::Gaussian {
            mu_mv: 100,
            sigma_mv: 40,
            flip_ppm: 500_000,
        };
        assert!(bad.validate().unwrap_err().contains("mu"));
        let bad = FaultModel::CorrelatedBurst {
            mu_mv: 352,
            sigma_mv: 40,
            flip_ppm: 500_000,
            row_weak_ppm: 0,
            col_weak_ppm: 0,
            shift_mv: 120,
        };
        assert!(bad.validate().unwrap_err().contains("non-zero"));
        let bad = FaultModel::ChipVariation {
            mu_mv: 352,
            sigma_mv: 40,
            flip_ppm: 500_000,
            mu_spread_mv: 0,
            sigma_spread_pct: 10,
        };
        assert!(bad.validate().unwrap_err().contains("mu spread"));
        assert!(FaultModel::burst_default().validate().is_ok());
        assert!(FaultModel::chip_variation_default().validate().is_ok());
        assert!(FaultModel::default().validate().is_ok());
    }

    #[test]
    fn chip_variation_dies_differ_but_are_deterministic_per_seed() {
        let spec = FaultModel::chip_variation_default();
        let a = spec.resolve_die(derive_seed(1, site::FLEET_DIE, 0));
        let a2 = spec.resolve_die(derive_seed(1, site::FLEET_DIE, 0));
        let b = spec.resolve_die(derive_seed(1, site::FLEET_DIE, 1));
        assert_eq!(a, a2, "same die seed, same profile");
        assert_ne!(a, b, "different dies draw different profiles");
        // The population mean tracks the hyper-mean.
        let n = 512;
        let mean_mu: f64 = (0..n)
            .map(|i| {
                let die = spec.resolve_die(derive_seed(1, site::FLEET_DIE, i));
                die.as_gaussian()
                    .expect("chip dies are Gaussian")
                    .mu()
                    .volts()
            })
            .sum::<f64>()
            / f64::from(n as u32);
        assert!(
            (mean_mu - 0.352).abs() < 0.005,
            "population mean mu {mean_mu} strays from the hyper-mean"
        );
    }

    #[test]
    fn burst_die_clusters_faults_along_rows() {
        // Index-of-dispersion sanity at the model level: per-row fault
        // counts of a burst die must be far over-dispersed relative to the
        // i.i.d. background (the formal chi-square acceptance test lives in
        // dante-verify's suite).
        let floor = Volt::new(0.42);
        let bits = 1 << 20;
        let spec = FaultModel::CorrelatedBurst {
            mu_mv: DEFAULT_MU_MV,
            sigma_mv: DEFAULT_SIGMA_MV,
            flip_ppm: DEFAULT_FLIP_PPM,
            row_weak_ppm: 5_000,
            col_weak_ppm: 0,
            shift_mv: 150,
        };
        let dispersion = |cells: &[SparseCell]| {
            let rows = bits / 64;
            let mut counts = vec![0u32; rows];
            for c in cells {
                counts[(c.index / 64) as usize] += 1;
            }
            let n = counts.len() as f64;
            let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / n;
            let var = counts
                .iter()
                .map(|&c| (f64::from(c) - mean).powi(2))
                .sum::<f64>()
                / (n - 1.0);
            var / mean
        };
        let burst = spec.resolve_die(11).overlay_from_seed(bits, floor, 99);
        let iid = FaultModel::default()
            .resolve_die(11)
            .overlay_from_seed(bits, floor, 99);
        let d_burst = dispersion(burst.cells());
        let d_iid = dispersion(iid.cells());
        assert!(
            d_iid < 1.5,
            "i.i.d. per-row counts are Poisson-like, got dispersion {d_iid}"
        );
        assert!(
            d_burst > 5.0,
            "burst per-row counts must be strongly over-dispersed, got {d_burst}"
        );
        assert!(
            burst.cells().len() > iid.cells().len(),
            "bursts add faults on top of the shared background"
        );
    }

    #[test]
    fn burst_cells_stay_sorted_in_range_and_above_floor() {
        let floor = Volt::new(0.40);
        let bits = 200_000;
        let die = FaultModel::burst_default().resolve_die(3);
        let o = die.overlay_from_seed(bits, floor, 17);
        // from_cells already asserts strict ordering; check range + floor.
        let floor_f32 = floor.volts() as f32;
        for c in o.cells() {
            assert!((c.index as usize) < bits);
            assert!(
                c.vmin > floor_f32,
                "cell vmin {} at floor {floor_f32}",
                c.vmin
            );
        }
        // Determinism.
        let o2 = die.overlay_from_seed(bits, floor, 17);
        assert_eq!(o.cells(), o2.cells());
    }

    #[test]
    fn marginal_ber_orders_the_models_sensibly() {
        let v = Volt::new(0.48);
        let g = FaultModel::default().marginal_ber(v);
        let b = FaultModel::burst_default().marginal_ber(v);
        let c = FaultModel::chip_variation_default().marginal_ber(v);
        assert_eq!(
            g,
            VminFaultModel::default_14nm().bit_error_rate(v),
            "Gaussian marginal delegates exactly"
        );
        assert!(b > g, "bursts add faults: {b} <= {g}");
        assert!(
            c > g,
            "mu spread widens the effective tail above the mean: {c} <= {g}"
        );
        // All marginals fall with rising voltage.
        for spec in [
            FaultModel::default(),
            FaultModel::burst_default(),
            FaultModel::chip_variation_default(),
        ] {
            let lo = spec.marginal_ber(Volt::new(0.40));
            let hi = spec.marginal_ber(Volt::new(0.56));
            assert!(lo > hi, "{spec:?}: BER must fall with voltage");
        }
    }

    #[test]
    fn burst_empirical_fault_rate_tracks_the_marginal() {
        // The mixture formula against the sampler it describes: pooled over
        // seeds, the empirical faulty fraction at the floor must sit within
        // a loose binomial band of the analytic marginal.
        let spec = FaultModel::burst_default();
        let floor = Volt::new(0.44);
        let bits = 1 << 20;
        let die = spec.resolve_die(0);
        let mut total = 0usize;
        let seeds = 4;
        for s in 0..seeds {
            total += die.overlay_from_seed(bits, floor, 1000 + s).cells().len();
        }
        let n = (bits * seeds as usize) as f64;
        let p_hat = total as f64 / n;
        let p = spec.marginal_ber(floor);
        let sd = (p * (1.0 - p) / n).sqrt();
        assert!(
            (p_hat - p).abs() < 6.0 * sd + 0.1 * p,
            "empirical {p_hat:.4e} vs marginal {p:.4e} (sd {sd:.1e})"
        );
    }
}
