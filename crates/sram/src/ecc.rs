//! SEC-DED error-correcting code over 64-bit SRAM words — the conventional
//! low-V_min alternative the paper's related work contrasts against
//! (Shamanna et al. \[36\]: "Using ECC and redundancy to minimize Vmin induced
//! yield loss in 6T SRAM arrays").
//!
//! This is a Hamming(72,64) code: 64 data bits, 7 Hamming check bits, and
//! one overall parity bit, giving single-error correction and double-error
//! detection per word. The module provides both the real encoder/decoder
//! (bit-exact, usable by a memory model) and [`filter_corruption`], which
//! applies the code's statistical effect to a fault-overlay corruption mask:
//! words with one flipped bit are healed, words with two or more keep their
//! corruption — exactly what SEC-DED does to the paper's fault maps.
//!
//! The comparison the ablation benches draw: ECC buys a fixed ~20–40 mV of
//! V_min at a constant 12.5% storage/energy/latency tax and cannot be
//! modulated, while programmable boosting buys >140 mV, only when needed,
//! per bank.

/// Codeword layout: positions 1..=71 are Hamming positions (powers of two
/// hold check bits), position 0 holds the overall parity bit.
const CHECK_POSITIONS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Total codeword bits (64 data + 7 Hamming + 1 overall parity).
pub const CODE_BITS: u32 = 72;

/// Result of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// No error detected.
    Clean,
    /// A single-bit error was corrected at the given codeword position.
    Corrected {
        /// Position (0..72) of the corrected bit.
        position: u32,
    },
    /// A double-bit error was detected but cannot be corrected.
    Uncorrectable,
}

/// A 72-bit SEC-DED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codeword(u128);

impl Codeword {
    /// Raw 72-bit pattern (bits 72.. are zero).
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Builds a codeword from a raw pattern (e.g. after fault injection).
    ///
    /// # Panics
    ///
    /// Panics if bits above position 71 are set.
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        assert!(
            bits >> CODE_BITS == 0,
            "codeword has bits beyond position 71"
        );
        Self(bits)
    }

    /// XOR-flips the bit at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= 72`.
    #[must_use]
    pub fn with_flip(self, position: u32) -> Self {
        assert!(
            position < CODE_BITS,
            "flip position {position} out of range"
        );
        Self(self.0 ^ (1u128 << position))
    }
}

fn is_check_position(pos: u32) -> bool {
    pos == 0 || CHECK_POSITIONS.contains(&pos)
}

/// Maps data bit index (0..64) to its codeword position.
fn data_position(index: u32) -> u32 {
    // Walk positions 1..72 skipping check positions; precomputable but kept
    // simple: the nth non-check position.
    let mut seen = 0;
    for pos in 1..CODE_BITS {
        if !is_check_position(pos) {
            if seen == index {
                return pos;
            }
            seen += 1;
        }
    }
    unreachable!("fewer than 64 data positions in a 72-bit codeword")
}

/// Encodes 64 data bits into a SEC-DED codeword.
#[must_use]
pub fn encode(data: u64) -> Codeword {
    let mut cw: u128 = 0;
    for i in 0..DATA_BITS {
        if data & (1u64 << i) != 0 {
            cw |= 1u128 << data_position(i);
        }
    }
    // Hamming check bits: parity over positions whose index has that bit.
    for &cp in &CHECK_POSITIONS {
        let mut parity = 0u32;
        for pos in 1..CODE_BITS {
            if pos & cp != 0 && cw & (1u128 << pos) != 0 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            cw |= 1u128 << cp;
        }
    }
    // Overall parity (position 0) over the whole codeword.
    if (cw.count_ones() & 1) == 1 {
        cw |= 1;
    }
    Codeword(cw)
}

/// Decodes a (possibly corrupted) codeword, returning the best-effort data
/// and what the decoder did.
#[must_use]
pub fn decode(cw: Codeword) -> (u64, Correction) {
    let bits = cw.0;
    // Syndrome: XOR of positions of set bits (over Hamming positions).
    let mut syndrome = 0u32;
    for pos in 1..CODE_BITS {
        if bits & (1u128 << pos) != 0 {
            syndrome ^= pos;
        }
    }
    let overall_parity_ok = bits.count_ones().is_multiple_of(2);

    let (fixed, correction) = match (syndrome, overall_parity_ok) {
        (0, true) => (bits, Correction::Clean),
        (0, false) => {
            // The overall parity bit itself flipped.
            (bits ^ 1, Correction::Corrected { position: 0 })
        }
        (s, false) if s < CODE_BITS => {
            // Single-bit error at position s.
            (bits ^ (1u128 << s), Correction::Corrected { position: s })
        }
        // Non-zero syndrome with even parity => double error; syndrome
        // pointing outside the codeword is also uncorrectable.
        _ => (bits, Correction::Uncorrectable),
    };

    let mut data = 0u64;
    for i in 0..DATA_BITS {
        if fixed & (1u128 << data_position(i)) != 0 {
            data |= 1u64 << i;
        }
    }
    (data, correction)
}

/// Applies SEC-DED's statistical effect to a per-word corruption mask.
///
/// `data_corruption[w]` holds the fault-overlay flips of word `w`'s 64 data
/// bits; `check_flips[w]` the number of flips among its 8 check bits. Words
/// whose *total* flip count is <= 1 are healed (their data corruption is
/// cleared); words with two or more flips keep their data corruption (the
/// decoder detects but cannot correct, and on >= 3 flips may even
/// miscorrect — modelled conservatively as "corruption passes through").
///
/// Returns the number of words healed.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn filter_corruption(data_corruption: &mut [u64], check_flips: &[u32]) -> usize {
    assert_eq!(
        data_corruption.len(),
        check_flips.len(),
        "corruption and check-flip slices must align"
    );
    let mut healed = 0;
    for (word, &cf) in data_corruption.iter_mut().zip(check_flips) {
        let total = word.count_ones() + cf;
        // A single flip anywhere is corrected. Two or more flips pass
        // through (check-bit-only flips never corrupted the data anyway).
        if total <= 1 {
            if *word != 0 {
                healed += 1;
            }
            *word = 0;
        }
    }
    healed
}

/// Per-word probability that SEC-DED fails to protect the data, given a
/// per-bit flip probability `p` (small-`p` approximation `C(72,2) p^2`
/// refined with the exact binomial terms).
///
/// # Panics
///
/// Panics unless `p` is in `[0, 1]`.
#[must_use]
pub fn word_failure_probability(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let n = f64::from(CODE_BITS);
    let q = 1.0 - p;
    // P(>= 2 flips) = 1 - q^72 - 72 p q^71.
    1.0 - q.powi(72) - n * p * q.powi(71)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let cw = encode(data);
            let (back, corr) = decode(cw);
            assert_eq!(back, data);
            assert_eq!(corr, Correction::Clean);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let cw = encode(data);
        for pos in 0..CODE_BITS {
            let corrupted = cw.with_flip(pos);
            let (back, corr) = decode(corrupted);
            assert_eq!(back, data, "failed to correct flip at position {pos}");
            assert_eq!(corr, Correction::Corrected { position: pos });
        }
    }

    #[test]
    fn double_bit_errors_are_detected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let cw = encode(data);
        let mut detected = 0;
        let mut total = 0;
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let corrupted = cw.with_flip(a).with_flip(b);
                let (_, corr) = decode(corrupted);
                total += 1;
                if corr == Correction::Uncorrectable {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED must detect every double error");
    }

    #[test]
    fn codeword_has_72_bits() {
        let cw = encode(u64::MAX);
        assert!(cw.bits() >> 72 == 0);
        // 64 data + some check bits set.
        assert!(cw.bits().count_ones() >= 64);
    }

    #[test]
    fn filter_heals_single_flips_and_passes_doubles() {
        let mut corruption = vec![
            0u64,    // clean
            1 << 5,  // single data flip -> healed
            0b11,    // double data flip -> passes
            1 << 40, // single data flip but a check bit also flipped -> passes
            0,       // two check-bit flips only -> data unaffected
        ];
        let checks = vec![0u32, 0, 0, 1, 2];
        let healed = filter_corruption(&mut corruption, &checks);
        assert_eq!(corruption, vec![0, 0, 0b11, 1 << 40, 0]);
        assert_eq!(healed, 1);
    }

    #[test]
    fn word_failure_probability_is_quadratic_for_small_p() {
        let p = 1e-4;
        let approx = 72.0 * 71.0 / 2.0 * p * p;
        let exact = word_failure_probability(p);
        assert!(
            (exact - approx).abs() / approx < 0.02,
            "{exact} vs {approx}"
        );
        assert_eq!(word_failure_probability(0.0), 0.0);
        assert!(word_failure_probability(0.5) > 0.99);
    }

    #[test]
    #[should_panic(expected = "beyond position 71")]
    fn oversized_codeword_rejected() {
        let _ = Codeword::from_bits(1u128 << 72);
    }
}
