//! # dante-sram
//!
//! Low-voltage SRAM behaviour for the *Dante* reproduction:
//!
//! * [`fault`] — the Gaussian cell-V_min fault model: bit error rate vs.
//!   supply voltage, calibrated to the paper's 14nm 4 Mbit measurements
//!   (Fig. 7 top).
//! * [`fault_map`] — Monte-Carlo die instances and inclusive fault masks
//!   (the methodology of Fig. 11).
//! * [`storage`] — bit-accurate faulty macros and bulk fault overlays
//!   (faulty cells flip on read with probability `p = 0.5`).
//! * [`sparse`] — sparse tail-sampled fault overlays: only the
//!   faulty-at-floor cells are drawn (binomial count + truncated-Gaussian
//!   V_mins), turning per-trial cost from O(bits) into O(faulty bits).
//! * [`geometry`] — macro/bank/memory geometry of the taped-out chip
//!   (4 KB macros, 64 Kbit banks, 128 KB + 16 KB memories).
//! * [`ber_fit`] — probit regression from measured `(V, BER)` points back to
//!   a fault model.
//! * [`model`] — pluggable fault-model specs above the Gaussian workhorse:
//!   i.i.d. Gaussian, spatially correlated row/column bursts, and
//!   chip-to-chip variation, with a versioned canonical encoding for
//!   cache keys and per-die resolution via counter-derived seeds.
//! * [`ecc`] — a Hamming(72,64) SEC-DED code, the conventional low-V_min
//!   alternative used as an ablation baseline.
//! * [`yield_model`] — array-level yield curves and V_min-for-yield search
//!   (the quantitative Fig. 1 landmarks).
//! * [`math`] — standard-normal tail and quantile helpers.
//!
//! # Examples
//!
//! ```
//! use dante_sram::fault::VminFaultModel;
//! use dante_circuit::units::Volt;
//!
//! let model = VminFaultModel::default_14nm();
//! // Bit failures rise exponentially below ~0.5 V:
//! assert!(model.bit_error_rate(Volt::new(0.38)) > 100.0 * model.bit_error_rate(Volt::new(0.50)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ber_fit;
pub mod ecc;
pub mod fault;
pub mod fault_map;
pub mod geometry;
pub mod math;
pub mod model;
pub mod sparse;
pub mod storage;
pub mod yield_model;

pub use ber_fit::{fit_vmin_model, FitBerError};
pub use ecc::{decode as ecc_decode, encode as ecc_encode, Codeword, Correction};
pub use fault::{VminFaultModel, DEFAULT_READ_FLIP_PROBABILITY, V_DATA_RETENTION};
pub use fault_map::{FaultMask, VminField};
pub use geometry::{BankGeometry, MacroGeometry, MemoryGeometry};
pub use model::{BurstDie, CellFaultRate, DieFaultModel, FaultModel};
pub use sparse::{SparseCell, SparseOverlay};
pub use storage::{AccessStats, CorruptionOverlay, FaultOverlay, FaultyMacro};
pub use yield_model::{array_yield, array_yield_secded, vmin_for_yield, vmin_for_yield_secded};
