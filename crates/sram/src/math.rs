//! Standard-normal distribution helpers used by the fault model.
//!
//! The fault model needs the Gaussian tail `Q(z) = P(X >= z)` (to turn a
//! cell-V_min distribution into a bit error rate) and its inverse (to fit
//! measured error rates back to a distribution). Rust's standard library has
//! neither `erf` nor the normal quantile, so both are implemented here:
//!
//! * `Q(z)` via the Abramowitz & Stegun 26.2.17 polynomial (|error| < 7.5e-8),
//! * `Q^{-1}(p)` via Acklam's rational approximation refined with one Halley
//!   step (relative error far below the fitting noise).
//!
//! The module also hosts the sparse tail samplers used by
//! [`crate::sparse::SparseOverlay`]: geometric-gap Bernoulli index sampling
//! (an exact draw of the faulty-cell set in O(faulty cells) expected time)
//! and truncated-tail Gaussian draws via the inverse CDF.

use rand::Rng;

/// Standard normal probability density function.
#[must_use]
pub fn phi_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal CDF `P(X <= z)` (Abramowitz & Stegun 26.2.17).
#[must_use]
pub fn phi_cdf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - phi_cdf(-z);
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * z);
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    1.0 - phi_pdf(z) * poly
}

/// Gaussian upper tail `Q(z) = P(X >= z) = 1 - Phi(z)`.
#[must_use]
pub fn q_tail(z: f64) -> f64 {
    phi_cdf(-z)
}

/// Inverse of the Gaussian upper tail: returns `z` such that `Q(z) = p`.
///
/// # Panics
///
/// Panics unless `p` is in the open interval `(0, 1)`.
#[must_use]
pub fn q_tail_inv(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "tail probability must be in (0, 1), got {p}"
    );
    -norm_ppf(p)
}

/// Inverse standard normal CDF (quantile function) via Acklam's algorithm
/// plus one Halley refinement step.
///
/// # Panics
///
/// Panics unless `p` is in the open interval `(0, 1)`.
#[must_use]
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the forward CDF.
    let e = phi_cdf(x) - p;
    let u = e * (2.0 * core::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Draws a uniform `f64` in the *open* interval `(0, 1)`: the packed-mantissa
/// sample in `[0, 1)` is redrawn on an exact zero so downstream logarithms
/// and quantile lookups stay finite.
pub fn sample_unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Samples the success indices of `n` i.i.d. Bernoulli(`p`) trials into
/// `out` (cleared first), in strictly increasing order, using geometric-gap
/// skipping: the gap to the next success is `floor(ln u / ln(1-p))`, so the
/// expected cost is O(n·p) draws instead of O(n). The number of indices
/// produced is exactly Binomial(`n`, `p`)-distributed.
///
/// # Panics
///
/// Panics unless `p` is a finite probability in `[0, 1]`.
pub fn sample_bernoulli_indices_into<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
    out: &mut Vec<u64>,
) {
    out.clear();
    assert!(
        (0.0..=1.0).contains(&p),
        "success probability must be in [0, 1], got {p}"
    );
    if n == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..n as u64);
        return;
    }
    let ln_q = (-p).ln_1p(); // ln(1 - p), strictly negative
    let n = n as u64;
    let mut idx = 0u64;
    loop {
        let gap = (sample_unit_open(rng).ln() / ln_q).floor();
        // The remaining-range guard doubles as overflow protection: a deep
        // tail can yield gaps far beyond 2^63.
        if gap >= (n - idx) as f64 {
            return;
        }
        idx += gap as u64;
        out.push(idx);
        idx += 1;
        if idx >= n {
            return;
        }
    }
}

/// Latency-hiding variant of [`sample_bernoulli_indices_into`]: identical
/// indices, identical RNG stream, identical post-call generator state — but
/// several times faster on dense tails, because the scalar walk is a serial
/// `draw → ln → divide → compare` dependency chain (~25 ns/success) while
/// this form pre-draws uniforms in chunks and computes their logarithms as
/// independent operations the CPU can overlap.
///
/// Chunked drawing over-consumes the generator when the walk terminates
/// mid-chunk, so the generator state is snapshotted before each chunk and,
/// on termination after `j` in-chunk draws, rewound and replayed with
/// exactly `j` [`sample_unit_open`] calls — the post-call state is the one
/// the scalar walk would leave. This is why the bound is `R: Rng + Clone`
/// rather than `?Sized`.
///
/// # Panics
///
/// Panics unless `p` is a finite probability in `[0, 1]`.
pub fn sample_bernoulli_indices_buffered<R: Rng + Clone>(
    n: usize,
    p: f64,
    rng: &mut R,
    out: &mut Vec<u64>,
) {
    out.clear();
    assert!(
        (0.0..=1.0).contains(&p),
        "success probability must be in [0, 1], got {p}"
    );
    if n == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..n as u64);
        return;
    }
    const CHUNK: usize = 1024;
    let ln_q = (-p).ln_1p(); // ln(1 - p), strictly negative
    let n = n as u64;
    let mut idx = 0u64;
    let mut uniforms = [0.0f64; CHUNK];
    let mut gaps = [0.0f64; CHUNK];
    loop {
        // Size the chunk to the expected remaining draws plus slack, so
        // shallow tails don't burn a full chunk of logarithms for a walk
        // that terminates after one or two gaps.
        let expect = (n - idx) as f64 * p;
        let k = ((expect + 6.0 * expect.sqrt() + 8.0) as usize).clamp(8, CHUNK);
        let snapshot = rng.clone();
        for slot in uniforms.iter_mut().take(k) {
            *slot = sample_unit_open(rng);
        }
        // Independent logarithms: this loop is the throughput win.
        floored_gaps(&uniforms[..k], ln_q, &mut gaps[..k]);
        for (j, &gap) in gaps.iter().enumerate().take(k) {
            let done = if gap >= (n - idx) as f64 {
                true
            } else {
                idx += gap as u64;
                out.push(idx);
                idx += 1;
                idx >= n
            };
            if done {
                // Rewind the over-drawn generator and replay exactly the
                // draws the scalar walk would have consumed.
                *rng = snapshot;
                for _ in 0..=j {
                    let _ = sample_unit_open(rng);
                }
                return;
            }
        }
    }
}

/// Certified absolute error bound of [`fast_ln`] **plus** the platform
/// `f64::ln`'s own sub-ulp error, with two orders of magnitude of margin:
/// the polynomial's truncation tail is `< 5e-13` (see [`fast_ln`]), every
/// rounding term is `< 1e-14`, and libm `ln` is within 1 ulp (`< 1e-14` for
/// results bounded by `|ln(2^-53)| ≈ 36.7`).
const FAST_LN_EPS: f64 = 2e-12;

/// Polynomial natural logarithm with a *certified* absolute error bound
/// ([`FAST_LN_EPS`]) for `u` in `(0, 1)`, normal (the unit-open sampler
/// never produces subnormals).
///
/// `u = 2^e * m` with `m` reduced to `[√½, √2)`, then
/// `ln(m) = 2·atanh(t)`, `t = (m-1)/(m+1)`, `|t| ≤ √2-1/√2+1 ≈ 0.1716`,
/// via the odd series through `t^13`. The truncation tail is
/// `Σ_{k≥7} t^(2k+1)/(2k+1) ≤ t^15/(15(1-t²)) < 2.3e-13` (doubled by the
/// `2·` factor), and `m-1` is exact (Sterbenz), so rounding contributes
/// only a few `1e-15` terms.
///
/// The exact bits of the result are **not** part of any contract — only the
/// error bound is. Callers certify against the bound and fall back to the
/// exact `f64::ln` when certification fails, so their output is bit-stable
/// across compilers and SIMD widths even though this value may not be.
#[inline(always)]
fn fast_ln(u: f64) -> f64 {
    let bits = u.to_bits();
    let e = (((bits >> 52) & 0x7FF) as i32) - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let big = m > std::f64::consts::SQRT_2;
    let m = if big { m * 0.5 } else { m };
    let e = e + i32::from(big);
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let poly = 1.0 / 3.0
        + t2 * (1.0 / 5.0
            + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0)))));
    f64::from(e) * std::f64::consts::LN_2 + (2.0 * t + 2.0 * (t * t2) * poly)
}

/// Fills `gaps[j] = (uniforms[j].ln() / ln_q).floor()` — bit-equivalent to
/// calling libm `ln` per element, several times faster on dense tails.
///
/// Each element computes [`fast_ln`] and *certifies* the floored quotient
/// without any division in the hot loop: with `L = fast_ln(u)` and
/// `r = L * (1/ln_q)`, every value the exact path can produce —
/// `a / ln_q` rounded once, for any `a` within `ε` of `L` — lies within
/// `δ = 2ε/|ln_q| + 2e-15·|r|` of `r` (the first term is the `ε`-interval
/// mapped through the division, doubled for slack; the second covers the
/// reciprocal representation, the multiply rounding, and the exact path's
/// own division rounding, each `≤ 1.2e-16·|r|`, with >10x margin). So when
/// the fractional part of `r` keeps `[r-δ, r+δ]` strictly inside one unit
/// interval, `floor(r)` provably equals the libm-based result. Uncertified
/// elements (quotient within `δ` of an integer, probability `~δ` per unit
/// of gap) are recomputed exactly in a scalar fixup pass, so the output
/// never depends on which path ran. `r - floor(r)` and `1 - s` are exact
/// for `|r| < 2^52` (Sterbenz), and larger `r` fails certification (`s`
/// becomes 0), falling back safely.
///
/// # Panics
///
/// Panics if the buffer lengths differ.
fn floored_gaps(uniforms: &[f64], ln_q: f64, gaps: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature presence just checked.
            return unsafe { floored_gaps_avx512(uniforms, ln_q, gaps) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked.
            return unsafe { floored_gaps_avx2(uniforms, ln_q, gaps) };
        }
    }
    floored_gaps_core(uniforms, ln_q, gaps);
}

/// [`floored_gaps_core`] compiled with AVX-512F codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn floored_gaps_avx512(uniforms: &[f64], ln_q: f64, gaps: &mut [f64]) {
    floored_gaps_core(uniforms, ln_q, gaps);
}

/// [`floored_gaps_core`] compiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn floored_gaps_avx2(uniforms: &[f64], ln_q: f64, gaps: &mut [f64]) {
    floored_gaps_core(uniforms, ln_q, gaps);
}

/// The dispatch body of [`floored_gaps`]: a branch-free certification loop
/// the autovectorizer can spread across SIMD lanes (NaN marks the rare
/// uncertified elements — real gaps are always finite), then a scalar
/// libm-`ln` fixup pass.
#[inline(always)]
fn floored_gaps_core(uniforms: &[f64], ln_q: f64, gaps: &mut [f64]) {
    assert_eq!(uniforms.len(), gaps.len(), "gap buffer length mismatch");
    let inv_ln_q = 1.0 / ln_q;
    // δ0: the fast-ln error interval mapped through the division, doubled
    // to absorb the rounding of this very computation.
    let delta0 = 2.0 * FAST_LN_EPS * (-inv_ln_q);
    for (g, &u) in gaps.iter_mut().zip(uniforms) {
        let r = fast_ln(u) * inv_ln_q;
        let f = r.floor();
        let s = r - f;
        let delta = delta0 + r.abs() * 2e-15;
        *g = if s >= delta && (1.0 - s) > delta {
            f
        } else {
            f64::NAN
        };
    }
    for (g, &u) in gaps.iter_mut().zip(uniforms) {
        if g.is_nan() {
            *g = (u.ln() / ln_q).floor();
        }
    }
}

/// Draws one value from the Gaussian `N(mu, sigma)` *conditioned on being
/// greater than `floor`*, via the inverse tail CDF: with
/// `p_f = Q((floor - mu) / sigma)` and `u ~ U(0, 1)`, the draw is
/// `mu + sigma * Q^{-1}(u * p_f)`.
///
/// # Panics
///
/// Panics if `sigma` is not strictly positive or the tail beyond `floor`
/// carries no numerically representable mass.
#[must_use]
pub fn truncated_tail_normal<R: Rng + ?Sized>(mu: f64, sigma: f64, floor: f64, rng: &mut R) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
    let p_floor = q_tail((floor - mu) / sigma);
    assert!(
        p_floor > 0.0,
        "no Gaussian mass above floor {floor} (mu {mu}, sigma {sigma})"
    );
    let t = (sample_unit_open(rng) * p_floor).max(f64::MIN_POSITIVE);
    mu + sigma * q_tail_inv(t)
}

/// CDF of the truncated tail distribution sampled by
/// [`truncated_tail_normal`]: the probability that a draw conditioned on
/// exceeding `floor` is `<= x`. Zero below the floor, one far in the tail.
#[must_use]
pub fn truncated_tail_cdf(mu: f64, sigma: f64, floor: f64, x: f64) -> f64 {
    if x <= floor {
        return 0.0;
    }
    let p_floor = q_tail((floor - mu) / sigma);
    if p_floor <= 0.0 {
        return 1.0;
    }
    ((p_floor - q_tail((x - mu) / sigma)) / p_floor).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn buffered_bernoulli_walk_matches_scalar_walk_and_stream() {
        // Identical indices AND identical post-call generator state across
        // sizes straddling the chunk boundary and probabilities from dense
        // tails to near-empty ones (plus both degenerate edges).
        for &n in &[1usize, 7, 100, 1023, 1024, 1025, 50_000] {
            for &p in &[0.0, 1e-6, 1e-3, 0.05, 0.42, 0.9, 1.0] {
                for seed in 0..3u64 {
                    let mut scalar_rng = StdRng::seed_from_u64(seed);
                    let mut buffered_rng = StdRng::seed_from_u64(seed);
                    let (mut scalar, mut buffered) = (Vec::new(), Vec::new());
                    sample_bernoulli_indices_into(n, p, &mut scalar_rng, &mut scalar);
                    sample_bernoulli_indices_buffered(n, p, &mut buffered_rng, &mut buffered);
                    assert_eq!(scalar, buffered, "indices diverged (n={n}, p={p})");
                    assert_eq!(
                        scalar_rng.gen::<u64>(),
                        buffered_rng.gen::<u64>(),
                        "generator state diverged (n={n}, p={p})"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_ln_stays_within_its_certified_bound() {
        // Random coverage of the full unit-open range plus the extremes the
        // sampler can actually produce. The bound claimed is FAST_LN_EPS
        // minus libm's share; assert with margin against the whole budget.
        let mut rng = StdRng::seed_from_u64(11);
        let check = |u: f64| {
            let err = (fast_ln(u) - u.ln()).abs();
            assert!(err < 1e-12, "fast_ln error {err:.3e} at u={u:e}");
        };
        for _ in 0..200_000 {
            check(sample_unit_open(&mut rng));
        }
        check(f64::from_bits(1.0f64.to_bits() - 1)); // largest value < 1
        check((2.0f64).powi(-53)); // smallest unit-open draw
        check(std::f64::consts::SQRT_2 / 2.0);
        check(0.5);
        check(0.25);
    }

    #[test]
    fn certified_gaps_match_exact_computation() {
        // Random uniforms across tail densities: the certified path must be
        // bit-equivalent to the libm-ln computation it replaces.
        let mut rng = StdRng::seed_from_u64(12);
        for &p in &[1e-9f64, 1e-6, 1e-3, 0.05, 0.3, 0.42, 0.9, 0.999_999] {
            let ln_q = (-p).ln_1p();
            let uniforms: Vec<f64> = (0..100_000).map(|_| sample_unit_open(&mut rng)).collect();
            let mut gaps = vec![0.0f64; uniforms.len()];
            floored_gaps(&uniforms, ln_q, &mut gaps);
            for (&u, &g) in uniforms.iter().zip(&gaps) {
                let exact = (u.ln() / ln_q).floor();
                assert!(
                    g == exact,
                    "certified gap {g} != exact {exact} (u={u:e}, p={p})"
                );
            }
        }
    }

    #[test]
    fn certified_gaps_survive_boundary_adversaries() {
        // Uniforms engineered so the quotient sits within a few ulps of an
        // integer — exactly where certification must refuse the fast value
        // and the fixup must reproduce libm's rounding.
        for &p in &[1e-6f64, 1e-3, 0.05, 0.42] {
            let ln_q = (-p).ln_1p();
            let mut uniforms = Vec::new();
            for gap in [0u32, 1, 2, 7, 100, 12_345] {
                let u0 = (f64::from(gap) * ln_q).exp();
                if !(u0 > 0.0 && u0 < 1.0) {
                    continue;
                }
                let bits = u0.to_bits();
                for delta in -100i64..=100 {
                    let u = f64::from_bits(bits.wrapping_add_signed(delta));
                    if u > 0.0 && u < 1.0 {
                        uniforms.push(u);
                    }
                }
            }
            let mut gaps = vec![0.0f64; uniforms.len()];
            floored_gaps(&uniforms, ln_q, &mut gaps);
            for (&u, &g) in uniforms.iter().zip(&gaps) {
                let exact = (u.ln() / ln_q).floor();
                assert!(
                    g == exact,
                    "boundary gap {g} != exact {exact} (u bits {:#x}, p={p})",
                    u.to_bits()
                );
            }
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((phi_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((phi_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((phi_cdf(-1.0) - 0.158_655_254).abs() < 1e-6);
        assert!((phi_cdf(2.0) - 0.977_249_868).abs() < 1e-6);
        assert!((phi_cdf(6.0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn tail_is_complement_of_cdf() {
        // Tolerance is bounded by the A&S 26.2.17 polynomial error (7.5e-8).
        for z in [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0] {
            assert!((q_tail(z) + phi_cdf(z) - 1.0).abs() < 2e-7, "z={z}");
        }
    }

    #[test]
    fn ppf_round_trips_through_cdf() {
        for &p in &[1e-9, 1e-6, 1e-3, 0.014, 0.1, 0.5, 0.9, 0.999] {
            let z = norm_ppf(p);
            assert!(
                (phi_cdf(z) - p).abs() < 1e-7 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e4),
                "p={p}, z={z}, cdf={}",
                phi_cdf(z)
            );
        }
    }

    #[test]
    fn q_inv_round_trips_through_q() {
        for &p in &[1e-8, 1e-4, 0.014, 0.25, 0.5, 0.75, 0.99] {
            let z = q_tail_inv(p);
            let back = q_tail(z);
            assert!((back - p).abs() / p < 1e-3, "p={p} z={z} back={back}");
        }
    }

    #[test]
    fn ppf_known_values() {
        // Accuracy is limited by the forward-CDF polynomial used in the
        // Halley refinement (~1e-7).
        assert!((norm_ppf(0.5)).abs() < 1e-6);
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((norm_ppf(0.841_344_746) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pdf_is_symmetric_and_peaked_at_zero() {
        assert!((phi_pdf(1.3) - phi_pdf(-1.3)).abs() < 1e-15);
        assert!(phi_pdf(0.0) > phi_pdf(0.1));
        assert!((phi_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn ppf_rejects_out_of_range() {
        let _ = norm_ppf(1.0);
    }

    #[test]
    fn bernoulli_indices_are_sorted_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        sample_bernoulli_indices_into(10_000, 0.01, &mut rng, &mut out);
        assert!(!out.is_empty());
        assert!(out.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(*out.last().unwrap() < 10_000);
    }

    #[test]
    fn bernoulli_index_count_matches_binomial_mean() {
        // Mean of 400 replications of Binomial(5000, 0.02): expect 100 with
        // sd(mean) = sqrt(5000*0.02*0.98/400) ~ 0.49; allow 5 sigma.
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        let mut total = 0usize;
        for _ in 0..400 {
            sample_bernoulli_indices_into(5000, 0.02, &mut rng, &mut out);
            total += out.len();
        }
        let mean = total as f64 / 400.0;
        assert!((mean - 100.0).abs() < 2.5, "mean count {mean} vs 100");
    }

    #[test]
    fn bernoulli_indices_cover_uniformly() {
        // Pool successes over many replications: each cell is hit with the
        // same probability, so first/second-half counts agree to ~3 sigma.
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        let (mut lo, mut hi) = (0usize, 0usize);
        for _ in 0..200 {
            sample_bernoulli_indices_into(2000, 0.05, &mut rng, &mut out);
            for &i in &out {
                if i < 1000 {
                    lo += 1;
                } else {
                    hi += 1;
                }
            }
        }
        let n = (lo + hi) as f64;
        let diff = (lo as f64 - hi as f64).abs();
        assert!(diff < 4.0 * n.sqrt(), "lo {lo} vs hi {hi}");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = vec![99];
        sample_bernoulli_indices_into(100, 0.0, &mut rng, &mut out);
        assert!(out.is_empty(), "p = 0 clears the buffer");
        sample_bernoulli_indices_into(5, 1.0, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        sample_bernoulli_indices_into(0, 0.5, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_bernoulli_indices_into(10, 1.5, &mut rng, &mut Vec::new());
    }

    #[test]
    fn truncated_tail_draws_stay_above_floor() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5000 {
            let x = truncated_tail_normal(0.352, 0.040, 0.44, &mut rng);
            assert!(x > 0.44, "draw {x} fell below the floor");
        }
    }

    #[test]
    fn truncated_tail_matches_conditional_cdf() {
        // Empirical CDF of 20k truncated draws against the analytic
        // conditional CDF at a few quantiles (binomial 5-sigma bands).
        let (mu, sigma, floor) = (0.352, 0.040, 0.40);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| truncated_tail_normal(mu, sigma, floor, &mut rng))
            .collect();
        for x in [0.41, 0.43, 0.46, 0.50] {
            let expect = truncated_tail_cdf(mu, sigma, floor, x);
            let got = draws.iter().filter(|&&d| d <= x).count() as f64 / f64::from(n);
            let tol = 5.0 * (expect * (1.0 - expect) / f64::from(n)).sqrt() + 1e-3;
            assert!(
                (got - expect).abs() < tol,
                "at {x}: empirical {got} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn truncated_tail_cdf_brackets() {
        assert_eq!(truncated_tail_cdf(0.352, 0.04, 0.44, 0.43), 0.0);
        let far = truncated_tail_cdf(0.352, 0.04, 0.44, 1.0);
        assert!((far - 1.0).abs() < 1e-9);
        // Monotone between.
        let a = truncated_tail_cdf(0.352, 0.04, 0.44, 0.45);
        let b = truncated_tail_cdf(0.352, 0.04, 0.44, 0.47);
        assert!((0.0..1.0).contains(&a) && a < b);
    }

    #[test]
    fn unit_open_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let u = sample_unit_open(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
