//! Standard-normal distribution helpers used by the fault model.
//!
//! The fault model needs the Gaussian tail `Q(z) = P(X >= z)` (to turn a
//! cell-V_min distribution into a bit error rate) and its inverse (to fit
//! measured error rates back to a distribution). Rust's standard library has
//! neither `erf` nor the normal quantile, so both are implemented here:
//!
//! * `Q(z)` via the Abramowitz & Stegun 26.2.17 polynomial (|error| < 7.5e-8),
//! * `Q^{-1}(p)` via Acklam's rational approximation refined with one Halley
//!   step (relative error far below the fitting noise).

/// Standard normal probability density function.
#[must_use]
pub fn phi_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal CDF `P(X <= z)` (Abramowitz & Stegun 26.2.17).
#[must_use]
pub fn phi_cdf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - phi_cdf(-z);
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * z);
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    1.0 - phi_pdf(z) * poly
}

/// Gaussian upper tail `Q(z) = P(X >= z) = 1 - Phi(z)`.
#[must_use]
pub fn q_tail(z: f64) -> f64 {
    phi_cdf(-z)
}

/// Inverse of the Gaussian upper tail: returns `z` such that `Q(z) = p`.
///
/// # Panics
///
/// Panics unless `p` is in the open interval `(0, 1)`.
#[must_use]
pub fn q_tail_inv(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "tail probability must be in (0, 1), got {p}"
    );
    -norm_ppf(p)
}

/// Inverse standard normal CDF (quantile function) via Acklam's algorithm
/// plus one Halley refinement step.
///
/// # Panics
///
/// Panics unless `p` is in the open interval `(0, 1)`.
#[must_use]
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the forward CDF.
    let e = phi_cdf(x) - p;
    let u = e * (2.0 * core::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((phi_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((phi_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((phi_cdf(-1.0) - 0.158_655_254).abs() < 1e-6);
        assert!((phi_cdf(2.0) - 0.977_249_868).abs() < 1e-6);
        assert!((phi_cdf(6.0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn tail_is_complement_of_cdf() {
        // Tolerance is bounded by the A&S 26.2.17 polynomial error (7.5e-8).
        for z in [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0] {
            assert!((q_tail(z) + phi_cdf(z) - 1.0).abs() < 2e-7, "z={z}");
        }
    }

    #[test]
    fn ppf_round_trips_through_cdf() {
        for &p in &[1e-9, 1e-6, 1e-3, 0.014, 0.1, 0.5, 0.9, 0.999] {
            let z = norm_ppf(p);
            assert!(
                (phi_cdf(z) - p).abs() < 1e-7 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e4),
                "p={p}, z={z}, cdf={}",
                phi_cdf(z)
            );
        }
    }

    #[test]
    fn q_inv_round_trips_through_q() {
        for &p in &[1e-8, 1e-4, 0.014, 0.25, 0.5, 0.75, 0.99] {
            let z = q_tail_inv(p);
            let back = q_tail(z);
            assert!((back - p).abs() / p < 1e-3, "p={p} z={z} back={back}");
        }
    }

    #[test]
    fn ppf_known_values() {
        // Accuracy is limited by the forward-CDF polynomial used in the
        // Halley refinement (~1e-7).
        assert!((norm_ppf(0.5)).abs() < 1e-6);
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((norm_ppf(0.841_344_746) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pdf_is_symmetric_and_peaked_at_zero() {
        assert!((phi_pdf(1.3) - phi_pdf(-1.3)).abs() < 1e-15);
        assert!(phi_pdf(0.0) > phi_pdf(0.1));
        assert!((phi_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn ppf_rejects_out_of_range() {
        let _ = norm_ppf(1.0);
    }
}
