//! Array-level yield analysis: from per-cell fault statistics to the
//! probability that a whole SRAM array operates error-free at a voltage.
//!
//! This quantifies the paper's Fig. 1 landmarks: `V_1st-error` is where the
//! expected failure count crosses one, and the *yield curve* `Y(v)` is the
//! probability a die of `C` cells has no faulty cell at `v`:
//!
//! ```text
//! Y(v) = (1 - F(v))^C ~= exp(-C * F(v))
//! ```
//!
//! With SEC-DED, a die survives as long as no 72-bit word holds two or more
//! faulty cells, which moves the yield wall down by a few tens of
//! millivolts; with boosting, the wall moves by the full boost amount
//! because the cells actually see the boosted rail. The module computes all
//! three curves and the V_min each scheme achieves for a target yield.

use crate::ecc::word_failure_probability;
use crate::fault::V_DATA_RETENTION;
use crate::model::CellFaultRate;
use dante_circuit::units::Volt;

/// Yield of an unprotected array of `bits` cells at voltage `v`.
///
/// Generic over any [`CellFaultRate`] — a [`crate::fault::VminFaultModel`]
/// keeps the closed-form Gaussian fast path (its `marginal_ber` *is*
/// `bit_error_rate`), while burst and chip-variation specs plug in their
/// own marginals. The closed form treats cells as exchangeable, which is
/// exact for the faulty-cell *count* under every model here (weak-set
/// membership is independent per cell at the marginal level); fleet-level
/// dispersion across dies is the business of `FleetSpec`, not this curve.
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn array_yield<M: CellFaultRate + ?Sized>(model: &M, v: Volt, bits: u64) -> f64 {
    assert!(bits > 0, "array must have at least one cell");
    let f = model.marginal_ber(v);
    // Use the log form to stay stable for huge arrays.
    (bits as f64 * (1.0 - f).ln()).exp()
}

/// Yield of a SEC-DED-protected array of `words` 72-bit codewords at `v`
/// (a die survives unless some word has >= 2 faulty cells).
///
/// # Panics
///
/// Panics if `words` is zero.
#[must_use]
pub fn array_yield_secded<M: CellFaultRate + ?Sized>(model: &M, v: Volt, words: u64) -> f64 {
    assert!(words > 0, "array must have at least one word");
    let f = model.marginal_ber(v);
    let word_fail = word_failure_probability(f);
    (words as f64 * (1.0 - word_fail).ln()).exp()
}

/// The minimum voltage at which an unprotected array of `bits` cells
/// reaches `target_yield`, found by bisection over the operating range
/// (every [`CellFaultRate`] marginal is monotone decreasing in voltage).
///
/// # Panics
///
/// Panics unless `target_yield` is in `(0, 1)` and `bits > 0`.
#[must_use]
pub fn vmin_for_yield<M: CellFaultRate + ?Sized>(model: &M, target_yield: f64, bits: u64) -> Volt {
    vmin_search(target_yield, |v| array_yield(model, v, bits))
}

/// The minimum voltage at which a SEC-DED-protected array of `words`
/// codewords reaches `target_yield`.
///
/// # Panics
///
/// Panics unless `target_yield` is in `(0, 1)` and `words > 0`.
#[must_use]
pub fn vmin_for_yield_secded<M: CellFaultRate + ?Sized>(
    model: &M,
    target_yield: f64,
    words: u64,
) -> Volt {
    vmin_search(target_yield, |v| array_yield_secded(model, v, words))
}

fn vmin_search(target_yield: f64, yield_at: impl Fn(Volt) -> f64) -> Volt {
    assert!(
        target_yield > 0.0 && target_yield < 1.0,
        "target yield must be in (0, 1)"
    );
    let mut lo = V_DATA_RETENTION;
    let mut hi = Volt::new(0.90);
    assert!(
        yield_at(hi) >= target_yield,
        "target yield unreachable even at {hi}"
    );
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if yield_at(mid) >= target_yield {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::VminFaultModel;

    const MBIT_4: u64 = 4 * 1024 * 1024;

    #[test]
    fn yield_is_monotone_in_voltage_and_size() {
        let m = VminFaultModel::default_14nm();
        let y_low = array_yield(&m, Volt::new(0.50), MBIT_4);
        let y_high = array_yield(&m, Volt::new(0.60), MBIT_4);
        assert!(y_high > y_low);
        let y_small = array_yield(&m, Volt::new(0.55), 32 * 1024);
        let y_big = array_yield(&m, Volt::new(0.55), MBIT_4);
        assert!(y_small > y_big, "bigger arrays yield worse");
        assert!((0.0..=1.0).contains(&y_low));
    }

    #[test]
    fn paper_test_chip_yields_at_0v6() {
        // Sec. 3.3: the 4 Mbit macros chosen "have zero bit fails at 0.6 V".
        let m = VminFaultModel::default_14nm();
        assert!(array_yield(&m, Volt::new(0.60), MBIT_4) > 0.99);
        // ...and essentially none of them works unprotected at 0.45 V.
        assert!(array_yield(&m, Volt::new(0.45), MBIT_4) < 1e-6);
    }

    #[test]
    fn secded_beats_unprotected_yield_everywhere() {
        let m = VminFaultModel::default_14nm();
        for mv in [480u32, 500, 520, 540, 560] {
            let v = Volt::from_millivolts(f64::from(mv));
            let plain = array_yield(&m, v, MBIT_4);
            let ecc = array_yield_secded(&m, v, MBIT_4 / 64);
            assert!(ecc >= plain, "at {v}: ecc {ecc} vs plain {plain}");
        }
    }

    #[test]
    fn ecc_vmin_shift_is_tens_of_millivolts() {
        // The quantitative comparison the ablation rests on: SEC-DED moves
        // the 99%-yield wall by ~20-60 mV; full boost moves the rail by
        // ~150 mV at 0.4 V.
        let m = VminFaultModel::default_14nm();
        let plain = vmin_for_yield(&m, 0.99, MBIT_4);
        let ecc = vmin_for_yield_secded(&m, 0.99, MBIT_4 / 64);
        let shift = (plain - ecc).millivolts();
        assert!(
            (10.0..=80.0).contains(&shift),
            "ECC V_min shift {shift:.1} mV outside the expected band (plain {plain}, ecc {ecc})"
        );
    }

    #[test]
    fn vmin_search_is_consistent_with_the_yield_curve() {
        let m = VminFaultModel::default_14nm();
        let v = vmin_for_yield(&m, 0.9, 32 * 1024);
        assert!(array_yield(&m, v, 32 * 1024) >= 0.9);
        assert!(array_yield(&m, v - Volt::from_millivolts(10.0), 32 * 1024) < 0.9);
    }

    #[test]
    fn vmin_tracks_first_error_voltage() {
        // V_min for ~37% yield (1/e) equals the voltage where the expected
        // failure count is one — the V_1st-error of Fig. 1.
        let m = VminFaultModel::default_14nm();
        let v_yield = vmin_for_yield(&m, (-1.0f64).exp(), MBIT_4);
        let v_first = m.v_first_error(MBIT_4);
        assert!(
            (v_yield - v_first).millivolts().abs() < 2.0,
            "{v_yield} vs {v_first}"
        );
    }

    #[test]
    #[should_panic(expected = "target yield must be in (0, 1)")]
    fn bad_target_rejected() {
        let m = VminFaultModel::default_14nm();
        let _ = vmin_for_yield(&m, 1.0, 1024);
    }

    #[test]
    fn fault_model_spec_yield_matches_the_direct_gaussian_path() {
        // The generalized signature with a default spec reproduces the
        // legacy `&VminFaultModel` results exactly — the Gaussian fast
        // path survived the abstraction.
        let direct = VminFaultModel::default_14nm();
        let spec = crate::model::FaultModel::default();
        for mv in [460u32, 500, 540, 580] {
            let v = Volt::from_millivolts(f64::from(mv));
            assert_eq!(
                array_yield(&spec, v, MBIT_4),
                array_yield(&direct, v, MBIT_4)
            );
            assert_eq!(
                array_yield_secded(&spec, v, MBIT_4 / 64),
                array_yield_secded(&direct, v, MBIT_4 / 64)
            );
        }
        assert_eq!(
            vmin_for_yield(&spec, 0.99, MBIT_4),
            vmin_for_yield(&direct, 0.99, MBIT_4)
        );
    }

    #[test]
    fn correlated_and_chip_variation_models_raise_vmin_for_yield() {
        // Weak rows/columns and die-to-die mu spread both fatten the fault
        // tail, so the voltage needed for a given yield rises.
        let gauss = vmin_for_yield(&crate::model::FaultModel::default(), 0.99, MBIT_4);
        let burst = vmin_for_yield(&crate::model::FaultModel::burst_default(), 0.99, MBIT_4);
        let chip = vmin_for_yield(
            &crate::model::FaultModel::chip_variation_default(),
            0.99,
            MBIT_4,
        );
        assert!(
            burst > gauss,
            "burst V_min {burst} must exceed Gaussian {gauss}"
        );
        assert!(
            chip > gauss,
            "chip-variation V_min {chip} must exceed Gaussian {gauss}"
        );
    }
}
