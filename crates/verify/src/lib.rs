//! # dante-verify
//!
//! The golden-reference validation subsystem of the Dante reproduction —
//! the machinery that ties the simulator to (a) itself, (b) the paper, and
//! (c) the statistics it claims, in three pillars:
//!
//! * [`differential`] — the cycle-level `dante-accel` executor checked
//!   bit-exactly against an independent reference implementation of the
//!   compiled fixed-point math, under identical per-trial fault overlays,
//!   with a ddmin divergence minimizer that shrinks a failing corruption to
//!   a 1-minimal set of weight rows.
//! * [`forward`] — the trial-batched incremental forward evaluator
//!   (`dante_nn::batched`) checked against the scalar `Network::accuracy`
//!   path under identical fault-corrupted weights and inputs, with the same
//!   ddmin shrink reused at weight-unit granularity.
//! * [`golden`] — snapshot testing of every deterministic `dante-bench`
//!   figure/table record against blessed JSON in `results/golden/`, with
//!   per-metric tolerance bands, paper-anchored point checks, a unified
//!   human-readable diff on mismatch, and an `UPDATE_GOLDEN=1` re-bless
//!   flow.
//! * [`stats`] — statistical acceptance of the fault model: KS and
//!   chi-square goodness-of-fit of sampled per-cell `V_min` draws against
//!   the analytic Gaussian, plus Wilson score intervals for Monte-Carlo
//!   accuracy estimates.
//! * [`overlay`] — acceptance of the sparse tail-sampled overlay: the
//!   truncated-Gaussian conditional CDF its `V_min` draws must follow, and
//!   an exact word-level differential check that a sparse projection of a
//!   dense die corrupts packed data identically.
//!
//! The top-level test suites `tests/differential.rs`,
//! `tests/golden_snapshots.rs`, and `tests/fault_model_stats.rs` wire these
//! pillars into `cargo test`; see EXPERIMENTS.md for the re-bless workflow.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod differential;
pub mod forward;
pub mod golden;
pub mod overlay;
pub mod stats;

pub use differential::{
    check_program, corrupt_program, corrupt_sample, ddmin, minimize_corruption, reference_forward,
    run_differential, DiffConfig, DiffReport, Divergence, WeightRow,
};
pub use forward::{
    apply_units, check_batched, corrupt_inputs, corrupt_weights, corrupted_units, minimize_units,
    run_forward_differential, ForwardCheck, ForwardDiffConfig, ForwardDiffReport,
    ForwardDivergence,
};
pub use golden::{
    paper_anchors, tolerance_for, GoldenDiff, GoldenOutcome, GoldenStore, PaperAnchor, Tolerance,
};
pub use overlay::{sparse_matches_dense, sparse_vmin_cdf, OverlayMismatch};
pub use stats::{
    bin_counts, chi_square_critical, chi_square_statistic, ks_critical, ks_statistic,
    normal_bin_edges, wilson_interval,
};
